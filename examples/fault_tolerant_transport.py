#!/usr/bin/env python
"""Fault-tolerant transport: identical clustering over a hostile network.

Runs the same three site streams twice through the unified
:mod:`repro.runtime` loop over a :class:`TransportChannel`:

1. over the loss-free in-process loopback transport, and
2. over a seeded lossy transport injecting 20% datagram drops, 5%
   duplicates, reordering delays and a network partition window,

then shows that the reliability layer (sequence numbers, acks,
retransmission with backoff, duplicate suppression) makes the
coordinator end up in an *identical* state, and prints the unified
delivery accounting: what reliability cost in retransmissions and bytes
on the wire versus the paper's accounted synopsis payload.

For the simple drop/duplicate/reorder spec you can just pass
``ChannelFaults`` to ``TransportChannel``; this script wraps the
transport in a :class:`LossyTransport` by hand because it also wants a
partition blackout window, which shows the two layers compose.

Run:  python examples/fault_tolerant_transport.py
"""

from __future__ import annotations

import numpy as np

from repro import CluDistream, CluDistreamConfig, EMConfig, RemoteSiteConfig
from repro.evaluation import delivery_report
from repro.runtime import TransportChannel
from repro.streams import EvolvingGaussianStream, EvolvingStreamConfig
from repro.transport import (
    FaultConfig,
    LoopbackTransport,
    LossyTransport,
    ManualClock,
    ReliabilityConfig,
)

N_SITES = 3
RECORDS_PER_SITE = 600
DIM = 2

FAULTS = FaultConfig(
    drop_rate=0.20,
    duplicate_rate=0.05,
    reorder_rate=0.10,
    reorder_delay=0.6,
    partitions=((1.0, 3.0),),  # 2 clock seconds of total blackout
)


def make_system() -> CluDistream:
    return CluDistream(
        CluDistreamConfig(
            n_sites=N_SITES,
            site=RemoteSiteConfig(
                dim=DIM,
                epsilon=0.05,
                delta=0.05,
                em=EMConfig(n_components=2, n_init=1, max_iter=30),
                chunk_override=100,
            ),
        ),
        seed=3,
    )


def make_streams() -> dict[int, np.ndarray]:
    from repro.streams.base import take

    return {
        site_id: take(
            EvolvingGaussianStream(
                EvolvingStreamConfig(
                    dim=DIM, n_components=2, p_new_distribution=0.6
                ),
                rng=np.random.default_rng(40 + site_id),
            ),
            RECORDS_PER_SITE,
        )
        for site_id in range(N_SITES)
    }


def run(transport_name: str):
    system = make_system()
    clock = ManualClock()
    if transport_name == "loopback":
        transport = LoopbackTransport()
        lossy = None
    else:
        lossy = LossyTransport(LoopbackTransport(), clock, FAULTS, seed=17)
        transport = lossy
    channel = TransportChannel(
        transport,
        clock,
        reliability=ReliabilityConfig(
            initial_timeout=0.4, jitter=0.1, heartbeat_interval=None
        ),
    )
    system.runtime(channel).run(
        make_streams(), max_records_per_site=RECORDS_PER_SITE
    )
    return (
        system,
        lossy,
        delivery_report(channel.endpoints, channel.coordinator_endpoint),
    )


def main() -> None:
    print(f"== {N_SITES} sites x {RECORDS_PER_SITE} records, twice ==\n")

    clean_system, _, clean_report = run("loopback")
    lossy_system, lossy, faulty_report = run("lossy")

    print("faults injected on the lossy run:")
    print(
        f"  dropped={lossy.faults.dropped} "
        f"(partition blackout: {lossy.faults.partition_drops}) "
        f"duplicated={lossy.faults.duplicated} "
        f"reordered={lossy.faults.reordered}"
    )

    print("\nreliability layer's answer:")
    print(
        f"  retransmissions={faulty_report.retransmissions} "
        f"duplicates_suppressed={faulty_report.duplicates_suppressed} "
        f"delivered={faulty_report.messages_delivered}"
        f"/{faulty_report.messages_sent}"
    )

    reference = clean_system.global_mixture()
    observed = lossy_system.global_mixture()
    identical = len(reference.components) == len(observed.components) and all(
        np.array_equal(a.mean, b.mean)
        and np.array_equal(a.covariance, b.covariance)
        for a, b in zip(reference.components, observed.components)
    ) and np.array_equal(reference.weights, observed.weights)
    print(f"\nglobal model identical to the loss-free run: {identical}")
    for weight, component in sorted(
        observed, key=lambda pair: pair[0], reverse=True
    ):
        print(f"  w={weight:.3f}  mean={np.round(component.mean, 2)}")

    print("\nwhat reliability costs on the wire:")
    for name, report in (("loopback", clean_report), ("lossy", faulty_report)):
        print(
            f"  {name:8s} payload={report.payload_bytes:6d} B  "
            f"wire={report.wire_bytes:6d} B  "
            f"overhead x{report.overhead_ratio:.2f}"
        )


if __name__ == "__main__":
    main()
