#!/usr/bin/env python
"""Checkpoint/resume: crash a site mid-stream and lose nothing.

Drives two evolving streams through the runtime loop with periodic
checkpoints, "crashes" the process part-way between two checkpoints
(``stop_after_round``), resumes from the last snapshot with
``Runtime.resume``, and verifies the resumed run converges to
coordinator state byte-identical to a run that never crashed.

A checkpoint directory holds one JSON file per site, one for the
coordinator, and a ``manifest.json`` (written last, so a directory that
has one is always complete) recording the stream position; on resume
the runtime skips exactly the records that were already consumed.

Run:  python examples/checkpoint_resume.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import CluDistream, CluDistreamConfig, EMConfig, RemoteSiteConfig
from repro.io.checkpoint import snapshot_coordinator
from repro.runtime import DirectChannel, Runtime
from repro.streams import EvolvingGaussianStream, EvolvingStreamConfig
from repro.streams.base import take

N_SITES = 2
RECORDS_PER_SITE = 2_000
CHECKPOINT_EVERY = 500
CRASH_AFTER = 800  # rounds survived before the simulated crash


def make_system() -> CluDistream:
    return CluDistream(
        CluDistreamConfig(
            n_sites=N_SITES,
            site=RemoteSiteConfig(
                dim=2,
                epsilon=0.05,
                delta=0.05,
                em=EMConfig(n_components=3, n_init=1, max_iter=40),
                chunk_override=250,
            ),
        ),
        seed=7,
    )


def make_streams() -> dict[int, np.ndarray]:
    # Materialised so the replay after the crash sees the same records.
    return {
        site_id: take(
            EvolvingGaussianStream(
                EvolvingStreamConfig(
                    dim=2,
                    n_components=3,
                    segment_length=500,
                    p_new_distribution=0.5,
                ),
                rng=np.random.default_rng(100 + site_id),
            ),
            RECORDS_PER_SITE,
        )
        for site_id in range(N_SITES)
    }


def coordinator_fingerprint(runtime: Runtime) -> str:
    return json.dumps(
        snapshot_coordinator(runtime.coordinator), sort_keys=True
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = Path(tmp) / "checkpoint"

        print(
            f"run 1: crash after round {CRASH_AFTER} "
            f"(checkpoint every {CHECKPOINT_EVERY} rounds)"
        )
        crashed = make_system().runtime(
            DirectChannel(),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=CHECKPOINT_EVERY,
        )
        report = crashed.run(
            make_streams(),
            max_records_per_site=RECORDS_PER_SITE,
            stop_after_round=CRASH_AFTER,
        )
        print(
            f"  crashed at round {report.rounds}; "
            f"{len(report.checkpoints)} checkpoint(s) on disk"
        )

        resumed = Runtime.resume(checkpoint_dir, DirectChannel())
        lost = CRASH_AFTER - resumed.rounds_completed
        print(
            f"run 2: resumed from round {resumed.rounds_completed} "
            f"(the {lost} rounds after the snapshot are replayed)"
        )
        final = resumed.run(
            make_streams(), max_records_per_site=RECORDS_PER_SITE
        )
        print(
            f"  finished at round {final.rounds}; "
            f"{final.records} records consumed post-resume"
        )

        reference = make_system().runtime(DirectChannel())
        reference.run(make_streams(), max_records_per_site=RECORDS_PER_SITE)

        identical = coordinator_fingerprint(resumed) == (
            coordinator_fingerprint(reference)
        )
        print(
            "coordinator state identical to an uninterrupted run: "
            f"{identical}"
        )
        assert identical

        mixture = resumed.coordinator.global_mixture()
        print(f"global mixture: {len(list(mixture))} components")
        for weight, component in sorted(
            mixture, key=lambda pair: pair[0], reverse=True
        ):
            print(f"  w={weight:.3f}  mean={np.round(component.mean, 2)}")


if __name__ == "__main__":
    main()
