#!/usr/bin/env python
"""Evolving analysis & change detection over the event list (§7).

One remote site watches a stream that alternates between traffic
regimes.  The event table records which model explained which span of
the stream; afterwards we (a) replay a user window query ("what did the
stream look like between records 3000 and 9000?"), (b) report the
detected change points against the ground truth, and (c) run a sliding
window with the negative-weight deletion protocol.

Run:  python examples/evolving_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import EMConfig, RemoteSite, RemoteSiteConfig
from repro.changedetect import ChangeDetector
from repro.streams.visual import one_dimensional_phases
from repro.windows import SlidingWindowManager, horizon_mixture

CHUNK = 500


def main() -> None:
    config = RemoteSiteConfig(
        dim=1,
        epsilon=0.05,
        delta=0.05,
        c_max=4,
        em=EMConfig(n_components=3, n_init=2, max_iter=60),
        chunk_override=CHUNK,
    )
    site = RemoteSite(0, config, rng=np.random.default_rng(3))
    detector = ChangeDetector(site)

    # Three regimes, repeated twice (A B C A B C) -- the repeats let the
    # multi-test strategy reactivate archived models.
    phases = one_dimensional_phases(horizon=2000, repeats=2)
    rng = np.random.default_rng(17)
    print(
        f"Streaming {phases.total_records} records across "
        f"{phases.n_phases} phases (chunk size {CHUNK})..."
    )
    for record in phases.stream(rng):
        for change in detector.process_record(record):
            kind = "reactivated" if change.reactivation else "new model"
            print(
                f"  change detected at record {change.position}: "
                f"model {change.old_model_id} -> {change.new_model_id} "
                f"({kind})"
            )

    true_changes = [
        phases.horizon * i for i in range(1, phases.n_phases)
    ]
    hits, misses, false_alarms = detector.matches(true_changes)
    print(
        f"\nchange detection: {hits} hits, {misses} misses, "
        f"{false_alarms} false alarms "
        f"(ground truth: {len(true_changes)} changes)"
    )

    print("\n=== Event table (the stream's evolution) ===")
    for event in site.events:
        print(
            f"  records [{event.start:>5}, {event.end:>5}) -> "
            f"model {event.model_id}"
        )

    print("\n=== Window query: records [3000, 9000) ===")
    for event in site.events.window(3000, 6000):
        print(
            f"  model {event.model_id} active on "
            f"[{max(event.start, 3000)}, {min(event.end, 9000)})"
        )

    print("\n=== Horizon model of the most recent 2000 records ===")
    recent = horizon_mixture(site, 2000)
    for weight, component in sorted(recent, key=lambda pair: pair[0], reverse=True):
        print(
            f"  w={weight:.3f}  mean={component.mean[0]:+.2f}  "
            f"sigma={np.sqrt(component.covariance[0, 0]):.2f}"
        )
    truth = phases.mixtures[-1]
    print("ground truth of the final phase:")
    for weight, component in sorted(truth, key=lambda pair: pair[0], reverse=True):
        print(
            f"  w={weight:.3f}  mean={component.mean[0]:+.2f}  "
            f"sigma={np.sqrt(component.covariance[0, 0]):.2f}"
        )

    print("\n=== Sliding window with deletion (fresh site) ===")
    sliding_site = RemoteSite(1, config, rng=np.random.default_rng(4))
    manager = SlidingWindowManager(sliding_site, window=3 * CHUNK)
    deletions = 0
    for record in phases.stream(np.random.default_rng(18)):
        for message in manager.process_record(record):
            deletions += type(message).__name__ == "DeletionMessage"
    print(
        f"window={3 * CHUNK} records: {deletions} deletion messages "
        f"emitted, {manager.records_in_window} records in window, "
        f"{len(sliding_site.all_models)} models alive"
    )


if __name__ == "__main__":
    main()
