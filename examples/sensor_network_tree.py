#!/usr/bin/env python
"""Sensor network with a tree-structured communication hierarchy (§7).

A field of sensors reports through two aggregation gateways to one base
station.  Leaves run CluDistream remote-site processing on their local
measurement streams; each gateway runs coordinator logic over its
children and uploads its summary to the base station only when its
locally-observed mixture changes.  The base station ends up with a
Gaussian mixture over the union of all sensor streams while most
traffic stays inside the subtrees.

Run:  python examples/sensor_network_tree.py
"""

from __future__ import annotations

import numpy as np

from repro import EMConfig, RemoteSiteConfig
from repro.core.coordinator import CoordinatorConfig
from repro.multilayer import TreeNetwork
from repro.streams import EvolvingGaussianStream, EvolvingStreamConfig

SENSORS_PER_GATEWAY = 3
RECORDS_PER_SENSOR = 4_000


def main() -> None:
    tree = TreeNetwork(
        site_config=RemoteSiteConfig(
            dim=3,  # e.g. temperature, humidity, particulates
            epsilon=0.05,
            delta=0.05,
            em=EMConfig(n_components=3, n_init=1, max_iter=40),
            chunk_override=800,
        ),
        coordinator_config=CoordinatorConfig(max_components=6),
        seed=21,
    )

    base_station = tree.add_internal(0)
    # Gateways only upload when their local summary changes materially.
    gateways = [
        tree.add_internal(1, parent_id=0, upload_threshold=1.0),
        tree.add_internal(2, parent_id=0, upload_threshold=1.0),
    ]
    leaf_ids = []
    for g_index, gateway in enumerate(gateways):
        for s_index in range(SENSORS_PER_GATEWAY):
            leaf_id = 10 * (g_index + 1) + s_index
            tree.add_leaf(leaf_id, parent_id=gateway.node_id)
            leaf_ids.append(leaf_id)

    streams = {
        leaf_id: EvolvingGaussianStream(
            EvolvingStreamConfig(
                dim=3,
                n_components=3,
                segment_length=1500,
                p_new_distribution=0.15,
            ),
            rng=np.random.default_rng(2000 + leaf_id),
        )
        for leaf_id in leaf_ids
    }

    print(
        f"Streaming {RECORDS_PER_SENSOR} measurements from each of "
        f"{len(leaf_ids)} sensors through 2 gateways..."
    )
    iterators = {leaf_id: iter(s) for leaf_id, s in streams.items()}
    for _ in range(RECORDS_PER_SENSOR):
        for leaf_id, iterator in iterators.items():
            tree.feed(leaf_id, next(iterator))

    print("\n=== Traffic per tree level ===")
    leaf_bytes = sum(leaf.site.stats.bytes_sent for leaf in tree.leaves)
    print(f"sensor -> gateway: {leaf_bytes} bytes")
    for gateway in gateways:
        print(
            f"gateway {gateway.node_id} -> base station: "
            f"{gateway.bytes_up} bytes ({gateway.messages_up} uploads)"
        )
    print(
        f"base-station inbound: "
        f"{base_station.coordinator.stats.bytes_received} bytes"
    )

    print("\n=== Base-station view of the whole field ===")
    mixture = tree.global_mixture()
    for weight, component in sorted(mixture, key=lambda pair: pair[0], reverse=True):
        print(f"  w={weight:.3f}  mean={np.round(component.mean, 2)}")

    gateway_bytes = sum(g.bytes_up for g in gateways)
    gateway_uploads = sum(g.messages_up for g in gateways)
    leaf_messages = sum(
        leaf.site.stats.messages_sent for leaf in tree.leaves
    )
    print(
        f"\nStability across the hierarchy: {leaf_messages} leaf model "
        f"updates were absorbed into {gateway_uploads} gateway uploads "
        f"({leaf_bytes} B -> {gateway_bytes} B); gateways stay quiet "
        f"while their subtree's distribution is stable."
    )


if __name__ == "__main__":
    main()
