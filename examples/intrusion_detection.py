#!/usr/bin/env python
"""Intrusion detection with soft clustering scores.

The paper's introduction motivates soft clustering with exactly this
scenario: "the network connection with 80% probability to be attacked
by hackers is more informative than a simple Yes/No answer".  Here a
CluDistream remote site learns the normal traffic mix of a flow
collector; an :class:`AnomalyDetector` calibrated on that model then
scores live flows -- including *incomplete* flows with missing
attributes, which are scored on what was observed -- and reports both
an anomaly verdict and the per-cluster membership probabilities.

Run:  python examples/intrusion_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import EMConfig, RemoteSite, RemoteSiteConfig
from repro.core.scoring import AnomalyDetector, membership_report
from repro.streams.netflow import NetflowConfig, NetflowStreamGenerator

TRAIN_RECORDS = 6_000
CHUNK = 1000


def make_attack_flows(n: int, rng: np.random.Generator) -> np.ndarray:
    """A port-scan burst: one source host walking destination ports,
    single-packet flows -- unlike any learned service cluster."""
    flows = np.empty((n, 6))
    flows[:, 0] = 0.666                      # fixed scanning host
    flows[:, 1] = rng.uniform(0.0, 1.0, n)   # walks destination hosts
    flows[:, 2] = rng.uniform(0.6, 1.0, n)   # ephemeral source ports
    flows[:, 3] = np.linspace(0.0, 0.5, n)   # sweeps low dst ports
    flows[:, 4] = 0.0                        # 1 packet
    flows[:, 5] = rng.uniform(0.0, 0.05, n)  # tiny payloads
    return flows


def main() -> None:
    rng = np.random.default_rng(1337)
    generator = NetflowStreamGenerator(
        NetflowConfig(segment_length=3000, p_switch=0.0),
        rng=np.random.default_rng(99),
    )

    site = RemoteSite(
        0,
        RemoteSiteConfig(
            dim=6,
            epsilon=0.05,
            delta=0.05,
            em=EMConfig(n_components=5, n_init=2, max_iter=60),
            chunk_override=CHUNK,
        ),
        rng=np.random.default_rng(7),
    )
    print(f"Learning normal traffic from {TRAIN_RECORDS} flows...")
    for _ in range(TRAIN_RECORDS):
        site.process_record(next(generator))
    model = site.current_model.mixture
    print(
        f"model: {model.n_components} clusters, "
        f"{site.stats.n_clusterings} EM runs"
    )

    reference = generator.snapshot(2000)
    detector = AnomalyDetector(model, reference, false_positive_rate=0.01)
    print(f"calibrated threshold: {detector.threshold:.2f} (1% FPR)")

    normal = generator.snapshot(1000)
    attack = make_attack_flows(200, rng)

    normal_verdicts = detector.score_batch(normal)
    attack_verdicts = detector.score_batch(attack)
    normal_rate = np.mean([v.is_anomaly for v in normal_verdicts])
    attack_rate = np.mean([v.is_anomaly for v in attack_verdicts])
    print(f"\nflagged {normal_rate:.1%} of normal flows (target 1%)")
    print(f"flagged {attack_rate:.1%} of port-scan flows")

    print("\n=== Soft membership: the '80% probability' answers ===")
    probes = np.vstack([normal[:3], attack[:2]])
    labels = ["normal"] * 3 + ["attack"] * 2
    for label, record, verdict in zip(
        labels, probes, detector.score_batch(probes)
    ):
        memberships = membership_report(model, record[None, :])[0][:2]
        pretty = ", ".join(
            f"cluster {j}: {p:.0%}" for j, p in memberships
        )
        flag = "ANOMALY" if verdict.is_anomaly else "ok"
        print(f"  [{label:>6}] score={verdict.score:7.2f}  {flag:>7}  {pretty}")

    print("\n=== Incomplete flows (missing attributes) ===")
    partial = attack[:3].copy()
    partial[:, [1, 5]] = np.nan  # dst host and byte count lost in transit
    for verdict in detector.score_batch(partial):
        print(
            f"  observed-attrs score={verdict.score:7.2f}  "
            f"anomaly={verdict.is_anomaly}"
        )


if __name__ == "__main__":
    main()
