#!/usr/bin/env python
"""Quickstart: cluster four distributed evolving streams with CluDistream.

Builds a small distributed system (4 remote sites + 1 coordinator),
drives each site's evolving synthetic Gaussian stream through the
unified :mod:`repro.runtime` loop over the direct in-process channel,
and prints what the system learned: per-site models, event tables (the
stream's evolution), delivery accounting, and the coordinator's compact
global mixture.  Swapping ``DirectChannel`` for ``SimulatedChannel`` or
``TransportChannel`` changes *how* the synopses travel without touching
anything else in this script.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CluDistream, CluDistreamConfig, EMConfig, RemoteSiteConfig
from repro.core.coordinator import CoordinatorConfig
from repro.runtime import DirectChannel
from repro.streams import EvolvingGaussianStream, EvolvingStreamConfig

N_SITES = 4
RECORDS_PER_SITE = 8_000


def main() -> None:
    config = CluDistreamConfig(
        n_sites=N_SITES,
        site=RemoteSiteConfig(
            dim=4,
            epsilon=0.05,
            delta=0.05,
            c_max=4,
            em=EMConfig(n_components=5, n_init=2, max_iter=60),
            chunk_override=1000,
        ),
        coordinator=CoordinatorConfig(max_components=8),
    )
    system = CluDistream(config, seed=42)

    streams = {
        site_id: EvolvingGaussianStream(
            EvolvingStreamConfig(
                dim=4,
                n_components=5,
                segment_length=2000,
                p_new_distribution=0.2,
            ),
            rng=np.random.default_rng(1000 + site_id),
        )
        for site_id in range(N_SITES)
    }

    print(f"Feeding {RECORDS_PER_SITE} records to each of {N_SITES} sites...")
    runtime = system.runtime(DirectChannel())
    report = runtime.run(streams, max_records_per_site=RECORDS_PER_SITE)
    accounting = report.accounting
    print(
        f"runtime: {report.records} records in {report.rounds} rounds, "
        f"{accounting.attempted} synopsis messages "
        f"({accounting.payload_bytes} payload bytes) uplinked"
    )

    print("\n=== Per-site state ===")
    for site in system.sites:
        stats = site.stats
        print(
            f"site {site.site_id}: {len(site.all_models)} models, "
            f"{stats.n_tests} fit tests, {stats.n_clusterings} EM runs, "
            f"{stats.n_reactivations} reactivations, "
            f"{stats.bytes_sent} bytes uplinked"
        )
        for event in site.events:
            print(
                f"    event: records [{event.start}, {event.end}) "
                f"explained by model {event.model_id}"
            )

    print("\n=== Coordinator ===")
    coordinator = system.coordinator
    print(
        f"received {coordinator.stats.messages_received} messages "
        f"({coordinator.stats.bytes_received} bytes), "
        f"{coordinator.stats.merges} merges, "
        f"{coordinator.stats.splits} splits"
    )
    mixture = system.global_mixture()
    print(f"global mixture: {mixture.n_components} components")
    for weight, component in mixture:
        print(
            f"    w={weight:.3f}  mean={np.round(component.mean, 2)}"
        )

    # Sanity: the model explains fresh data from the current
    # distributions better than shifted garbage.
    fresh = np.vstack(
        [
            streams[i].segments[-1].mixture.sample(
                500, np.random.default_rng(i)
            )[0]
            for i in range(N_SITES)
        ]
    )
    good = mixture.average_log_likelihood(fresh)
    bad = mixture.average_log_likelihood(fresh + 100.0)
    print(
        f"\naverage log likelihood on fresh data: {good:.2f} "
        f"(vs {bad:.2f} on shifted data)"
    )
    assert good > bad


if __name__ == "__main__":
    main()
