#!/usr/bin/env python
"""Quickstart: cluster four distributed evolving streams with CluDistream.

Builds a small distributed system (4 remote sites + 1 coordinator),
drives each site's evolving synthetic Gaussian stream through the
unified :mod:`repro.runtime` loop over the direct in-process channel,
and prints what the system learned: per-site models, event tables (the
stream's evolution), delivery accounting, and the coordinator's compact
global mixture.  Swapping ``DirectChannel`` for ``SimulatedChannel`` or
``TransportChannel`` changes *how* the synopses travel without touching
anything else in this script.

Run:  python examples/quickstart.py

Live observability (all optional):

* ``--serve-telemetry PORT`` serves ``/metrics``, ``/health``,
  ``/snapshot`` and ``/spans`` over HTTP while (and shortly after) the
  run executes -- point ``cludistream monitor --url ...`` or a
  Prometheus scraper at it;
* ``--serve-seconds N`` keeps that server up N seconds after the run;
* ``--spans-out PATH`` writes the causal spans as Chrome trace-event
  JSON (open in Perfetto / ``chrome://tracing``).
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro import CluDistream, CluDistreamConfig, EMConfig, RemoteSiteConfig
from repro.core.coordinator import CoordinatorConfig
from repro.runtime import DirectChannel
from repro.streams import EvolvingGaussianStream, EvolvingStreamConfig

N_SITES = 4
RECORDS_PER_SITE = 8_000


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--records", type=int, default=RECORDS_PER_SITE,
        help=f"records per site (default: {RECORDS_PER_SITE})",
    )
    parser.add_argument(
        "--serve-telemetry", type=int, default=None, metavar="PORT",
        help="serve live telemetry over HTTP on PORT (0 = ephemeral)",
    )
    parser.add_argument(
        "--serve-seconds", type=float, default=5.0, metavar="N",
        help="keep the telemetry server up N seconds after the run",
    )
    parser.add_argument(
        "--spans-out", default=None, metavar="PATH",
        help="write collected spans as Chrome trace-event JSON to PATH",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    observe = args.serve_telemetry is not None or args.spans_out is not None
    observer = health = spans = None
    if observe:
        from repro.obs import (
            HealthMonitor,
            MultiSink,
            Observer,
            SpanCollector,
        )

        health = HealthMonitor()
        spans = SpanCollector()
        observer = Observer(sink=MultiSink([health, spans]))

    config = CluDistreamConfig(
        n_sites=N_SITES,
        site=RemoteSiteConfig(
            dim=4,
            epsilon=0.05,
            delta=0.05,
            c_max=4,
            em=EMConfig(n_components=5, n_init=2, max_iter=60),
            chunk_override=1000,
        ),
        coordinator=CoordinatorConfig(max_components=8),
    )
    system = CluDistream(config, seed=42, observer=observer)

    streams = {
        site_id: EvolvingGaussianStream(
            EvolvingStreamConfig(
                dim=4,
                n_components=5,
                segment_length=2000,
                p_new_distribution=0.2,
            ),
            rng=np.random.default_rng(1000 + site_id),
        )
        for site_id in range(N_SITES)
    }

    print(f"Feeding {args.records} records to each of {N_SITES} sites...")
    runtime = system.runtime(DirectChannel())

    server = None
    if args.serve_telemetry is not None:
        from repro.obs import TelemetryServer, system_snapshot

        health.bind(
            component_count=lambda: system.coordinator.n_components,
            accounting=runtime.accounting,
        )
        server = TelemetryServer(
            observer,
            health=health,
            spans=spans,
            snapshot=lambda: system_snapshot(
                system.sites, system.coordinator, runtime.accounting()
            ),
            port=args.serve_telemetry,
        ).start()
        print(f"telemetry: {server.url}", flush=True)

    report = runtime.run(streams, max_records_per_site=args.records)
    accounting = report.accounting
    print(
        f"runtime: {report.records} records in {report.rounds} rounds, "
        f"{accounting.attempted} synopsis messages "
        f"({accounting.payload_bytes} payload bytes) uplinked"
    )

    print("\n=== Per-site state ===")
    for site in system.sites:
        stats = site.stats
        print(
            f"site {site.site_id}: {len(site.all_models)} models, "
            f"{stats.n_tests} fit tests, {stats.n_clusterings} EM runs, "
            f"{stats.n_reactivations} reactivations, "
            f"{stats.bytes_sent} bytes uplinked"
        )
        for event in site.events:
            print(
                f"    event: records [{event.start}, {event.end}) "
                f"explained by model {event.model_id}"
            )

    print("\n=== Coordinator ===")
    coordinator = system.coordinator
    print(
        f"received {coordinator.stats.messages_received} messages "
        f"({coordinator.stats.bytes_received} bytes), "
        f"{coordinator.stats.merges} merges, "
        f"{coordinator.stats.splits} splits"
    )
    mixture = system.global_mixture()
    print(f"global mixture: {mixture.n_components} components")
    for weight, component in mixture:
        print(
            f"    w={weight:.3f}  mean={np.round(component.mean, 2)}"
        )

    # Sanity: the model explains fresh data from the current
    # distributions better than shifted garbage.
    fresh = np.vstack(
        [
            streams[i].segments[-1].mixture.sample(
                500, np.random.default_rng(i)
            )[0]
            for i in range(N_SITES)
        ]
    )
    good = mixture.average_log_likelihood(fresh)
    bad = mixture.average_log_likelihood(fresh + 100.0)
    print(
        f"\naverage log likelihood on fresh data: {good:.2f} "
        f"(vs {bad:.2f} on shifted data)"
    )
    assert good > bad

    if args.spans_out is not None:
        from repro.obs import to_chrome_trace

        payload = to_chrome_trace(spans.spans())
        with open(args.spans_out, "w") as handle:
            json.dump(payload, handle)
        print(
            f"\nwrote {len(payload['traceEvents'])} trace events "
            f"({len(spans)} spans) to {args.spans_out}"
        )
    if server is not None:
        if args.serve_seconds > 0.0:
            print(
                f"holding telemetry server for {args.serve_seconds:.0f}s "
                f"at {server.url}",
                flush=True,
            )
            time.sleep(args.serve_seconds)
        server.close()


if __name__ == "__main__":
    main()
