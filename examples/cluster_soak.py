#!/usr/bin/env python
"""The §7 tree at deployment scale (self-checking).

Two demonstrations on the in-process :class:`TransportTree`, where every
tree edge is a real ARQ transport link:

1. **Soak**: many sites stream through a 2-level aggregation tree; the
   root's mixture is compared against a flat single-coordinator
   reference fed byte-identical records, scored on a pooled holdout.
   Passing means aggregation through the tree cost essentially nothing
   versus shipping every synopsis to one coordinator.
2. **Crash/restore**: one gateway aggregator is checkpointed (model set
   plus ARQ edge state) and rebuilt mid-run; the root still converges
   to the same mixture as an uninterrupted run.

The multi-process version of the same topology is one command away:
``cludistream cluster --sites 60 --fanin 8``.

Run:  python examples/cluster_soak.py [--sites N] [--records N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.cluster import TransportTree, run_soak, soak_spec
from repro.cluster.data import site_records


def soak(sites: int, records: int) -> None:
    spec = soak_spec(sites=sites, fanin=8, records_per_site=records)
    print(spec.describe())
    report = run_soak(spec)
    print(report.summary())
    assert report.passed, "tree diverged from the flat reference"
    assert report.records == sites * records
    # The §6 gauge, split by hop: leaves generate most of the traffic,
    # gateways absorb it (they upload only on mixture change).
    per_hop = {level.level: level.wire_bytes for level in report.levels}
    print(f"wire bytes by hop (level -> bytes): {per_hop}")
    assert per_hop[2] > 0


def crash_and_restore(sites: int, records: int) -> None:
    spec = soak_spec(sites=sites, fanin=8, records_per_site=records)
    gateway_id = next(
        a.node_id for a in spec.aggregators if not a.is_root
    )

    def run(crash: bool) -> np.ndarray:
        tree = TransportTree.from_spec(spec)
        streams = {
            node.node_id: list(site_records(spec, node))
            for node in spec.site_nodes
        }
        half = records // 2
        for node_id, rows in streams.items():
            for row in rows[:half]:
                tree.feed(node_id, row)
        tree.drain()
        if crash:
            snapshot = tree.aggregator_snapshot(gateway_id)
            tree.restore_aggregator(snapshot)
        for node_id, rows in streams.items():
            for row in rows[half:]:
                tree.feed(node_id, row)
        tree.drain()
        mixture = tree.global_mixture()
        tree.close()
        order = np.argsort(mixture.weights)
        return np.concatenate(
            [mixture.weights[order]]
            + [mixture.components[i].mean for i in order]
        )

    baseline = run(crash=False)
    resumed = run(crash=True)
    np.testing.assert_allclose(resumed, baseline, atol=1e-9)
    print(
        f"gateway {gateway_id} crashed and restored mid-run; root mixture "
        "matches the uninterrupted run to 1e-9"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=48)
    parser.add_argument("--records", type=int, default=160)
    args = parser.parse_args()

    print("=== Soak: tree vs flat reference ===")
    soak(args.sites, args.records)
    print("\n=== Aggregator crash/restore mid-run ===")
    crash_and_restore(min(args.sites, 16), args.records)
    print("\nOK")


if __name__ == "__main__":
    main()
