#!/usr/bin/env python
"""Network-flow monitoring: the paper's NFD scenario on synthetic flows.

Twenty telecom edge collectors each observe a net-flow stream (six
attributes: source/destination host, source/destination TCP port,
packet count, data bytes).  Shipping raw flows to the data centre is
infeasible, so each collector runs CluDistream remote-site processing
and ships only model synopses.  The run happens on the discrete-event
simulator with a 1000 records/s ingest rate per site and reports the
communication-cost series the paper's Figure 2 plots.

Run:  python examples/network_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import CluDistreamConfig, EMConfig, RemoteSiteConfig
from repro.core.cludistream import CluDistream
from repro.core.coordinator import CoordinatorConfig
from repro.runtime import SimulatedChannel
from repro.streams.netflow import NetflowConfig, NetflowStreamGenerator

N_SITES = 8
RECORDS_PER_SITE = 10_000


def main() -> None:
    config = CluDistreamConfig(
        n_sites=N_SITES,
        site=RemoteSiteConfig(
            dim=6,
            epsilon=0.05,
            delta=0.05,
            em=EMConfig(n_components=5, n_init=1, max_iter=40),
            chunk_override=1000,
        ),
        coordinator=CoordinatorConfig(max_components=8),
        rate=1000.0,  # records per virtual second, as in the paper
        latency=0.01,
    )
    system = CluDistream(config, seed=7)

    streams = {
        site_id: NetflowStreamGenerator(
            NetflowConfig(segment_length=2000, p_switch=0.15),
            rng=np.random.default_rng(500 + site_id),
        )
        for site_id in range(N_SITES)
    }

    print(
        f"Simulating {N_SITES} collectors x {RECORDS_PER_SITE} flows "
        f"at {config.rate:.0f} flows/s ..."
    )
    channel = SimulatedChannel(
        rate=config.rate, latency=config.latency, bandwidth=config.bandwidth
    )
    report = system.runtime(channel).run(
        streams, max_records_per_site=RECORDS_PER_SITE
    )

    print(f"\nvirtual duration: {report.duration:.1f} s")
    print(f"records processed: {report.records}")
    print(
        f"uplink traffic: {report.accounting.attempted} messages, "
        f"{report.accounting.payload_bytes} bytes"
    )
    raw_bytes = report.records * 6 * 8
    print(
        f"raw-shipping equivalent: {raw_bytes} bytes "
        f"({raw_bytes / max(report.accounting.payload_bytes, 1):.0f}x more)"
    )

    print("\ncumulative communication cost (sampled every second):")
    times, values = channel.cost_series()
    for time, value in list(zip(times, values))[:: max(1, len(times) // 10)]:
        bar = "#" * int(50 * value / max(values[-1], 1))
        print(f"  t={time:6.1f}s  {int(value):>8} B  {bar}")

    print("\nglobal traffic clusters (coordinator view):")
    mixture = system.global_mixture()
    schema = ("srcH", "dstH", "srcP", "dstP", "pkts", "bytes")
    print("    weight  " + "  ".join(f"{name:>6}" for name in schema))
    for weight, component in sorted(mixture, key=lambda pair: pair[0], reverse=True):
        cells = "  ".join(f"{value:6.2f}" for value in component.mean)
        print(f"    {weight:6.3f}  {cells}")


if __name__ == "__main__":
    main()
