"""Command-line interface: ``cludistream``.

Three subcommands cover the common workflows without writing code:

* ``cludistream chunk-size -d 4 --epsilon 0.02 --delta 0.01`` -- the
  Theorem 1 chunk size for a parameter choice;
* ``cludistream run --sites 4 --records 8000 --stream synthetic`` --
  run a full distributed system over synthetic or net-flow streams and
  print the per-site and coordinator summary;
* ``cludistream compare-comm --sites 4 --records 6000`` -- the Figure 2
  communication comparison against periodic SEM reporting;
* ``cludistream report -o report.md`` -- run a compact reproduction
  (communication + quality + parameter math) and write a Markdown
  summary;
* ``cludistream serve --expected-sites 2`` / ``cludistream site
  --site-id 0 --port PORT`` -- a real multi-process deployment: the
  coordinator listens on a TCP socket and remote-site processes stream
  synopses to it over the fault-tolerant transport
  (:mod:`repro.transport`);
* ``cludistream stats trace.jsonl`` -- summarise a structured trace
  written by ``--trace-file`` into per-site and system-wide counts
  (``--format json`` for the machine-readable twin);
* ``cludistream monitor --url http://127.0.0.1:9464`` -- a refreshing
  terminal dashboard polling a run started with ``--serve-telemetry``
  (or ``--trace trace.jsonl`` to replay a recorded run);
* ``cludistream bench --suite core --json BENCH_core.json`` -- run the
  :mod:`repro.bench` performance suite (seeded workloads, trimmed
  statistics) and optionally gate against a checked-in baseline with
  ``--baseline BENCH_core.json``.

The same entry point is also installed as ``repro`` (so ``repro
bench`` works as documented); both names accept every subcommand.

``run``, ``serve`` and ``site`` all take ``--checkpoint-dir`` /
``--resume``: the run's state (sites, coordinator, stream position) is
saved as JSON checkpoints, and a crashed or interrupted process can be
restarted from them, converging to the same final state as an
uninterrupted run (streams are seeded, so records replay exactly).

All commands accept ``--seed`` for reproducibility, and the global
``--log-level`` / ``--trace-file`` flags turn on structured tracing
(every chunk test, EM fit, merge/split decision and transport action as
one JSONL event).  Exit status is 0 on success; argument errors exit
with argparse's usual status 2.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Sequence

import numpy as np

__all__ = ["build_parser", "main"]

_LOG_LEVELS = ("debug", "info", "warning", "error")


def build_parser() -> argparse.ArgumentParser:
    """The ``cludistream`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="cludistream",
        description="CluDistream: distributed data stream clustering (ICDE 2007).",
    )
    parser.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default="warning",
        help="python logging level; 'debug' also mirrors trace events "
        "to the 'repro.obs' logger",
    )
    parser.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="append structured JSONL trace events to PATH "
        "(summarise later with 'cludistream stats PATH')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chunk = sub.add_parser(
        "chunk-size", help="compute the Theorem 1 chunk size M"
    )
    chunk.add_argument("-d", "--dim", type=int, default=4)
    chunk.add_argument("--epsilon", type=float, default=0.02)
    chunk.add_argument("--delta", type=float, default=0.01)

    run = sub.add_parser(
        "run", help="run a distributed clustering experiment"
    )
    run.add_argument("--sites", type=int, default=4)
    run.add_argument("--records", type=int, default=8000, help="per site")
    run.add_argument(
        "--stream",
        choices=("synthetic", "netflow"),
        default="synthetic",
    )
    run.add_argument("--clusters", type=int, default=5, help="K")
    run.add_argument("--epsilon", type=float, default=0.05)
    run.add_argument("--delta", type=float, default=0.05)
    run.add_argument("--chunk", type=int, default=1000)
    run.add_argument("--p-new", type=float, default=0.1, help="P_d")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--incremental",
        action="store_true",
        help="enable the incremental EM refit ladder at every site "
        "(reactivate -> warm-start EM -> cold refit)",
    )
    run.add_argument(
        "--simulate",
        action="store_true",
        help="run on the discrete-event engine (reports virtual time)",
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="write a runtime checkpoint (sites + coordinator + stream "
        "position) to DIR when the run completes",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="also checkpoint every N stream rounds (requires "
        "--checkpoint-dir)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint in --checkpoint-dir; the "
        "seeded streams are replayed and already-consumed records "
        "skipped",
    )
    _add_telemetry_flags(run)
    _add_history_flags(run)

    comm = sub.add_parser(
        "compare-comm",
        help="communication cost vs periodic SEM reporting (Figure 2)",
    )
    comm.add_argument("--sites", type=int, default=4)
    comm.add_argument("--records", type=int, default=6000, help="per site")
    comm.add_argument("--chunk", type=int, default=500)
    comm.add_argument("--p-new", type=float, default=0.1, help="P_d")
    comm.add_argument("--seed", type=int, default=0)

    report = sub.add_parser(
        "report",
        help="run a compact reproduction and write a Markdown summary",
    )
    report.add_argument(
        "-o", "--output", default="cludistream-report.md",
        help="output path (default: cludistream-report.md)",
    )
    report.add_argument("--sites", type=int, default=2)
    report.add_argument("--records", type=int, default=4000, help="per site")
    report.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="run the coordinator as a TCP server (multi-process mode)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--expected-sites", type=int, default=2,
        help="exit once this many sites report completion",
    )
    serve.add_argument("--clusters", type=int, default=5, help="global cap")
    serve.add_argument(
        "--timeout", type=float, default=300.0,
        help="give up after this many seconds",
    )
    serve.add_argument(
        "--stale-after", type=float, default=30.0,
        help="flag sites silent for this long as stale",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="save the coordinator state to DIR/coordinator.json when "
        "the server exits (even on timeout)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="start from the coordinator checkpoint in --checkpoint-dir",
    )
    _add_codec_flags(serve)
    _add_telemetry_flags(serve)
    _add_history_flags(serve)

    site = sub.add_parser(
        "site",
        help="run one remote site against a TCP coordinator",
    )
    site.add_argument("--host", default="127.0.0.1")
    site.add_argument("--port", type=int, required=True)
    site.add_argument("--site-id", type=int, default=0)
    site.add_argument("--records", type=int, default=2000)
    site.add_argument(
        "--stream", choices=("synthetic", "netflow"), default="synthetic"
    )
    site.add_argument("--clusters", type=int, default=3, help="K")
    site.add_argument("--dim", type=int, default=4)
    site.add_argument("--epsilon", type=float, default=0.05)
    site.add_argument("--delta", type=float, default=0.05)
    site.add_argument("--chunk", type=int, default=500)
    site.add_argument("--p-new", type=float, default=0.1, help="P_d")
    site.add_argument("--seed", type=int, default=0)
    site.add_argument(
        "--incremental",
        action="store_true",
        help="enable the incremental EM refit ladder on this site",
    )
    site.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="save the site state to DIR/site-<id>.json after the run",
    )
    site.add_argument(
        "--resume",
        action="store_true",
        help="restore the site from --checkpoint-dir and stream only "
        "the records beyond its recorded position",
    )
    _add_codec_flags(site)

    cluster = sub.add_parser(
        "cluster",
        help="deploy a multi-level aggregation tree as real processes",
    )
    cluster.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="load the topology from a JSON spec file (see --write-spec); "
        "overrides the shape flags below",
    )
    cluster.add_argument(
        "--write-spec",
        default=None,
        metavar="PATH",
        help="write the resolved spec as JSON and exit without launching",
    )
    cluster.add_argument(
        "--sites", type=int, default=None,
        help="number of leaf sites (default: 8; soak mode: 1000)",
    )
    cluster.add_argument(
        "--fanin", type=int, default=None,
        help="max children per aggregator (default: 4; soak mode: 32)",
    )
    cluster.add_argument(
        "--depth", type=int, default=None,
        help="force this many aggregator levels (default: derived from "
        "--sites/--fanin; 1 = flat star)",
    )
    cluster.add_argument(
        "--records", type=int, default=None,
        help="records per site (default: 2000; soak mode: 300)",
    )
    cluster.add_argument("--clusters", type=int, default=3, help="K")
    cluster.add_argument("--dim", type=int, default=2)
    cluster.add_argument("--epsilon", type=float, default=0.05)
    cluster.add_argument("--delta", type=float, default=0.05)
    cluster.add_argument("--chunk", type=int, default=500)
    cluster.add_argument(
        "--stream", choices=("synthetic", "netflow"), default="synthetic"
    )
    cluster.add_argument("--p-new", type=float, default=0.1, help="P_d")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--base-port", type=int, default=0,
        help="assign consecutive aggregator ports starting here "
        "(0 = ephemeral, actually bound ports printed at startup)",
    )
    cluster.add_argument(
        "--upload-threshold", type=float, default=0.05,
        help="mixture-change score above which an aggregator uploads "
        "to its parent",
    )
    cluster.add_argument(
        "--merge-method", choices=("simplex", "moment"), default="simplex",
        help="coordinator merge refit (paper default: simplex)",
    )
    cluster.add_argument(
        "--incremental",
        action="store_true",
        help="enable the incremental EM refit ladder at every site "
        "(per-node overrides in a JSON spec take precedence)",
    )
    cluster.add_argument(
        "--timeout", type=float, default=None,
        help="give up waiting for completion after this many seconds",
    )
    cluster.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="each aggregator writes its checkpoint and an endpoint "
        "manifest under DIR on exit",
    )
    cluster.add_argument(
        "--resume",
        action="store_true",
        help="restart aggregators from checkpoints in --checkpoint-dir "
        "(including ARQ edge state)",
    )
    cluster.add_argument(
        "--soak",
        action="store_true",
        help="run the in-process soak harness (tree vs flat reference "
        "on identical streams) instead of spawning processes",
    )
    cluster.add_argument(
        "--soak-tolerance", type=float, default=0.5,
        help="max acceptable avg log-likelihood gap, nats per holdout "
        "record (soak mode)",
    )
    cluster.add_argument(
        "--telemetry-interval", type=float, default=None, metavar="SECONDS",
        help="seconds between federated telemetry flushes up the tree "
        "(default: spec value, 2.0); with --serve-telemetry the root "
        "additionally serves /cluster/health, /cluster/nodes and "
        "/cluster/spans",
    )
    _add_codec_flags(cluster)
    _add_telemetry_flags(cluster)
    # Bool only: cluster histories keep the library defaults (alpha=2,
    # l=2); pin different knobs through a JSON spec if needed.
    _add_history_flags(cluster, knobs=False)

    stats = sub.add_parser(
        "stats",
        help="summarise a JSONL trace written with --trace-file",
    )
    stats.add_argument("trace", help="path of the trace file")
    stats.add_argument(
        "--format",
        choices=("text", "json"),
        default=None,
        help="output format (default: text)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json",
    )
    stats.add_argument(
        "--window", nargs=2, type=int, default=None, metavar=("T0", "T1"),
        help="instead of the run summary, report drift analytics over "
        "[T0, T1] folded from the trace's history.snapshot events -- "
        "the same computation the live /history/drift endpoint serves "
        "(requires a trace recorded with --history)",
    )
    stats.add_argument(
        "--scope", default=None, metavar="SCOPE",
        help="with --window: which history to fold when the trace "
        "carries several (e.g. 'coordinator', 'site:0'; default: "
        "the coordinator's, else the first recorded)",
    )

    monitor = sub.add_parser(
        "monitor",
        help="refreshing terminal dashboard for a live or recorded run",
    )
    monitor.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="telemetry server base URL (from --serve-telemetry)",
    )
    monitor.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="replay a JSONL trace file instead of polling a server",
    )
    monitor.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes (default: 1.0)",
    )
    monitor.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N refreshes (default: run until interrupted; "
        "--trace defaults to a single render)",
    )
    monitor.add_argument(
        "--no-clear",
        action="store_true",
        help="do not clear the screen between refreshes",
    )
    monitor.add_argument(
        "--cluster",
        action="store_true",
        help="render the federated cluster dashboard (tree topology, "
        "per-node health tiles, per-level wire cost) from the root's "
        "/cluster/* endpoints instead of the single-run view",
    )

    bench = sub.add_parser(
        "bench",
        help="run the repro.bench performance suite",
    )
    bench.add_argument(
        "--suite",
        default="core",
        help="scenario suite to run (default: core; 'comm' runs the "
        "wire-efficiency codec cells instead of timing scenarios)",
    )
    bench.add_argument(
        "--scenarios",
        default=None,
        metavar="A,B,...",
        help="comma-separated scenario names (overrides --suite)",
    )
    bench.add_argument("--repeats", type=int, default=7)
    bench.add_argument("--warmup", type=int, default=2)
    bench.add_argument(
        "--trim", type=float, default=0.2,
        help="fraction trimmed from each tail of the sorted times",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the report to PATH (e.g. BENCH_core.json)",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="compare the run against a baseline report; exit 1 on "
        "regression",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="allowed slowdown vs --baseline (default: 0.25)",
    )
    bench.add_argument(
        "--compare",
        nargs=2,
        default=None,
        metavar=("BASELINE", "CANDIDATE"),
        help="compare two existing reports instead of running anything",
    )
    bench.add_argument(
        "--list",
        action="store_true",
        help="list registered scenarios and suites, then exit",
    )
    return parser


def _add_codec_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--wire-codec",
        choices=("cds1", "cds2"),
        default="cds1",
        help="wire codec for transport edges (DESIGN.md section 15; "
        "both ends of an edge must agree, default: cds1)",
    )
    parser.add_argument(
        "--quantize",
        choices=("f64", "f32", "f16"),
        default="f64",
        help="covariance precision on the wire (cds2 only; f32/f16 ship "
        "quantized Cholesky factors, default: f64 = exact)",
    )
    parser.add_argument(
        "--delta-encoding",
        action="store_true",
        help="cds2 only: ship only components changed since the last "
        "acknowledged update instead of full snapshots",
    )


def _codec_config(args: argparse.Namespace):
    from repro.core.serde import CodecConfig

    return CodecConfig(quantize=args.quantize, delta=args.delta_encoding)


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--serve-telemetry",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live /metrics, /health, /snapshot and /spans over "
        "HTTP on PORT while running (0 = ephemeral port, printed at "
        "startup); watch it with 'cludistream monitor --url ...'",
    )
    parser.add_argument(
        "--telemetry-hold",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the telemetry server up this long after the run "
        "finishes (for scrapes of the final state)",
    )


def _add_history_flags(
    parser: argparse.ArgumentParser, knobs: bool = True
) -> None:
    parser.add_argument(
        "--history",
        action="store_true",
        help="record pyramidal model history for time-travel queries: "
        "/history endpoints on the telemetry server, drift analytics "
        "('cludistream stats --window T0 T1' on a trace), and retained "
        "snapshots that ride checkpoints across --resume",
    )
    if not knobs:
        return
    parser.add_argument(
        "--history-alpha", type=int, default=2, metavar="ALPHA",
        help="pyramid base: snapshot order i holds ticks divisible by "
        "ALPHA^i (default: 2)",
    )
    parser.add_argument(
        "--history-capacity", type=int, default=2, metavar="L",
        help="snapshots retained per order: ALPHA^L + 1 (default: 2)",
    )
    parser.add_argument(
        "--history-bytes", type=int, default=None, metavar="BYTES",
        help="hard memory budget for retained snapshot payloads; the "
        "globally oldest are evicted first (default: unbounded)",
    )


def _make_history(args: argparse.Namespace, scope: str, gauge_source=None):
    """A :class:`ModelHistory` from the ``--history`` flags, or ``None``."""
    if not getattr(args, "history", False):
        return None
    from repro.obs import ModelHistory

    return ModelHistory(
        alpha=args.history_alpha,
        capacity=args.history_capacity,
        max_bytes=args.history_bytes,
        scope=scope,
        gauge_source=gauge_source,
    )


def _build_observer(args: argparse.Namespace, extra_sinks: Sequence = ()):
    """Observer from the global flags, or ``None`` when tracing is off.

    ``--trace-file`` installs a JSONL sink; ``--log-level debug``
    additionally mirrors every event to the ``repro.obs`` logger.
    ``extra_sinks`` (e.g. a live :class:`~repro.obs.health.HealthMonitor`
    or :class:`~repro.obs.spans.SpanCollector`) also force a live
    observer.
    """
    from repro.obs import (
        JsonlTraceSink,
        LoggingTraceSink,
        MultiSink,
        Observer,
    )

    sinks: list = []
    if args.trace_file:
        sinks.append(JsonlTraceSink(args.trace_file))
    if args.log_level == "debug":
        sinks.append(LoggingTraceSink())
    sinks.extend(extra_sinks)
    if not sinks:
        return None
    return Observer(sink=sinks[0] if len(sinks) == 1 else MultiSink(sinks))


def _telemetry_setup(args: argparse.Namespace):
    """Health/span sinks for ``--serve-telemetry``, or ``(None, ())``."""
    if getattr(args, "serve_telemetry", None) is None:
        return None, None, ()
    from repro.obs import HealthMonitor, SpanCollector

    health = HealthMonitor()
    spans = SpanCollector()
    return health, spans, (health, spans)


def _cmd_chunk_size(args: argparse.Namespace) -> int:
    from repro.core.chunking import chunk_size, window_error_bound

    m = chunk_size(args.dim, args.epsilon, args.delta)
    print(f"chunk size M = {m} records")
    print(
        "evolving-analysis window error M/2 = "
        f"{window_error_bound(args.dim, args.epsilon, args.delta):.0f} records"
    )
    return 0


def _make_streams(args: argparse.Namespace, dim: int):
    if args.stream == "netflow":
        from repro.streams.netflow import NetflowConfig, NetflowStreamGenerator

        return {
            i: NetflowStreamGenerator(
                NetflowConfig(p_switch=args.p_new),
                rng=np.random.default_rng(args.seed + 100 + i),
            )
            for i in range(args.sites)
        }
    from repro.streams.synthetic import (
        EvolvingGaussianStream,
        EvolvingStreamConfig,
    )

    return {
        i: EvolvingGaussianStream(
            EvolvingStreamConfig(
                dim=dim,
                n_components=args.clusters,
                p_new_distribution=args.p_new,
            ),
            rng=np.random.default_rng(args.seed + 100 + i),
        )
        for i in range(args.sites)
    }


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.cludistream import CluDistream, CluDistreamConfig
    from repro.core.coordinator import CoordinatorConfig
    from repro.core.em import EMConfig
    from repro.core.remote import RemoteSiteConfig

    dim = 6 if args.stream == "netflow" else 4
    config = CluDistreamConfig(
        n_sites=args.sites,
        site=RemoteSiteConfig(
            dim=dim,
            epsilon=args.epsilon,
            delta=args.delta,
            em=EMConfig(
                n_components=args.clusters,
                n_init=1,
                max_iter=40,
                incremental=args.incremental,
            ),
            chunk_override=args.chunk,
        ),
        coordinator=CoordinatorConfig(max_components=2 * args.clusters),
    )
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    health, span_collector, extra_sinks = _telemetry_setup(args)
    observer = _build_observer(args, extra_sinks)
    system = CluDistream(config, seed=args.seed, observer=observer)
    streams = _make_streams(args, dim)
    sites = system.sites
    coordinator = system.coordinator

    from repro.runtime import DirectChannel, Runtime, SimulatedChannel

    if args.simulate:
        channel = SimulatedChannel(
            rate=config.rate,
            latency=config.latency,
            bandwidth=config.bandwidth,
        )
    else:
        channel = DirectChannel()
    if args.resume:
        runtime = Runtime.resume(
            args.checkpoint_dir,
            channel,
            observer=observer,
            checkpoint_every=args.checkpoint_every,
        )
        resumed_at = runtime.rounds_completed
        sites = runtime.sites
        coordinator = runtime.coordinator
    else:
        runtime = system.runtime(
            channel,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
        resumed_at = 0
    if args.history:
        # A resumed node restores its retained history from the
        # checkpoint; attach fresh stores only where none rode along.
        try:
            if coordinator.history is None:
                coordinator.history = _make_history(args, "coordinator")
            for site in sites:
                if site.history is None:
                    site.history = _make_history(
                        args, f"site:{site.site_id}"
                    )
                    site.history.observer = site._obs
        except ValueError as error:
            print(f"invalid --history settings: {error}", file=sys.stderr)
            return 2
    if coordinator.history is not None:
        coordinator.history.observer = coordinator._obs
        if health is not None:
            coordinator.history.gauge_source = health.history_gauges
    server = None
    if health is not None:
        from repro.obs import TelemetryServer, system_snapshot

        health.bind(
            component_count=lambda: coordinator.n_components,
            accounting=runtime.accounting,
        )
        try:
            server = TelemetryServer(
                observer,
                health=health,
                spans=span_collector,
                snapshot=lambda: system_snapshot(
                    sites, coordinator, runtime.accounting()
                ),
                port=args.serve_telemetry,
                history=coordinator.history,
            ).start()
        except OSError as error:
            print(
                f"cannot bind telemetry port {args.serve_telemetry}: {error}",
                file=sys.stderr,
            )
            return 1
        print(f"telemetry: {server.url}", flush=True)
        # Record the *bound* endpoint (port 0 resolves at bind time) so
        # checkpoint manifests point at the live server.
        runtime.endpoints["telemetry"] = {
            "port": server.port,
            "url": server.url,
        }
    report = runtime.run(streams, max_records_per_site=args.records)
    if args.simulate:
        print(
            f"simulated {report.records} records in "
            f"{report.duration:.1f} virtual seconds"
        )
    else:
        print(f"processed {report.records} records")
    if resumed_at:
        print(f"resumed from round {resumed_at}")
    if args.checkpoint_dir:
        print(f"checkpoint written to {args.checkpoint_dir}")

    for site in sites:
        print(
            f"site {site.site_id}: models={len(site.all_models)} "
            f"tests={site.stats.n_tests} em_runs={site.stats.n_clusterings} "
            f"reactivations={site.stats.n_reactivations} "
            f"bytes={site.stats.bytes_sent}"
        )
    print(
        f"coordinator: clusters={coordinator.n_components} "
        f"messages={coordinator.stats.messages_received} "
        f"bytes={coordinator.stats.bytes_received} "
        f"merges={coordinator.stats.merges} splits={coordinator.stats.splits}"
    )
    mixture = coordinator.global_mixture()
    for weight, component in sorted(
        mixture, key=lambda pair: pair[0], reverse=True
    ):
        print(f"  w={weight:.3f}  mean={np.round(component.mean, 2)}")
    if server is not None:
        if args.telemetry_hold > 0.0:
            import time

            print(
                f"holding telemetry server for {args.telemetry_hold:.0f}s",
                flush=True,
            )
            time.sleep(args.telemetry_hold)
        server.close()
    if observer is not None:
        observer.close()
        if args.trace_file:
            print(f"trace written to {args.trace_file}")
    return 0


def _cmd_compare_comm(args: argparse.Namespace) -> int:
    from repro.core.em import EMConfig
    from repro.core.remote import RemoteSiteConfig
    from repro.baselines.periodic import PeriodicReporterConfig
    from repro.baselines.sem import SEMConfig
    from repro.evaluation.comm import compare_communication
    from repro.streams.base import take
    from repro.streams.synthetic import (
        EvolvingGaussianStream,
        EvolvingStreamConfig,
    )

    def make_streams(seed: int):
        return {
            i: take(
                EvolvingGaussianStream(
                    EvolvingStreamConfig(p_new_distribution=args.p_new),
                    rng=np.random.default_rng(seed + 31 * i),
                ),
                args.records,
            )
            for i in range(args.sites)
        }

    em = EMConfig(n_components=5, n_init=1, max_iter=40)
    comparison = compare_communication(
        make_streams,
        n_sites=args.sites,
        records_per_site=args.records,
        site_config=RemoteSiteConfig(
            dim=4, epsilon=0.05, delta=0.05, em=em, chunk_override=args.chunk
        ),
        periodic_config=PeriodicReporterConfig(
            period=args.chunk,
            sem=SEMConfig(n_components=5, buffer_size=args.chunk, em=em),
        ),
        sample_every=max(args.chunk, args.records // 8),
        seed=args.seed,
    )
    print(f"{'updates':>10}  {'CluDistream (B)':>16}  {'periodic SEM (B)':>16}")
    for position, clu, periodic in zip(
        comparison.positions,
        comparison.cludistream_series,
        comparison.periodic_series,
    ):
        print(f"{position:>10}  {clu:>16}  {periodic:>16}")
    print(
        f"total: {comparison.cludistream_bytes} B vs "
        f"{comparison.periodic_bytes} B -> {comparison.ratio:.1f}x savings"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.baselines.periodic import PeriodicReporterConfig
    from repro.baselines.sem import ScalableEM, SEMConfig
    from repro.core.chunking import chunk_size
    from repro.core.em import EMConfig
    from repro.core.remote import RemoteSite, RemoteSiteConfig
    from repro.evaluation.comm import compare_communication
    from repro.evaluation.report import ExperimentReport
    from repro.streams.base import take
    from repro.streams.synthetic import (
        EvolvingGaussianStream,
        EvolvingStreamConfig,
    )
    from repro.windows.horizon import horizon_mixture

    chunk = 500
    em = EMConfig(n_components=5, n_init=1, max_iter=40)
    report = ExperimentReport(
        "CluDistream reproduction summary (compact run)"
    )

    # Section 1: Theorem 1 parameter math.
    section = report.section("Theorem 1 chunk sizes")
    section.add_text(
        "Chunk size M = -2d·ln(δ(2-δ))/ε for representative parameters."
    )
    section.add_table(
        ("d", "epsilon", "delta", "M"),
        [
            (d, eps, delta, chunk_size(d, eps, delta))
            for d, eps, delta in (
                (4, 0.02, 0.01),
                (4, 0.1, 0.01),
                (6, 0.02, 0.01),
            )
        ],
    )

    # Section 2: communication comparison (Figure 2 shape).
    def make_streams(seed: int):
        return {
            i: take(
                EvolvingGaussianStream(
                    EvolvingStreamConfig(p_new_distribution=0.1),
                    rng=np.random.default_rng(seed + 31 * i),
                ),
                args.records,
            )
            for i in range(args.sites)
        }

    comparison = compare_communication(
        make_streams,
        n_sites=args.sites,
        records_per_site=args.records,
        site_config=RemoteSiteConfig(
            dim=4, epsilon=0.05, delta=0.05, em=em, chunk_override=chunk
        ),
        periodic_config=PeriodicReporterConfig(
            period=chunk,
            sem=SEMConfig(n_components=5, buffer_size=chunk, em=em),
        ),
        sample_every=max(chunk, args.records // 4),
        seed=args.seed,
    )
    section = report.section("Communication cost (Figure 2 shape)")
    section.add_series(
        "CluDistream bytes", [float(v) for v in comparison.cludistream_series]
    )
    section.add_series(
        "periodic SEM bytes", [float(v) for v in comparison.periodic_series]
    )
    section.add_verdict(
        comparison.ratio > 1.0,
        f"CluDistream ships {comparison.ratio:.1f}x fewer bytes than "
        "periodic reporting",
    )

    # Section 3: quality on an evolving stream (Figure 5 shape).
    stream = EvolvingGaussianStream(
        EvolvingStreamConfig(p_new_distribution=0.5, separation=4.0),
        rng=np.random.default_rng(args.seed + 7),
    )
    data = take(stream, args.records)
    site = RemoteSite(
        0,
        RemoteSiteConfig(
            dim=4, epsilon=0.05, delta=0.05, em=em, chunk_override=chunk
        ),
        rng=np.random.default_rng(args.seed + 8),
    )
    sem = ScalableEM(
        4,
        SEMConfig(n_components=5, buffer_size=chunk, em=em),
        rng=np.random.default_rng(args.seed + 9),
    )
    for row in data:
        site.process_record(row)
        sem.process_record(row)
    holdout, _ = stream.segments[-1].mixture.sample(
        1000, np.random.default_rng(args.seed + 10)
    )
    clu_quality = horizon_mixture(site, 2000).average_log_likelihood(holdout)
    sem_quality = sem.current_model().average_log_likelihood(holdout)
    section = report.section("Cluster quality (Figure 5 shape)")
    section.add_table(
        ("algorithm", "avg log likelihood"),
        [("CluDistream (horizon)", clu_quality), ("SEM", sem_quality)],
    )
    section.add_verdict(
        clu_quality > sem_quality,
        "CluDistream beats SEM on the current distribution",
    )

    path = report.write(args.output)
    print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.core.coordinator import Coordinator, CoordinatorConfig
    from repro.transport.reliability import ReliabilityConfig
    from repro.transport.tcp import CoordinatorServer

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    health, span_collector, extra_sinks = _telemetry_setup(args)
    observer = _build_observer(args, extra_sinks)

    async def _run() -> int:
        if args.resume:
            from repro.io.checkpoint import load_coordinator

            coordinator = load_coordinator(
                Path(args.checkpoint_dir) / "coordinator.json",
                observer=observer,
            )
            print(
                f"resumed coordinator from {args.checkpoint_dir} "
                f"(clusters={coordinator.n_components})",
                flush=True,
            )
        else:
            coordinator = Coordinator(
                CoordinatorConfig(max_components=args.clusters),
                observer=observer,
            )
        if args.history and coordinator.history is None:
            # A resumed coordinator restores its retained history from
            # the checkpoint; only attach fresh when none rode along.
            try:
                coordinator.history = _make_history(args, "coordinator")
            except ValueError as error:
                print(
                    f"invalid --history settings: {error}", file=sys.stderr
                )
                return 2
        if coordinator.history is not None:
            coordinator.history.observer = coordinator._obs
            if health is not None:
                coordinator.history.gauge_source = health.history_gauges
        telemetry = None
        if health is not None:
            from repro.obs import TelemetryServer, system_snapshot

            health.bind(component_count=lambda: coordinator.n_components)
            try:
                telemetry = TelemetryServer(
                    observer,
                    health=health,
                    spans=span_collector,
                    snapshot=lambda: system_snapshot([], coordinator),
                    port=args.serve_telemetry,
                    history=coordinator.history,
                ).start()
            except OSError as error:
                print(
                    f"cannot bind telemetry port {args.serve_telemetry}: "
                    f"{error}",
                    file=sys.stderr,
                )
                return 1
            print(f"telemetry: {telemetry.url}", flush=True)
        server = CoordinatorServer(
            coordinator,
            expected_sites=args.expected_sites,
            config=ReliabilityConfig(stale_after=args.stale_after),
            observer=observer,
            wire_codec=args.wire_codec,
            codec_config=_codec_config(args),
        )
        try:
            await server.start(args.host, args.port)
        except OSError as error:
            if telemetry is not None:
                telemetry.close()
            print(
                f"cannot bind {args.host}:{args.port}: {error}",
                file=sys.stderr,
            )
            return 1
        # The bound port outlives the server object's socket (the
        # manifest is written after close), so read it out now.
        bound_port = server.port
        print(f"listening on {args.host}:{bound_port}", flush=True)
        completed = await server.wait_done(timeout=args.timeout)
        stale = server.stale_sites()
        await server.close()
        if telemetry is not None:
            if args.telemetry_hold > 0.0:
                await asyncio.sleep(args.telemetry_hold)
            telemetry.close()
        if args.checkpoint_dir:
            import json

            from repro.io.checkpoint import save_coordinator

            target = Path(args.checkpoint_dir)
            target.mkdir(parents=True, exist_ok=True)
            save_coordinator(coordinator, target / "coordinator.json")
            endpoints = {"tcp": {"host": args.host, "port": bound_port}}
            if telemetry is not None:
                endpoints["telemetry"] = {
                    "port": telemetry.port,
                    "url": telemetry.url,
                }
            (target / "manifest.json").write_text(
                json.dumps(
                    {
                        "format": 1,
                        "kind": "coordinator_server",
                        "endpoints": endpoints,
                    },
                    indent=2,
                )
            )
            print(f"coordinator checkpoint written to {target}")
        stats = server.receiver.stats
        print(
            f"coordinator: clusters={coordinator.n_components} "
            f"messages={coordinator.stats.messages_received} "
            f"payload_bytes={coordinator.stats.bytes_received} "
            f"merges={coordinator.stats.merges} "
            f"splits={coordinator.stats.splits}"
        )
        print(
            f"delivery: delivered={stats.delivered} "
            f"dupes_suppressed={stats.duplicates_suppressed} "
            f"acks={stats.acks_sent} "
            f"wire_bytes={stats.wire_bytes_received}"
        )
        if stale:
            print(f"stale sites: {sorted(stale)}")
        if not completed:
            print("timed out waiting for sites", flush=True)
            return 1
        for weight, component in sorted(
            coordinator.global_mixture(), key=lambda pair: pair[0], reverse=True
        ):
            print(f"  w={weight:.3f}  mean={np.round(component.mean, 2)}")
        print("all sites completed", flush=True)
        return 0

    try:
        return asyncio.run(_run())
    finally:
        if observer is not None:
            observer.close()


def _cmd_site(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.core.em import EMConfig
    from repro.core.remote import RemoteSiteConfig
    from repro.streams.base import take
    from repro.transport.tcp import run_site_client

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    if args.stream == "netflow":
        from repro.streams.netflow import NetflowConfig, NetflowStreamGenerator

        dim = 6
        generator = NetflowStreamGenerator(
            NetflowConfig(p_switch=args.p_new),
            rng=np.random.default_rng(args.seed + 100 + args.site_id),
        )
    else:
        from repro.streams.synthetic import (
            EvolvingGaussianStream,
            EvolvingStreamConfig,
        )

        dim = args.dim
        generator = EvolvingGaussianStream(
            EvolvingStreamConfig(
                dim=dim,
                n_components=args.clusters,
                p_new_distribution=args.p_new,
            ),
            rng=np.random.default_rng(args.seed + 100 + args.site_id),
        )
    records = take(generator, args.records)
    config = RemoteSiteConfig(
        dim=dim,
        epsilon=args.epsilon,
        delta=args.delta,
        em=EMConfig(
            n_components=args.clusters,
            n_init=1,
            max_iter=40,
            incremental=args.incremental,
        ),
        chunk_override=args.chunk,
    )
    observer = _build_observer(args)
    restored = None
    if args.resume:
        from repro.io.checkpoint import load_site

        restored = load_site(
            Path(args.checkpoint_dir) / f"site-{args.site_id}.json",
            observer=observer,
        )
        # The seeded generator replays the original stream; hand the
        # restored site only the records beyond its recorded position.
        records = records[restored.position:]
        print(
            f"site {args.site_id}: resumed at position "
            f"{restored.position} ({len(records)} records left)"
        )
    try:
        site, report = asyncio.run(
            run_site_client(
                args.site_id,
                records,
                args.host,
                args.port,
                site_config=config,
                seed=args.seed,
                observer=observer,
                site=restored,
                wire_codec=args.wire_codec,
                codec_config=_codec_config(args),
            )
        )
    except OSError as error:
        print(
            f"site {args.site_id}: cannot reach coordinator at "
            f"{args.host}:{args.port} ({error})",
            file=sys.stderr,
        )
        return 1
    finally:
        if observer is not None:
            observer.close()
    if args.checkpoint_dir:
        from repro.io.checkpoint import save_site

        target = Path(args.checkpoint_dir)
        target.mkdir(parents=True, exist_ok=True)
        save_site(site, target / f"site-{args.site_id}.json")
        print(f"site checkpoint written to {target}")
    print(
        f"site {args.site_id}: records={report.records} "
        f"models={report.models} messages={report.messages_sent} "
        f"payload_bytes={report.payload_bytes} "
        f"wire_bytes={report.wire_bytes} "
        f"retransmissions={report.retransmissions}"
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import build_spec, load_spec, save_spec, soak_spec

    if args.spec:
        try:
            spec = load_spec(args.spec)
        except (OSError, ValueError, KeyError) as error:
            print(f"cannot load spec {args.spec}: {error}", file=sys.stderr)
            return 1
    elif args.soak:
        # Soak defaults are tuned for the 1000-site CI budget (small
        # dim/K, moment merges); shape flags still apply.
        spec = soak_spec(
            sites=args.sites if args.sites is not None else 1000,
            fanin=args.fanin if args.fanin is not None else 32,
            records_per_site=(
                args.records if args.records is not None else 300
            ),
            seed=args.seed,
        )
    else:
        try:
            spec = build_spec(
                args.sites if args.sites is not None else 8,
                args.fanin if args.fanin is not None else 4,
                depth=args.depth,
                base_port=args.base_port,
                host=args.host,
                seed=args.seed,
                clusters=args.clusters,
                dim=6 if args.stream == "netflow" else args.dim,
                epsilon=args.epsilon,
                delta=args.delta,
                chunk=args.chunk,
                stream=args.stream,
                records_per_site=(
                    args.records if args.records is not None else 2000
                ),
                p_new=args.p_new,
                upload_threshold=args.upload_threshold,
                merge_method=args.merge_method,
                incremental=args.incremental,
                wire_codec=args.wire_codec,
                quantize=args.quantize,
                delta_encoding=args.delta_encoding,
            )
        except ValueError as error:
            print(f"invalid topology: {error}", file=sys.stderr)
            return 2

    if args.telemetry_interval is not None:
        if args.telemetry_interval <= 0:
            print("invalid --telemetry-interval: must be positive",
                  file=sys.stderr)
            return 2
        from dataclasses import replace

        spec = replace(spec, telemetry_interval=args.telemetry_interval)

    if args.history and not spec.history:
        from dataclasses import replace

        spec = replace(spec, history=True)

    if args.write_spec:
        path = save_spec(spec, args.write_spec)
        print(f"spec written to {path}")
        return 0

    if args.soak:
        return _run_cluster_soak(spec, args)
    return _run_cluster_launch(spec, args)


def _run_cluster_soak(args_spec, args: argparse.Namespace) -> int:
    from repro.cluster import run_soak

    print(args_spec.describe(), flush=True)
    last_decile = -1

    def progress(done: int, total: int) -> None:
        nonlocal last_decile
        decile = (10 * done) // max(total, 1)
        if decile > last_decile:
            last_decile = decile
            print(f"  fed {done}/{total} records", flush=True)

    report = run_soak(
        spec=args_spec,
        tolerance=args.soak_tolerance,
        progress=progress,
    )
    print(report.summary())
    return 0 if report.passed else 1


def _run_cluster_launch(spec, args: argparse.Namespace) -> int:
    import signal

    from repro.cluster import ClusterLaunchError, ClusterLauncher

    launcher = ClusterLauncher(
        spec,
        serve_telemetry=args.serve_telemetry,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    def _stop_cluster() -> int:
        # A repeat Ctrl-C must not abort the cleanup mid-fan-out and
        # orphan the tree: ignore further signals while shutting down.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        print("stopping cluster (leaves first)...", flush=True)
        launcher.shutdown()
        print("cluster stopped")
        return 0

    def _sigterm(*_: object) -> None:
        raise KeyboardInterrupt

    # SIGTERM behaves like Ctrl-C: orderly leaves-first shutdown.  The
    # handler goes in *before* launch() so a signal arriving while
    # workers are still spawning tears the partial tree down instead of
    # killing only the launcher and orphaning it.
    signal.signal(signal.SIGTERM, _sigterm)
    print(spec.describe(), flush=True)
    try:
        ports = launcher.launch()
    except ClusterLaunchError as error:
        print(f"cluster launch failed: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return _stop_cluster()
    for agg in spec.aggregators:
        role = "root" if agg.is_root else f"level {agg.level}"
        print(
            f"aggregator {agg.node_id} ({role}) listening on "
            f"{spec.host}:{ports[agg.node_id]}",
            flush=True,
        )
    if launcher.telemetry_port is not None:
        print(
            f"telemetry: http://{spec.host}:{launcher.telemetry_port}",
            flush=True,
        )
        if launcher.federate:
            print(
                "cluster view: "
                f"http://{spec.host}:{launcher.telemetry_port}"
                "/cluster/health (watch with "
                "'cludistream monitor --cluster --url ...')",
                flush=True,
            )

    try:
        result = launcher.wait(timeout=args.timeout)
    except KeyboardInterrupt:
        return _stop_cluster()
    if launcher.alive():
        print(
            f"timeout: nodes still running: {sorted(launcher.alive())}",
            file=sys.stderr,
        )
        launcher.shutdown()
        return 1
    summary = result.root_summary or {}
    if summary:
        weights = ", ".join(f"{w:.3f}" for w in summary.get("weights", ()))
        print(
            f"root mixture: K={summary.get('components')} "
            f"weights=[{weights}]"
        )
    failed = {
        node_id: code
        for node_id, code in result.exit_codes.items()
        if code != 0
    }
    if failed:
        print(f"nodes exited non-zero: {failed}", file=sys.stderr)
        return 1
    print("cluster completed cleanly")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.obs import format_summary, summarize_trace

    output = args.format or ("json" if args.json else "text")
    if args.window is not None:
        from repro.obs import drift_from_trace, format_drift

        t0, t1 = args.window
        try:
            report = drift_from_trace(args.trace, t0, t1, scope=args.scope)
        except FileNotFoundError:
            print(f"no such trace file: {args.trace}", file=sys.stderr)
            return 1
        except ValueError as error:
            print(f"{args.trace}: {error}", file=sys.stderr)
            return 1
        if output == "json":
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(format_drift(report), end="")
        return 0
    try:
        summary = summarize_trace(args.trace)
    except FileNotFoundError:
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"{args.trace}: {error}", file=sys.stderr)
        return 1
    if output == "json":
        print(json.dumps(summary.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_summary(summary), end="")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.obs.monitor import run_monitor

    if (args.url is None) == (args.trace is None):
        print(
            "monitor: exactly one of --url or --trace is required",
            file=sys.stderr,
        )
        return 2
    if args.cluster and args.url is None:
        print(
            "monitor: --cluster needs --url (the federated root's "
            "telemetry server)",
            file=sys.stderr,
        )
        return 2
    return run_monitor(
        url=args.url,
        trace=args.trace,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
        cluster=args.cluster,
    )


def _bench_comm(args: argparse.Namespace) -> int:
    """``repro bench --suite comm``: the wire-efficiency codec cells.

    Bytes per record are deterministic under the seed, so the protocol
    knobs (``--repeats``/``--warmup``/``--trim``) do not apply; the
    report document still gates against ``BENCH_comm.json`` through the
    standard comparator (raw mode -- no calibration scenario, none
    needed for byte counts).
    """
    import json
    from pathlib import Path

    from repro.bench import (
        compare_benchmarks,
        format_comm_report,
        load_report,
        run_comm_bench,
    )

    doc = run_comm_bench(
        seed=args.seed, progress=lambda line: print(line, flush=True)
    )
    print(format_comm_report(doc))
    if args.json:
        path = Path(args.json)
        path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"report written to {path}")
    if args.baseline:
        try:
            comparison = compare_benchmarks(
                load_report(args.baseline),
                doc,
                threshold=args.max_regression,
            )
        except (OSError, ValueError) as error:
            print(f"cannot load baseline: {error}", file=sys.stderr)
            return 1
        print(comparison.format())
        if comparison.has_regressions:
            return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        SCENARIOS,
        SUITES,
        BenchConfig,
        compare_benchmarks,
        load_report,
        run_bench,
    )

    if args.list:
        from repro.bench import COMM_CELLS

        print("scenarios:")
        width = max(len(name) for name in SCENARIOS)
        for name, scenario in SCENARIOS.items():
            pair = (
                f"  [vs {scenario.baseline}]" if scenario.baseline else ""
            )
            print(f"  {name:<{width}}  {scenario.summary}{pair}")
        print("suites:")
        for suite, names in SUITES.items():
            print(f"  {suite}: {', '.join(names)}")
        print(
            "  comm: "
            + ", ".join(cell.name for cell in COMM_CELLS)
            + "  (bytes/record, not seconds)"
        )
        return 0

    if args.compare is not None:
        baseline_path, candidate_path = args.compare
        try:
            comparison = compare_benchmarks(
                load_report(baseline_path),
                load_report(candidate_path),
                threshold=args.max_regression,
            )
        except (OSError, ValueError) as error:
            print(f"cannot compare reports: {error}", file=sys.stderr)
            return 1
        print(comparison.format())
        return 1 if comparison.has_regressions else 0

    if args.suite == "comm" and not args.scenarios:
        return _bench_comm(args)

    scenarios = (
        [name for name in args.scenarios.split(",") if name]
        if args.scenarios
        else None
    )
    try:
        config = BenchConfig(
            repeats=args.repeats,
            warmup=args.warmup,
            trim=args.trim,
            seed=args.seed,
        )
        report = run_bench(
            suite=args.suite,
            scenarios=scenarios,
            config=config,
            progress=lambda line: print(line, flush=True),
        )
    except (KeyError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(report.format())
    if args.json:
        path = report.write_json(args.json)
        print(f"report written to {path}")
    if args.baseline:
        try:
            comparison = compare_benchmarks(
                load_report(args.baseline),
                report.to_dict(),
                threshold=args.max_regression,
            )
        except (OSError, ValueError) as error:
            print(f"cannot load baseline: {error}", file=sys.stderr)
            return 1
        print(comparison.format())
        if comparison.has_regressions:
            return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(level=getattr(logging, args.log_level.upper()))
    handlers = {
        "chunk-size": _cmd_chunk_size,
        "run": _cmd_run,
        "compare-comm": _cmd_compare_comm,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "site": _cmd_site,
        "cluster": _cmd_cluster,
        "stats": _cmd_stats,
        "monitor": _cmd_monitor,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved CLI.
        return 0


if __name__ == "__main__":
    sys.exit(main())
