"""JSON checkpoints for sites and the coordinator.

``snapshot_*`` / ``restore_*`` convert live objects to and from plain
dictionaries; ``save_*`` / ``load_*`` wrap them with file I/O.  A
restored object continues *exactly* where the original stopped: model
ids, counters, the event table, the record buffer, and even the EM
random-generator state are preserved, so feeding the same records to
the original and the restored site produces identical behaviour.
"""

from __future__ import annotations

import itertools
import json
import math
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.coordinator import (
    Coordinator,
    CoordinatorConfig,
    GlobalCluster,
    Leaf,
)
from repro.core.em import EMConfig
from repro.core.mixture import GaussianMixture
from repro.core.gaussian import Gaussian
from repro.core.remote import ModelEntry, RemoteSite, RemoteSiteConfig
from repro.core.suffstats import SufficientStats
from repro.core.testing import LikelihoodVariant
from repro.obs.history import ModelHistory
from repro.obs.observer import Observer

__all__ = [
    "load_aggregator",
    "load_coordinator",
    "load_site",
    "restore_aggregator",
    "restore_coordinator",
    "restore_site",
    "save_aggregator",
    "save_coordinator",
    "save_site",
    "snapshot_aggregator",
    "snapshot_coordinator",
    "snapshot_site",
]

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
#: Incremental-pipeline EMConfig fields, serialized only when they
#: differ from the defaults: checkpoints written with the ladder off
#: stay byte-identical to the pre-ladder format.
_EM_INCREMENTAL_DEFAULTS = {
    "incremental": False,
    "step_alpha": 0.7,
    "incremental_steps": 2,
}


def _em_config_to_dict(config: EMConfig) -> dict:
    payload = {
        "n_components": config.n_components,
        "tol": config.tol,
        "max_iter": config.max_iter,
        "n_init": config.n_init,
        "diagonal": config.diagonal,
        "covariance_ridge": config.covariance_ridge,
        "init": config.init,
    }
    for key, default in _EM_INCREMENTAL_DEFAULTS.items():
        value = getattr(config, key)
        if value != default:
            payload[key] = value
    return payload


def _em_config_from_dict(payload: Mapping) -> EMConfig:
    return EMConfig(**payload)


def _rng_state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def _rng_from_state(state: Mapping) -> np.random.Generator:
    rng = np.random.default_rng(0)
    rng.bit_generator.state = dict(state)
    return rng


def _finite_or_none(value: float) -> float | None:
    """JSON has no infinity; encode ``inf`` as ``None``."""
    return None if math.isinf(value) else float(value)


def _none_or_inf(value: float | None) -> float:
    return math.inf if value is None else float(value)


def _model_entry_to_dict(entry: ModelEntry) -> dict:
    payload = {
        "model_id": entry.model_id,
        "mixture": entry.mixture.to_dict(),
        "reference_likelihood": entry.reference_likelihood,
        "reference_std": entry.reference_std,
        "reference_size": entry.reference_size,
        "count": entry.count,
        "trained_at": entry.trained_at,
    }
    if entry.stats is not None:
        payload["stats"] = entry.stats.to_dict()
    return payload


def _model_entry_from_dict(payload: Mapping) -> ModelEntry:
    return ModelEntry(
        model_id=payload["model_id"],
        mixture=GaussianMixture.from_dict(payload["mixture"]),
        reference_likelihood=payload["reference_likelihood"],
        reference_std=payload["reference_std"],
        reference_size=payload["reference_size"],
        count=payload["count"],
        trained_at=payload["trained_at"],
        stats=(
            SufficientStats.from_dict(payload["stats"])
            if payload.get("stats") is not None
            else None
        ),
    )


# ----------------------------------------------------------------------
# Remote site
# ----------------------------------------------------------------------
#: Incremental-only site counters, serialized only when non-zero (see
#: ``_EM_INCREMENTAL_DEFAULTS`` for the rationale).
_LADDER_STAT_KEYS = ("n_absorbed", "n_warm_refits", "n_cold_refits")

#: Retention counters, likewise serialized only when non-zero:
#: checkpoints with the retention bounds off stay byte-identical to
#: the pre-retention format.
_RETENTION_STAT_KEYS = ("archive_evictions",)


def snapshot_site(site: RemoteSite) -> dict:
    """Serialise a site's full state to a JSON-compatible dict."""
    config = site.config
    config_payload = {
        "dim": config.dim,
        "epsilon": config.epsilon,
        "delta": config.delta,
        "c_max": config.c_max,
        "em": _em_config_to_dict(config.em),
        "variant": config.variant.value,
        "warm_start": config.warm_start,
        "adaptive_test": config.adaptive_test,
        "handle_missing": config.handle_missing,
        "reference_holdout": config.reference_holdout,
        "chunk_override": config.chunk_override,
    }
    if config.reactivate_limit is not None:
        config_payload["reactivate_limit"] = config.reactivate_limit
    if config.archive_limit is not None:
        config_payload["archive_limit"] = config.archive_limit
    if config.event_limit is not None:
        config_payload["event_limit"] = config.event_limit
    stats = vars(site.stats).copy()
    for key in _LADDER_STAT_KEYS + _RETENTION_STAT_KEYS:
        if not stats.get(key):
            stats.pop(key, None)
    payload = {
        "format": FORMAT_VERSION,
        "kind": "remote_site",
        "site_id": site.site_id,
        "config": config_payload,
        "buffer": [row.tolist() for row in site._buffer],
        "current": (
            _model_entry_to_dict(site.current_model)
            if site.current_model is not None
            else None
        ),
        "archive": [_model_entry_to_dict(e) for e in site.model_list],
        "next_model_id": site._next_model_id,
        "position": site.position,
        "current_started_at": site.current_started_at,
        "events": [
            [record.start, record.end, record.model_id]
            for record in site.events
        ],
        "stats": stats,
        "rng": _rng_state(site._rng),
    }
    if site.events.evictions:
        payload["event_evictions"] = site.events.evictions
    if site.history is not None:
        payload["history"] = site.history.to_dict()
    return payload


def restore_site(
    payload: Mapping, observer: Observer | None = None
) -> RemoteSite:
    """Rebuild a site from :func:`snapshot_site` output.

    ``observer`` re-attaches instrumentation (observers are process
    state, never part of a checkpoint).
    """
    if payload.get("kind") != "remote_site":
        raise ValueError("payload is not a remote-site checkpoint")
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format {payload.get('format')}")
    raw = dict(payload["config"])
    raw["em"] = _em_config_from_dict(raw["em"])
    raw["variant"] = LikelihoodVariant(raw["variant"])
    config = RemoteSiteConfig(**raw)
    site = RemoteSite(
        payload["site_id"],
        config,
        rng=_rng_from_state(payload["rng"]),
        observer=observer,
    )
    site._buffer = [np.asarray(row, dtype=float) for row in payload["buffer"]]
    site._current = (
        _model_entry_from_dict(payload["current"])
        if payload["current"] is not None
        else None
    )
    site._archive = [_model_entry_from_dict(e) for e in payload["archive"]]
    site._next_model_id = payload["next_model_id"]
    site._position = payload["position"]
    site._current_started_at = payload["current_started_at"]
    for start, end, model_id in payload["events"]:
        site.events.append(start, end, model_id)
    site.events.evictions = payload.get("event_evictions", 0)
    for key, value in payload["stats"].items():
        setattr(site.stats, key, value)
    if payload.get("history") is not None:
        site.history = ModelHistory.from_dict(payload["history"])
        site.history.observer = site._obs
    return site


def save_site(site: RemoteSite, path: str | Path) -> Path:
    """Write a site checkpoint to ``path`` (JSON)."""
    path = Path(path)
    path.write_text(json.dumps(snapshot_site(site)))
    return path


def load_site(path: str | Path, observer: Observer | None = None) -> RemoteSite:
    """Read a site checkpoint written by :func:`save_site`."""
    return restore_site(json.loads(Path(path).read_text()), observer=observer)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def snapshot_coordinator(coordinator: Coordinator) -> dict:
    """Serialise the coordinator's full state to a JSON-compatible dict."""
    config = coordinator.config
    clusters = []
    for cluster in coordinator.clusters:
        clusters.append(
            {
                "cluster_id": cluster.cluster_id,
                "father": (
                    cluster.father.to_dict()
                    if cluster.father is not None
                    else None
                ),
                "leaves": [
                    {
                        "site_id": leaf.site_id,
                        "model_id": leaf.model_id,
                        "component_index": leaf.component_index,
                        "gaussian": leaf.gaussian.to_dict(),
                        "weight": leaf.weight,
                        "remerge_score": _finite_or_none(leaf.remerge_score),
                    }
                    for leaf in cluster.leaves
                ],
            }
        )
    payload = {
        "format": FORMAT_VERSION,
        "kind": "coordinator",
        "config": {
            "max_components": config.max_components,
            "merge_method": config.merge_method,
            "merge_samples": config.merge_samples,
            "attach_threshold": config.attach_threshold,
            "tolerate_loss": config.tolerate_loss,
            "index_candidates": config.index_candidates,
        },
        "site_models": [
            {
                "site_id": site_id,
                "model_id": model_id,
                "mixture": mixture.to_dict(),
                "count": count,
            }
            for (site_id, model_id), (mixture, count) in (
                coordinator.site_models.items()
            )
        ],
        "clusters": clusters,
        "stats": vars(coordinator.stats).copy(),
        "rng": _rng_state(coordinator._rng),
    }
    if coordinator.history is not None:
        payload["history"] = coordinator.history.to_dict()
    return payload


def restore_coordinator(
    payload: Mapping, observer: Observer | None = None
) -> Coordinator:
    """Rebuild a coordinator from :func:`snapshot_coordinator` output.

    ``observer`` re-attaches instrumentation (observers are process
    state, never part of a checkpoint).
    """
    if payload.get("kind") != "coordinator":
        raise ValueError("payload is not a coordinator checkpoint")
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format {payload.get('format')}")
    config = CoordinatorConfig(**payload["config"])
    coordinator = Coordinator(
        config, rng=_rng_from_state(payload["rng"]), observer=observer
    )
    for entry in payload["site_models"]:
        key = (entry["site_id"], entry["model_id"])
        coordinator._site_models[key] = (
            GaussianMixture.from_dict(entry["mixture"]),
            entry["count"],
        )
    max_cluster_id = -1
    for raw in payload["clusters"]:
        cluster = GlobalCluster(cluster_id=raw["cluster_id"])
        cluster.father = (
            Gaussian.from_dict(raw["father"])
            if raw["father"] is not None
            else None
        )
        for leaf_raw in raw["leaves"]:
            cluster.leaves.append(
                Leaf(
                    site_id=leaf_raw["site_id"],
                    model_id=leaf_raw["model_id"],
                    component_index=leaf_raw["component_index"],
                    gaussian=Gaussian.from_dict(leaf_raw["gaussian"]),
                    weight=leaf_raw["weight"],
                    remerge_score=_none_or_inf(leaf_raw["remerge_score"]),
                )
            )
        coordinator._clusters[cluster.cluster_id] = cluster
        max_cluster_id = max(max_cluster_id, cluster.cluster_id)
    coordinator._cluster_ids = itertools.count(max_cluster_id + 1)
    for key, value in payload["stats"].items():
        setattr(coordinator.stats, key, value)
    if payload.get("history") is not None:
        coordinator.history = ModelHistory.from_dict(payload["history"])
        coordinator.history.observer = coordinator._obs
    return coordinator


def save_coordinator(coordinator: Coordinator, path: str | Path) -> Path:
    """Write a coordinator checkpoint to ``path`` (JSON)."""
    path = Path(path)
    path.write_text(json.dumps(snapshot_coordinator(coordinator)))
    return path


def load_coordinator(
    path: str | Path, observer: Observer | None = None
) -> Coordinator:
    """Read a coordinator checkpoint written by :func:`save_coordinator`."""
    return restore_coordinator(
        json.loads(Path(path).read_text()), observer=observer
    )


# ----------------------------------------------------------------------
# Aggregator (tree internal node)
# ----------------------------------------------------------------------
def snapshot_aggregator(node, arq: Mapping | None = None) -> dict:
    """Serialise a :class:`~repro.multilayer.tree.InternalNode`.

    The snapshot covers the wrapped coordinator, the upload gate (last
    uploaded mixture, next model id, uplink counters) and, optionally,
    the ARQ edge state under ``arq``: ``{"uplink_next_seq": int,
    "cursors": {child_id: next_expected_seq}}``.  With the ARQ state
    restored, a crashed aggregator resumes mid-deployment against peers
    that never restarted -- its parent keeps accepting its uploads and
    it keeps suppressing children's already-applied synopses.
    """
    payload = {
        "format": FORMAT_VERSION,
        "kind": "aggregator",
        "node_id": node.node_id,
        "parent_id": node.parent_id,
        "upload_threshold": node.upload_threshold,
        "coordinator": snapshot_coordinator(node.coordinator),
        "last_uploaded": (
            node._last_uploaded.to_dict()
            if node._last_uploaded is not None
            else None
        ),
        "next_model_id": node._next_model_id,
        "messages_up": node.messages_up,
        "bytes_up": node.bytes_up,
    }
    if arq is not None:
        payload["arq"] = {
            "uplink_next_seq": int(arq.get("uplink_next_seq", 1)),
            "cursors": {
                str(site_id): int(expected)
                for site_id, expected in arq.get("cursors", {}).items()
            },
        }
    return payload


def restore_aggregator(payload: Mapping, observer: Observer | None = None):
    """Rebuild an ``InternalNode`` (plus ARQ state) from a snapshot.

    Returns ``(node, arq)`` where ``arq`` is the dict passed to
    :func:`snapshot_aggregator` (cursor keys back as ints), or ``None``
    when the snapshot carried no edge state.
    """
    from repro.multilayer.tree import InternalNode

    if payload.get("kind") != "aggregator":
        raise ValueError("payload is not an aggregator checkpoint")
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format {payload.get('format')}")
    node = InternalNode(
        node_id=payload["node_id"],
        coordinator=restore_coordinator(payload["coordinator"], observer=observer),
        parent_id=payload["parent_id"],
        upload_threshold=payload["upload_threshold"],
    )
    node._last_uploaded = (
        GaussianMixture.from_dict(payload["last_uploaded"])
        if payload["last_uploaded"] is not None
        else None
    )
    node._next_model_id = payload["next_model_id"]
    node.messages_up = payload["messages_up"]
    node.bytes_up = payload["bytes_up"]
    arq = payload.get("arq")
    if arq is not None:
        arq = {
            "uplink_next_seq": int(arq["uplink_next_seq"]),
            "cursors": {
                int(site_id): int(expected)
                for site_id, expected in arq["cursors"].items()
            },
        }
    return node, arq


def save_aggregator(node, path: str | Path, arq: Mapping | None = None) -> Path:
    """Write an aggregator checkpoint to ``path`` (JSON)."""
    path = Path(path)
    path.write_text(json.dumps(snapshot_aggregator(node, arq=arq)))
    return path


def load_aggregator(path: str | Path, observer: Observer | None = None):
    """Read an aggregator checkpoint written by :func:`save_aggregator`."""
    return restore_aggregator(
        json.loads(Path(path).read_text()), observer=observer
    )
