"""Persistence: checkpointing site and coordinator state.

Long-running stream processors restart; :mod:`repro.io.checkpoint`
serialises the full state of a :class:`~repro.core.remote.RemoteSite`
(model list, counters, event table, statistics) and of a
:class:`~repro.core.coordinator.Coordinator` (site models, cluster
tree) to plain JSON, and restores them to continue processing exactly
where they left off.
"""

from repro.io.checkpoint import (
    load_coordinator,
    load_site,
    restore_coordinator,
    restore_site,
    save_coordinator,
    save_site,
    snapshot_coordinator,
    snapshot_site,
)

__all__ = [
    "load_coordinator",
    "load_site",
    "restore_coordinator",
    "restore_site",
    "save_coordinator",
    "save_site",
    "snapshot_coordinator",
    "snapshot_site",
]
