"""Adversarial fault injection over any datagram backend.

:class:`LossyTransport` wraps another :class:`DatagramTransport` and,
per datagram and per direction, independently drops, duplicates, delays
or reorders it -- plus whole-link partition windows during which nothing
gets through in either direction.  All randomness comes from one seeded
generator, so a fault pattern is exactly reproducible.

Reordering is implemented as an extra hold-back delay on the selected
datagram: later datagrams with smaller delays overtake it once the clock
advances, which is how reordering arises on real networks too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.observer import Observer, ensure_observer
from repro.transport.base import DatagramTransport
from repro.transport.clock import Clock

__all__ = ["FaultConfig", "FaultStats", "LossyTransport"]


@dataclass(frozen=True, kw_only=True)
class FaultConfig:
    """Per-datagram fault probabilities and delay model.

    Parameters
    ----------
    drop_rate / duplicate_rate / reorder_rate:
        Independent per-datagram probabilities.  A duplicated datagram
        is offered twice (each copy delayed independently); a reordered
        one is held back by ``reorder_delay`` on top of its base delay.
    delay / delay_jitter:
        Base propagation delay plus a uniform ``[0, delay_jitter)``
        addition, in clock seconds.  ``delay == 0`` with no jitter
        delivers synchronously (loopback semantics).
    reorder_delay:
        Hold-back applied to reordered datagrams.
    partitions:
        ``(start, end)`` clock windows during which *every* datagram is
        dropped -- the link is partitioned.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    delay: float = 0.0
    delay_jitter: float = 0.0
    reorder_delay: float = 0.5
    partitions: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must lie in [0, 1)")
        if self.delay < 0.0 or self.delay_jitter < 0.0 or self.reorder_delay < 0.0:
            raise ValueError("delays must be non-negative")
        for start, end in self.partitions:
            if end <= start:
                raise ValueError("partition windows must have end > start")

    def partitioned_at(self, time: float) -> bool:
        """``True`` while ``time`` falls inside a partition window."""
        return any(start <= time < end for start, end in self.partitions)


@dataclass
class FaultStats:
    """What the adversary actually did."""

    offered: int = 0
    dropped: int = 0
    partition_drops: int = 0
    duplicated: int = 0
    reordered: int = 0
    delayed: int = 0


class LossyTransport(DatagramTransport):
    """Wrap ``inner`` with seeded fault injection on both directions.

    Parameters
    ----------
    inner:
        The backend actually carrying surviving datagrams.  Bindings
        registered on this wrapper are installed on ``inner``.
    clock:
        Timer service used for delayed deliveries.
    uplink_faults / downlink_faults:
        Fault models per direction; ``downlink_faults`` defaults to the
        uplink model (a symmetric bad link).
    rng / seed:
        Randomness; pass ``rng`` to share a generator, else ``seed``.
    observer:
        Optional :class:`~repro.obs.observer.Observer`; every injected
        fault emits a ``fault.drop`` / ``fault.partition`` /
        ``fault.duplicate`` / ``fault.reorder`` trace event labelled
        with the link direction.  Fault decisions never consult the
        observer, so the injected schedule for a given seed is identical
        with tracing on or off.
    """

    def __init__(
        self,
        inner: DatagramTransport,
        clock: Clock,
        uplink_faults: FaultConfig,
        downlink_faults: FaultConfig | None = None,
        rng: np.random.Generator | None = None,
        seed: int = 0,
        observer: Observer | None = None,
    ) -> None:
        super().__init__()
        self._inner = inner
        self._clock = clock
        self._uplink_faults = uplink_faults
        self._downlink_faults = (
            downlink_faults if downlink_faults is not None else uplink_faults
        )
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._obs = ensure_observer(observer)
        self.faults = FaultStats()

    # Bindings go straight to the inner backend, which performs the
    # actual deliveries.
    def bind_coordinator(self, callback) -> None:
        self._inner.bind_coordinator(callback)

    def bind_site(self, site_id: int, callback) -> None:
        self._inner.bind_site(site_id, callback)

    def unbind_site(self, site_id: int) -> None:
        self._inner.unbind_site(site_id)

    def _transmit_to_coordinator(self, site_id: int, data: bytes) -> None:
        self._inject(
            self._uplink_faults,
            lambda: self._inner.send_to_coordinator(site_id, data),
            direction="uplink",
        )

    def _transmit_to_site(self, site_id: int, data: bytes) -> None:
        self._inject(
            self._downlink_faults,
            lambda: self._inner.send_to_site(site_id, data),
            direction="downlink",
        )

    def _inject(self, faults: FaultConfig, forward, direction: str) -> None:
        obs = self._obs
        self.faults.offered += 1
        if faults.partitioned_at(self._clock.now):
            self.faults.partition_drops += 1
            if obs.enabled:
                obs.inc("fault.partition_drops", direction=direction)
                obs.event("fault.partition", direction=direction)
            return
        if faults.drop_rate > 0.0 and self._rng.random() < faults.drop_rate:
            self.faults.dropped += 1
            if obs.enabled:
                obs.inc("fault.drops", direction=direction)
                obs.event("fault.drop", direction=direction)
            return
        copies = 1
        if (
            faults.duplicate_rate > 0.0
            and self._rng.random() < faults.duplicate_rate
        ):
            copies = 2
            self.faults.duplicated += 1
            if obs.enabled:
                obs.inc("fault.duplicates", direction=direction)
                obs.event("fault.duplicate", direction=direction)
        for _ in range(copies):
            delay = faults.delay
            if faults.delay_jitter > 0.0:
                delay += float(self._rng.random()) * faults.delay_jitter
            if (
                faults.reorder_rate > 0.0
                and self._rng.random() < faults.reorder_rate
            ):
                delay += faults.reorder_delay
                self.faults.reordered += 1
                if obs.enabled:
                    obs.inc("fault.reorders", direction=direction)
                    obs.event(
                        "fault.reorder", delay=delay, direction=direction
                    )
            if delay > 0.0:
                self.faults.delayed += 1
                self._clock.call_later(delay, forward)
            else:
                forward()

    def close(self) -> None:
        self._inner.close()
