"""Clock abstraction for the transport stack.

Retransmission, heartbeats and fault-injected delays all need timers,
but the transport must run in three very different environments: plain
synchronous tests (deterministic, manually advanced), the discrete-event
simulation engine, and an asyncio event loop.  :class:`Clock` is the
small protocol all three satisfy; the reliability layer only ever calls
``now`` and ``call_later``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Protocol, runtime_checkable

__all__ = ["AsyncioClock", "Clock", "EngineClock", "ManualClock", "TimerHandle"]


@runtime_checkable
class TimerHandle(Protocol):
    """Cancellation handle returned by :meth:`Clock.call_later`."""

    def cancel(self) -> None: ...


@runtime_checkable
class Clock(Protocol):
    """Minimal timer service: a monotone clock plus one-shot timers."""

    @property
    def now(self) -> float: ...

    def call_later(
        self, delay: float, callback: Callable[[], None]
    ) -> TimerHandle: ...


class _ManualTimer:
    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class ManualClock:
    """A virtual clock advanced explicitly by the caller.

    Timers fire during :meth:`advance` / :meth:`advance_to`, in
    ``(time, insertion order)`` order, with ``now`` set to each timer's
    due time while its callback runs -- so a callback rescheduling
    itself behaves exactly like a discrete-event process.  This is the
    deterministic clock used by the loopback/lossy transports and all
    transport tests.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._sequence = itertools.count()
        self._heap: list[tuple[float, int, _ManualTimer]] = []

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled timers."""
        return sum(1 for _, _, timer in self._heap if not timer.cancelled)

    def call_later(
        self, delay: float, callback: Callable[[], None]
    ) -> _ManualTimer:
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        timer = _ManualTimer(self._now + delay, callback)
        heapq.heappush(self._heap, (timer.time, next(self._sequence), timer))
        return timer

    def advance(self, dt: float) -> int:
        """Move the clock forward by ``dt``; returns timers fired."""
        if dt < 0.0:
            raise ValueError("cannot advance a clock backwards")
        return self.advance_to(self._now + dt)

    def advance_to(self, time: float) -> int:
        """Move the clock to absolute ``time``, firing due timers."""
        if time < self._now:
            raise ValueError("cannot advance a clock backwards")
        fired = 0
        while self._heap and self._heap[0][0] <= time:
            _, _, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = timer.time
            timer.callback()
            fired += 1
        self._now = time
        return fired


class EngineClock:
    """Adapter exposing a :class:`~repro.simulation.engine.SimulationEngine`
    as a transport clock, so transports can ride the simulation's
    virtual time alongside the star-network channels."""

    def __init__(self, engine) -> None:
        self._engine = engine

    @property
    def now(self) -> float:
        return self._engine.now

    def call_later(self, delay: float, callback: Callable[[], None]):
        return self._engine.schedule_after(delay, callback)


class AsyncioClock:
    """Adapter over a running asyncio event loop (real wall-clock time)."""

    def __init__(self, loop) -> None:
        self._loop = loop

    @property
    def now(self) -> float:
        return self._loop.time()

    def call_later(self, delay: float, callback: Callable[[], None]):
        return self._loop.call_later(delay, callback)
