"""Exactly-once, in-order delivery over a misbehaving datagram service.

The layer is classic positive-ack ARQ, specialised to the star
topology:

* **sender (site side)** -- every payload gets the site's next monotone
  sequence number and sits in an outbox until a cumulative ack covers
  it; unacked entries retransmit on a timer with exponential backoff and
  multiplicative jitter (so ``r`` sites recovering from the same
  partition do not thundering-herd the coordinator).  An optional
  heartbeat timer keeps proving liveness while the site is silent
  (a *stable* site sends no synopses -- exactly when the coordinator
  most needs to distinguish "stable" from "dead").
* **receiver (coordinator side)** -- per-site cursor of the next
  expected sequence number plus a bounded reorder buffer.  Duplicates
  (retransmissions, duplicated datagrams) are suppressed; gaps are
  buffered and flushed in order; every datagram is answered with a
  cumulative ack, so lost acks heal on the next retransmission.

Together: each payload is delivered to the application **exactly once,
in per-site send order**, provided the link is not partitioned forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.serde import CodecNegotiationError, codec_name_for_wire_id
from repro.transport.clock import Clock, TimerHandle
from repro.obs.observer import Observer, ensure_observer
from repro.obs.spans import Span, SpanContext
from repro.transport.framing import (
    KIND_ACK,
    KIND_DATA,
    KIND_DONE,
    KIND_HEARTBEAT,
    KIND_TELEMETRY,
    Envelope,
    decode_envelope,
    encode_envelope,
)

__all__ = [
    "ReceiverStats",
    "ReliabilityConfig",
    "ReliableReceiver",
    "ReliableSender",
    "SenderStats",
]


@dataclass(frozen=True, kw_only=True)
class ReliabilityConfig:
    """Tuning of the ARQ machinery.

    Parameters
    ----------
    initial_timeout:
        Retransmission timeout of the first attempt, in clock seconds.
    backoff:
        Multiplier applied per failed attempt (exponential backoff).
    max_timeout:
        Ceiling on the per-attempt timeout.
    jitter:
        Uniform multiplicative jitter: each timeout is scaled by
        ``1 + U[0, jitter)``.
    max_attempts:
        Give up (and count a failure) after this many transmissions of
        one payload; ``None`` retries forever -- the right default for
        a system whose correctness proof assumes eventual delivery.
    heartbeat_interval:
        Period of site liveness beacons; ``None`` disables heartbeats.
    stale_after:
        A site is considered stale when nothing (data, heartbeat, done)
        has been heard from it for this many seconds.
    reorder_limit:
        Receiver-side cap on buffered out-of-order payloads per site;
        datagrams beyond the cap are dropped (the sender's
        retransmission recovers them once the gap heals).
    """

    initial_timeout: float = 0.5
    backoff: float = 2.0
    max_timeout: float = 10.0
    jitter: float = 0.1
    max_attempts: int | None = None
    heartbeat_interval: float | None = 5.0
    stale_after: float = 30.0
    reorder_limit: int = 1024

    def __post_init__(self) -> None:
        if self.initial_timeout <= 0.0:
            raise ValueError("initial_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be at least 1")
        if self.max_timeout < self.initial_timeout:
            raise ValueError("max_timeout must be at least initial_timeout")
        if self.jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.stale_after <= 0.0:
            raise ValueError("stale_after must be positive")
        if self.reorder_limit < 1:
            raise ValueError("reorder_limit must be at least 1")


# ----------------------------------------------------------------------
# Sender
# ----------------------------------------------------------------------
@dataclass
class SenderStats:
    """Site-side delivery counters.

    ``telemetry_*`` counts best-effort TELEMETRY freight separately:
    it never enters ``wire_bytes``, so the section 6 communication
    accounting (and everything derived from it, e.g.
    :class:`repro.cluster.tree.LevelStats`) is identical whether or not
    a run federates its telemetry.
    """

    payloads_sent: int = 0
    payload_bytes: int = 0
    wire_datagrams: int = 0
    wire_bytes: int = 0
    retransmissions: int = 0
    acked: int = 0
    expired: int = 0
    heartbeats_sent: int = 0
    telemetry_sent: int = 0
    telemetry_bytes: int = 0


@dataclass
class _OutboxEntry:
    frame: bytes
    attempts: int = 1
    timer: TimerHandle | None = None
    #: Detached ``transport.delivery`` span covering this payload's
    #: whole ARQ lifetime (send .. ack/expiry); retransmissions land on
    #: it as span events.  ``None`` when observability is off.
    span: Span | None = None


class ReliableSender:
    """The site side of the ARQ: outbox, retransmission, heartbeats.

    Parameters
    ----------
    site_id:
        Originating site (stamped into every envelope).
    transmit:
        Callback putting one encoded envelope on the wire (e.g.
        ``lambda data: transport.send_to_coordinator(site_id, data)``).
    clock:
        Timer service.
    config:
        ARQ tuning.
    rng:
        Randomness for timeout jitter.
    observer:
        Optional :class:`~repro.obs.observer.Observer` emitting
        ``transport.send`` / ``transport.retransmit`` /
        ``transport.heartbeat`` / ``transport.expired`` trace events.
    first_seq:
        Sequence number of the first payload sent (keyword-only,
        default ``1``).  A process resuming from a checkpoint passes
        the recorded next sequence number here so its peer's cursor --
        which survived the crash -- keeps accepting its payloads
        instead of suppressing them as duplicates.
    """

    def __init__(
        self,
        site_id: int,
        transmit: Callable[[bytes], None],
        clock: Clock,
        config: ReliabilityConfig | None = None,
        rng: np.random.Generator | None = None,
        observer: Observer | None = None,
        *,
        first_seq: int = 1,
        on_ack: Callable[[int], None] | None = None,
    ) -> None:
        if first_seq < 1:
            raise ValueError("first_seq must be at least 1")
        self.site_id = site_id
        self._transmit = transmit
        self._clock = clock
        #: Cumulative-ack listener: called with the acked sequence number
        #: whenever an ACK envelope arrives (delta codecs key their
        #: acknowledged baselines off this).
        self.on_ack = on_ack
        self.config = config or ReliabilityConfig()
        self._obs = ensure_observer(observer)
        self._rng = rng if rng is not None else np.random.default_rng(site_id)
        self._next_seq = first_seq
        self._outbox: dict[int, _OutboxEntry] = {}
        self._heartbeat_timer: TimerHandle | None = None
        self._closed = False
        self.stats = SenderStats()
        if self.config.heartbeat_interval is not None:
            self._arm_heartbeat()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def outstanding(self) -> int:
        """Payloads sent but not yet covered by a cumulative ack."""
        return len(self._outbox)

    @property
    def last_seq(self) -> int:
        """Highest sequence number assigned so far (0 before any send)."""
        return self._next_seq - 1

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_payload(
        self,
        payload: bytes,
        trace: SpanContext | None = None,
        *,
        codec: int = 0,
    ) -> int:
        """Enqueue one application payload; returns its sequence number.

        ``trace`` is the span context of the operation that produced
        the payload (e.g. the site's chunk-test span); it is embedded
        in the envelope header so the receiving side can causally link
        its work back, and it parents the per-payload
        ``transport.delivery`` span tracking the ARQ lifetime.

        ``codec`` is the wire-codec id announced in the envelope for
        non-CDS1 payloads (0, the default, adds no bytes).
        """
        if self._closed:
            raise RuntimeError("sender is closed")
        seq = self._next_seq
        self._next_seq += 1
        frame = encode_envelope(
            Envelope(
                kind=KIND_DATA,
                site_id=self.site_id,
                seq=seq,
                payload=payload,
                trace=trace,
                codec=codec,
            )
        )
        entry = _OutboxEntry(frame=frame)
        self._outbox[seq] = entry
        self.stats.payloads_sent += 1
        self.stats.payload_bytes += len(payload)
        obs = self._obs
        if obs.enabled:
            entry.span = obs.start_span(
                "transport.delivery",
                parent=trace,
                site=self.site_id,
                seq=seq,
                payload_bytes=len(payload),
            )
            obs.inc("transport.sends", site=self.site_id)
            obs.gauge_max(
                "transport.outbox_depth", len(self._outbox), site=self.site_id
            )
            obs.event(
                "transport.send",
                site=self.site_id,
                seq=seq,
                payload_bytes=len(payload),
                outstanding=len(self._outbox),
            )
        self._put_on_wire(frame)
        entry.timer = self._clock.call_later(
            self._timeout_for(entry.attempts), lambda: self._retransmit(seq)
        )
        return seq

    def send_done(self) -> None:
        """Announce that this site's stream has ended (best effort)."""
        self._put_on_wire(
            encode_envelope(
                Envelope(kind=KIND_DONE, site_id=self.site_id, seq=self.last_seq)
            )
        )

    def send_telemetry(self, payload: bytes) -> bool:
        """Ship one telemetry report upward, fire and forget.

        TELEMETRY envelopes are unsequenced, never acked and never
        retransmitted -- a lost report is simply superseded by the next
        flush.  They bypass the ``wire_bytes`` accounting entirely (see
        :class:`SenderStats`), so federating telemetry does not perturb
        the application stream's byte budget.  Returns ``False`` when
        the sender is already closed (shutdown race: drop, don't raise).
        """
        if self._closed:
            return False
        frame = encode_envelope(
            Envelope(
                kind=KIND_TELEMETRY,
                site_id=self.site_id,
                seq=self.last_seq,
                payload=payload,
            )
        )
        self.stats.telemetry_sent += 1
        self.stats.telemetry_bytes += len(frame)
        try:
            self._transmit(frame)
        except (ConnectionError, OSError):
            return False
        return True

    # ------------------------------------------------------------------
    # Receiving (the ack path)
    # ------------------------------------------------------------------
    def handle_datagram(self, data: bytes) -> None:
        """Process one downlink datagram (normally an ack)."""
        self.handle_envelope(decode_envelope(data))

    def handle_envelope(self, envelope: Envelope) -> None:
        if envelope.kind != KIND_ACK:
            return
        for seq in [s for s in self._outbox if s <= envelope.seq]:
            entry = self._outbox.pop(seq)
            if entry.timer is not None:
                entry.timer.cancel()
            self.stats.acked += 1
            if entry.span is not None:
                self._obs.span_event_on(entry.span, "acked", ack_seq=envelope.seq)
                self._obs.finish_span(entry.span, "ok")
        if self.on_ack is not None:
            self.on_ack(envelope.seq)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _retransmit(self, seq: int) -> None:
        entry = self._outbox.get(seq)
        if entry is None or self._closed:
            return
        obs = self._obs
        limit = self.config.max_attempts
        if limit is not None and entry.attempts >= limit:
            del self._outbox[seq]
            self.stats.expired += 1
            if obs.enabled:
                obs.inc("transport.expired", site=self.site_id)
                obs.event(
                    "transport.expired",
                    site=self.site_id,
                    seq=seq,
                    attempts=entry.attempts,
                )
                obs.finish_span(entry.span, "expired")
            return
        entry.attempts += 1
        self.stats.retransmissions += 1
        if obs.enabled:
            obs.inc("transport.retransmissions", site=self.site_id)
            obs.event(
                "transport.retransmit",
                site=self.site_id,
                seq=seq,
                attempt=entry.attempts,
            )
            obs.span_event_on(entry.span, "retransmit", attempt=entry.attempts)
        self._put_on_wire(entry.frame)
        entry.timer = self._clock.call_later(
            self._timeout_for(entry.attempts), lambda: self._retransmit(seq)
        )

    def _timeout_for(self, attempts: int) -> float:
        timeout = self.config.initial_timeout * (
            self.config.backoff ** (attempts - 1)
        )
        timeout = min(timeout, self.config.max_timeout)
        if self.config.jitter > 0.0:
            timeout *= 1.0 + float(self._rng.random()) * self.config.jitter
        return timeout

    def _arm_heartbeat(self) -> None:
        interval = self.config.heartbeat_interval
        assert interval is not None
        self._heartbeat_timer = self._clock.call_later(interval, self._beat)

    def _beat(self) -> None:
        if self._closed:
            return
        self.stats.heartbeats_sent += 1
        obs = self._obs
        if obs.enabled:
            obs.inc("transport.heartbeats", site=self.site_id)
            obs.event(
                "transport.heartbeat", site=self.site_id, seq=self.last_seq
            )
        self._put_on_wire(
            encode_envelope(
                Envelope(
                    kind=KIND_HEARTBEAT, site_id=self.site_id, seq=self.last_seq
                )
            )
        )
        self._arm_heartbeat()

    def _put_on_wire(self, frame: bytes) -> None:
        self.stats.wire_datagrams += 1
        self.stats.wire_bytes += len(frame)
        self._transmit(frame)

    def close(self) -> None:
        """Cancel all timers; the sender cannot be used afterwards."""
        self._closed = True
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None
        for entry in self._outbox.values():
            if entry.timer is not None:
                entry.timer.cancel()
            if entry.span is not None:
                self._obs.finish_span(entry.span, "aborted")
                entry.span = None


# ----------------------------------------------------------------------
# Receiver
# ----------------------------------------------------------------------
@dataclass
class ReceiverStats:
    """Coordinator-side delivery counters."""

    datagrams_received: int = 0
    wire_bytes_received: int = 0
    delivered: int = 0
    duplicates_suppressed: int = 0
    buffered_out_of_order: int = 0
    reorder_overflow_dropped: int = 0
    #: High-water mark of any single site's reorder buffer -- how far
    #: out of order the link actually got, not just how often.
    max_reorder_depth: int = 0
    acks_sent: int = 0
    ack_wire_bytes: int = 0
    heartbeats_received: int = 0
    telemetry_received: int = 0
    telemetry_bytes_received: int = 0


@dataclass
class _SiteCursor:
    expected: int = 1
    #: Out-of-order payloads keyed by seq, each with its propagated
    #: span context (``None`` when the sender had no active span).
    buffer: dict[int, tuple[bytes, SpanContext | None]] = field(default_factory=dict)
    last_seen: float = float("-inf")
    done_at_seq: int | None = None

    @property
    def done(self) -> bool:
        return self.done_at_seq is not None and self.expected > self.done_at_seq


class ReliableReceiver:
    """The coordinator side: dedupe, reorder, ack, liveness tracking.

    Parameters
    ----------
    deliver:
        Callback receiving ``(site_id, payload)`` exactly once per
        payload, in per-site sequence order.
    send_ack:
        Callback putting one encoded ack envelope on the downlink of a
        site: ``send_ack(site_id, data)``.
    clock:
        Clock used to timestamp liveness.
    config:
        ARQ tuning (``stale_after``, ``reorder_limit``).
    observer:
        Optional :class:`~repro.obs.observer.Observer` emitting
        ``transport.deliver`` / ``transport.duplicate`` trace events and
        tracking the reorder-buffer high-water gauge.
    deliver_traced:
        Keyword-only alternative to ``deliver`` receiving
        ``(site_id, payload, trace)`` where ``trace`` is the span
        context propagated in the envelope header (``None`` when the
        sender had no active span).  Exactly one of ``deliver`` /
        ``deliver_traced`` must be given.
    on_telemetry:
        Optional keyword-only callback receiving ``(site_id, payload)``
        for every TELEMETRY envelope -- best-effort federation freight,
        outside the dedupe/reorder machinery (duplicates reach the
        callback; the federation collector dedupes by flush sequence).
        A TELEMETRY envelope still refreshes the site's liveness cursor.
    """

    def __init__(
        self,
        deliver: Callable[[int, bytes], None] | None = None,
        send_ack: Callable[[int, bytes], None] | None = None,
        clock: Clock | None = None,
        config: ReliabilityConfig | None = None,
        observer: Observer | None = None,
        *,
        deliver_traced: Callable[[int, bytes, SpanContext | None], None] | None = None,
        on_telemetry: Callable[[int, bytes], None] | None = None,
        accept_codecs: Iterable[int] = (0,),
    ) -> None:
        if send_ack is None or clock is None:
            raise TypeError("send_ack and clock are required")
        if (deliver is None) == (deliver_traced is None):
            raise TypeError(
                "exactly one of deliver / deliver_traced must be provided"
            )
        if deliver_traced is not None:
            self._deliver = deliver_traced
        else:
            assert deliver is not None
            plain = deliver
            self._deliver = lambda site_id, payload, trace: plain(site_id, payload)
        self._send_ack = send_ack
        self._clock = clock
        self.config = config or ReliabilityConfig()
        self._obs = ensure_observer(observer)
        self._on_telemetry = on_telemetry
        self._accept_codecs = frozenset(accept_codecs)
        self._cursors: dict[int, _SiteCursor] = {}
        self.stats = ReceiverStats()

    def accept_codec(self, wire_id: int) -> None:
        """Negotiate one more wire codec id (a new edge attaching)."""
        self._accept_codecs = self._accept_codecs | {int(wire_id)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def known_sites(self) -> tuple[int, ...]:
        """Sites ever heard from, in first-contact order."""
        return tuple(self._cursors)

    def last_seen(self, site_id: int) -> float:
        """Clock time of the last datagram from ``site_id`` (-inf if never)."""
        cursor = self._cursors.get(site_id)
        return cursor.last_seen if cursor is not None else float("-inf")

    def stale_sites(self, stale_after: float | None = None) -> tuple[int, ...]:
        """Sites silent for longer than ``stale_after`` (config default).

        A site that announced completion (DONE) is never stale -- silence
        is its expected end state, not a failure.
        """
        timeout = stale_after if stale_after is not None else self.config.stale_after
        now = self._clock.now
        return tuple(
            site_id
            for site_id, cursor in self._cursors.items()
            if not cursor.done and now - cursor.last_seen > timeout
        )

    def site_done(self, site_id: int) -> bool:
        """``True`` once ``site_id`` sent DONE and all its data arrived."""
        cursor = self._cursors.get(site_id)
        return cursor is not None and cursor.done

    # ------------------------------------------------------------------
    # Cursor checkpointing
    # ------------------------------------------------------------------
    def cursor_snapshot(self) -> dict[int, int]:
        """Per-site next expected sequence numbers (for checkpoints).

        Only the in-order cursor is recorded: payloads buffered out of
        order are deliberately dropped from the snapshot -- the sender's
        retransmission recovers them after a restore, which keeps the
        checkpoint free of undelivered application payloads.
        """
        return {
            site_id: cursor.expected
            for site_id, cursor in self._cursors.items()
        }

    def restore_cursor(self, site_id: int, expected: int) -> None:
        """Resume ``site_id``'s cursor at ``expected`` (from a snapshot).

        A receiver restored this way keeps suppressing payloads its
        pre-crash incarnation already delivered, so crash/resume never
        double-applies a synopsis.
        """
        if expected < 1:
            raise ValueError("expected sequence must be at least 1")
        cursor = self._cursors.setdefault(site_id, _SiteCursor())
        cursor.expected = expected
        cursor.buffer.clear()

    def all_done(self, expected_sites: int) -> bool:
        """``True`` once ``expected_sites`` distinct sites completed."""
        return sum(1 for c in self._cursors.values() if c.done) >= expected_sites

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def handle_datagram(self, data: bytes) -> None:
        """Process one uplink datagram."""
        self.handle_envelope(decode_envelope(data))

    def handle_envelope(self, envelope: Envelope) -> None:
        if envelope.kind == KIND_TELEMETRY:
            # Best-effort federation freight: refresh liveness, hand
            # the payload over, and keep it out of the wire accounting
            # so federated and plain runs report identical byte costs.
            self.stats.telemetry_received += 1
            self.stats.telemetry_bytes_received += envelope.wire_bytes()
            cursor = self._cursors.setdefault(envelope.site_id, _SiteCursor())
            cursor.last_seen = self._clock.now
            if self._on_telemetry is not None:
                self._on_telemetry(envelope.site_id, envelope.payload)
            return
        self.stats.datagrams_received += 1
        self.stats.wire_bytes_received += envelope.wire_bytes()
        cursor = self._cursors.setdefault(envelope.site_id, _SiteCursor())
        cursor.last_seen = self._clock.now

        if envelope.kind == KIND_DATA:
            self._on_data(envelope, cursor)
        elif envelope.kind == KIND_HEARTBEAT:
            self.stats.heartbeats_received += 1
            # Re-ack so a site whose acks were all lost can still drain.
            self._ack(envelope.site_id, cursor)
        elif envelope.kind == KIND_DONE:
            cursor.done_at_seq = envelope.seq
            self._ack(envelope.site_id, cursor)
        # ACK envelopes never arrive on the uplink; ignore if they do.

    def _on_data(self, envelope: Envelope, cursor: _SiteCursor) -> None:
        if envelope.codec not in self._accept_codecs:
            name = codec_name_for_wire_id(envelope.codec)
            raise CodecNegotiationError(
                f"site {envelope.site_id} sent a payload in wire codec "
                f"{name or envelope.codec!r} which this endpoint did not "
                "negotiate; configure the same --wire-codec on both ends "
                "of the edge"
            )
        seq = envelope.seq
        obs = self._obs
        if seq < cursor.expected or seq in cursor.buffer:
            self.stats.duplicates_suppressed += 1
            if obs.enabled:
                obs.inc("transport.duplicates_suppressed", site=envelope.site_id)
                obs.event(
                    "transport.duplicate", site=envelope.site_id, seq=seq
                )
        elif seq == cursor.expected:
            self._deliver(envelope.site_id, envelope.payload, envelope.trace)
            self.stats.delivered += 1
            if obs.enabled:
                obs.inc("transport.delivered", site=envelope.site_id)
                obs.event(
                    "transport.deliver",
                    site=envelope.site_id,
                    seq=seq,
                    flushed=len(cursor.buffer),
                )
            cursor.expected += 1
            while cursor.expected in cursor.buffer:
                payload, trace = cursor.buffer.pop(cursor.expected)
                self._deliver(envelope.site_id, payload, trace)
                self.stats.delivered += 1
                if obs.enabled:
                    obs.inc("transport.delivered", site=envelope.site_id)
                    obs.event(
                        "transport.deliver",
                        site=envelope.site_id,
                        seq=cursor.expected,
                        flushed=len(cursor.buffer),
                    )
                cursor.expected += 1
        elif len(cursor.buffer) >= self.config.reorder_limit:
            self.stats.reorder_overflow_dropped += 1
        else:
            cursor.buffer[seq] = (envelope.payload, envelope.trace)
            self.stats.buffered_out_of_order += 1
            depth = len(cursor.buffer)
            if depth > self.stats.max_reorder_depth:
                self.stats.max_reorder_depth = depth
            if obs.enabled:
                obs.gauge_max(
                    "transport.reorder_depth", depth, site=envelope.site_id
                )
        self._ack(envelope.site_id, cursor)

    def _ack(self, site_id: int, cursor: _SiteCursor) -> None:
        frame = encode_envelope(
            Envelope(kind=KIND_ACK, site_id=site_id, seq=cursor.expected - 1)
        )
        self.stats.acks_sent += 1
        self.stats.ack_wire_bytes += len(frame)
        self._send_ack(site_id, frame)
