"""The pluggable backend interface: moving opaque datagrams.

A :class:`DatagramTransport` knows nothing about synopses, sequence
numbers or acks -- it moves ``bytes`` between ``r`` sites and the one
coordinator of the star topology, in both directions (the uplink carries
data, the downlink carries acks).  Everything above it (reliability,
endpoints) is backend-agnostic; everything below it (loopback queues,
fault injectors, sockets) is policy-free.

A backend may drop, duplicate, reorder or delay datagrams; it must never
corrupt or truncate one (datagram, not stream, semantics).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

__all__ = ["DatagramTransport", "LinkStats"]

DatagramCallback = Callable[[bytes], None]


@dataclass
class LinkStats:
    """Datagram/byte counters for one direction of a transport."""

    datagrams: int = 0
    bytes: int = 0

    def register(self, data: bytes) -> None:
        self.datagrams += 1
        self.bytes += len(data)


class DatagramTransport(ABC):
    """Bidirectional star-topology datagram carrier.

    Concrete backends implement the two ``send_*`` methods;
    registration and wire metering are shared here.  ``uplink`` /
    ``downlink`` stats count datagrams *offered* to the backend (what
    the sender pays for), whatever the backend then does to them.
    """

    def __init__(self) -> None:
        self._coordinator_callback: DatagramCallback | None = None
        self._site_callbacks: dict[int, DatagramCallback] = {}
        self.uplink = LinkStats()
        self.downlink = LinkStats()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_coordinator(self, callback: DatagramCallback) -> None:
        """Register the coordinator-side datagram sink."""
        self._coordinator_callback = callback

    def bind_site(self, site_id: int, callback: DatagramCallback) -> None:
        """Register the datagram sink of one site (the ack path)."""
        self._site_callbacks[site_id] = callback

    def unbind_site(self, site_id: int) -> None:
        """Disconnect a site; datagrams addressed to it are dropped."""
        self._site_callbacks.pop(site_id, None)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_to_coordinator(self, site_id: int, data: bytes) -> None:
        """Offer one uplink datagram from ``site_id``."""
        self.uplink.register(data)
        self._transmit_to_coordinator(site_id, data)

    def send_to_site(self, site_id: int, data: bytes) -> None:
        """Offer one downlink datagram addressed to ``site_id``."""
        self.downlink.register(data)
        self._transmit_to_site(site_id, data)

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _transmit_to_coordinator(self, site_id: int, data: bytes) -> None:
        """Carry one uplink datagram (or lose it, if that is the policy)."""

    @abstractmethod
    def _transmit_to_site(self, site_id: int, data: bytes) -> None:
        """Carry one downlink datagram."""

    # ------------------------------------------------------------------
    # Delivery helpers for backends
    # ------------------------------------------------------------------
    def _deliver_to_coordinator(self, data: bytes) -> None:
        if self._coordinator_callback is not None:
            self._coordinator_callback(data)

    def _deliver_to_site(self, site_id: int, data: bytes) -> None:
        callback = self._site_callbacks.get(site_id)
        if callback is not None:
            callback(data)

    def close(self) -> None:
        """Release backend resources (default: nothing to release)."""
