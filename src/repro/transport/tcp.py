"""Asyncio TCP transport: the same envelopes over real sockets.

The coordinator runs a :class:`CoordinatorServer`; each site process
runs :func:`run_site_client`.  On the wire the byte stream is simply a
concatenation of ``TPT1`` envelopes (the envelope's length field is the
length prefix), each DATA payload being a ``CDS1``-encoded synopsis
message -- identical bytes to what the in-process backends carry, so a
site neither knows nor cares whether it is talking through loopback,
a fault injector or a socket.

TCP already gives loss-free ordered delivery, but the reliability layer
stays in the loop: sequence numbers make reconnects and coordinator
restarts idempotent, acks give sites a positive "your synopsis is
applied" signal to gate stream completion on, and heartbeats let the
coordinator flag sites whose process died while holding the socket open.
"""

from __future__ import annotations

import asyncio
import sys
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.coordinator import Coordinator
from repro.core.remote import RemoteSite, RemoteSiteConfig
from repro.core.serde import CodecConfig, get_codec
from repro.obs.federation import FederationPublisher
from repro.obs.observer import Observer, ensure_observer
from repro.transport.clock import AsyncioClock
from repro.transport.framing import StreamDecoder
from repro.transport.reliability import (
    ReliabilityConfig,
    ReliableReceiver,
    ReliableSender,
)
from repro.transport.wire import CodecSender

__all__ = ["CoordinatorServer", "SiteRunReport", "run_site_client"]

_READ_CHUNK = 1 << 16


class CoordinatorServer:
    """Accepts site connections and feeds a coordinator.

    Parameters
    ----------
    coordinator:
        The coordinator applying delivered messages.
    expected_sites:
        Number of distinct sites that must report DONE before
        :meth:`wait_done` returns; ``None`` serves forever.
    config:
        Reliability tuning (heartbeat staleness etc.).
    observer:
        Optional :class:`~repro.obs.observer.Observer`, forwarded to the
        :class:`~repro.transport.reliability.ReliableReceiver`.
    on_telemetry:
        Optional ``(site_id, payload)`` callback for TELEMETRY envelopes
        arriving on any connection -- how a federated aggregator's relay
        (or the root's collector) taps the uplink without touching the
        sequenced DATA path.
    on_progress:
        Optional zero-arg callback invoked between envelopes while a
        handler works through a read batch.  One 64 KB read can hold
        dozens of synopses each costing an EM merge, starving asyncio
        timer tasks for many seconds -- anything that must keep a
        cadence while the loop is busy (the federated telemetry flush)
        hooks in here, with its own time gate.  May also be assigned
        after construction.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        expected_sites: int | None = None,
        config: ReliabilityConfig | None = None,
        observer: Observer | None = None,
        on_telemetry=None,
        on_progress=None,
        *,
        wire_codec: str = "cds1",
        codec_config: CodecConfig | None = None,
    ) -> None:
        self.coordinator = coordinator
        self.expected_sites = expected_sites
        self.config = config or ReliabilityConfig()
        self.on_telemetry = on_telemetry
        self.on_progress = on_progress
        self._obs = ensure_observer(observer)
        self.codec = get_codec(wire_codec, codec_config)
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._server: asyncio.base_events.Server | None = None
        self._done = asyncio.Event()
        self._handlers: set[asyncio.Task] = set()
        self._closing = False
        self.receiver: ReliableReceiver | None = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        loop = asyncio.get_running_loop()
        self.receiver = ReliableReceiver(
            deliver_traced=self._deliver,
            send_ack=self._send_ack,
            clock=AsyncioClock(loop),
            config=self.config,
            observer=self._obs,
            on_telemetry=self.on_telemetry,
            accept_codecs={0, self.codec.wire_id},
        )
        self._server = await asyncio.start_server(self._handle, host, port)

    @property
    def port(self) -> int:
        """The actually bound TCP port."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def wait_done(self, timeout: float | None = None) -> bool:
        """Wait until all expected sites completed; ``False`` on timeout."""
        try:
            await asyncio.wait_for(self._done.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def close(self) -> None:
        assert self._server is not None
        # Handlers poll this between envelopes: an interrupted shutdown
        # must not wait for the backlog of buffered synopses to be
        # absorbed at EM-merge speed before the process can exit.
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        for writer in self._writers.values():
            if not writer.is_closing():
                writer.close()
        # Closed transports feed EOF to the per-connection handlers; let
        # them unwind on their own instead of cancelling mid-read (which
        # asyncio's stream machinery reports noisily at loop shutdown).
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)

    def stale_sites(self, stale_after: float | None = None) -> tuple[int, ...]:
        """Sites silent beyond the staleness timeout."""
        assert self.receiver is not None
        return self.receiver.stale_sites(stale_after)

    def request_stop(self) -> None:
        """Make handlers stop absorbing envelopes.

        Safe to call from a raw ``signal.signal`` handler: handlers
        check the flag between envelopes, so a stop interrupts even a
        connection whose buffered backlog would take many EM merges to
        absorb (an asyncio signal handler would wait for the current
        chunk's whole batch).  Follow up with :meth:`close`.
        """
        self._closing = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_done(self) -> None:
        if (
            self.expected_sites is not None
            and self.receiver is not None
            and self.receiver.all_done(self.expected_sites)
        ):
            self._done.set()

    def _deliver(self, site_id: int, payload: bytes, trace=None) -> None:
        message = self.codec.decode(payload)
        with self._obs.remote_parent(trace):
            self.coordinator.handle_message(message)

    def _send_ack(self, site_id: int, data: bytes) -> None:
        writer = self._writers.get(site_id)
        if writer is not None and not writer.is_closing():
            writer.write(data)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self.receiver is not None
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        decoder = StreamDecoder()
        try:
            while not self._closing:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break
                for envelope in decoder.feed(chunk):
                    if self._closing:
                        break
                    self._writers[envelope.site_id] = writer
                    self.receiver.handle_envelope(envelope)
                    if self.on_progress is not None:
                        self.on_progress()
                # Check completion BEFORE draining acks: a site may
                # close its socket right after DONE, making the drain
                # raise -- the DONE is already registered by then and
                # must still release wait_done().
                self._check_done()
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            self._check_done()
        except Exception:  # noqa: BLE001  -- a dead handler stops acks
            # A handler that dies silently strands every site on this
            # connection (their sender retransmits forever against a
            # closed pipe); surface the error instead.
            import traceback

            print(
                "coordinator connection handler failed:", file=sys.stderr
            )
            traceback.print_exc()
        finally:
            if task is not None:
                self._handlers.discard(task)
            writer.close()


@dataclass(frozen=True)
class SiteRunReport:
    """Summary of one site-client run."""

    records: int
    messages_sent: int
    retransmissions: int
    payload_bytes: int
    wire_bytes: int
    models: int


async def run_site_client(
    site_id: int,
    records: Iterable[np.ndarray],
    host: str,
    port: int,
    site_config: RemoteSiteConfig | None = None,
    config: ReliabilityConfig | None = None,
    seed: int = 0,
    yield_every: int = 64,
    drain_timeout: float = 60.0,
    observer: Observer | None = None,
    site: RemoteSite | None = None,
    federation: FederationPublisher | None = None,
    telemetry_interval: float = 2.0,
    wire_codec: str = "cds1",
    codec_config: CodecConfig | None = None,
    history=None,
) -> tuple[RemoteSite, SiteRunReport]:
    """Run one remote site against a TCP coordinator.

    Streams ``records`` through a :class:`~repro.core.remote.RemoteSite`
    whose emitted synopses travel over the socket with full reliability
    semantics; returns once every message is acknowledged and DONE has
    been sent.  The optional ``observer`` instruments both the site and
    its reliable sender.

    With a ``federation`` publisher, the site piggybacks a telemetry
    report on the uplink every ``telemetry_interval`` seconds (checked
    at the ``yield_every`` drain points) plus one final report right
    before DONE, so the last snapshot the tree sees covers the whole
    run.  Telemetry rides in unsequenced TELEMETRY envelopes and never
    perturbs the DATA stream or its accounting.

    Pass a prebuilt ``site`` (e.g. restored with
    :func:`repro.io.checkpoint.load_site`) to continue an interrupted
    run; it is rewired onto this connection's sender and
    ``site_config`` / the site rng seed are ignored.

    ``history`` (a :class:`~repro.obs.history.ModelHistory`) attaches a
    pyramidal time-travel store to the site it builds; ignored when a
    prebuilt ``site`` is passed (a restored site carries its own).
    """
    observer = ensure_observer(observer)
    loop = asyncio.get_running_loop()
    reader, writer = await asyncio.open_connection(host, port)
    sender = ReliableSender(
        site_id=site_id,
        transmit=writer.write,
        clock=AsyncioClock(loop),
        config=config,
        rng=np.random.default_rng(seed + 70_000 + site_id),
        observer=observer,
    )
    codec_sender = CodecSender(sender, get_codec(wire_codec, codec_config))
    if federation is not None:
        federation.bind_uplink(
            lambda: sender.stats, codec_stats=lambda: codec_sender.stats
        )
        federation.uplink_codec = wire_codec
    emit = lambda message: codec_sender.send(  # noqa: E731
        message, trace=observer.span_context()
    )
    if site is None:
        site = RemoteSite(
            site_id,
            site_config,
            rng=np.random.default_rng(seed + site_id),
            emit=emit,
            observer=observer,
            history=history,
        )
    else:
        if site.site_id != site_id:
            raise ValueError(
                f"restored site has id {site.site_id}, expected {site_id}"
            )
        site._emit = emit

    async def pump_acks() -> None:
        decoder = StreamDecoder()
        while True:
            chunk = await reader.read(_READ_CHUNK)
            if not chunk:
                return
            for envelope in decoder.feed(chunk):
                sender.handle_envelope(envelope)

    ack_task = asyncio.ensure_future(pump_acks())
    processed = 0
    next_flush = loop.time() + telemetry_interval
    try:
        for record in records:
            site.process_record(record)
            processed += 1
            if processed % yield_every == 0:
                # Let the reader task absorb acks and the writer flush.
                if federation is not None and loop.time() >= next_flush:
                    sender.send_telemetry(federation.collect())
                    next_flush = loop.time() + telemetry_interval
                await writer.drain()
                await asyncio.sleep(0)
        codec_sender.flush()
        deadline = loop.time() + drain_timeout
        while sender.outstanding() > 0:
            if loop.time() > deadline:
                raise TimeoutError(
                    f"site {site_id}: {sender.outstanding()} messages "
                    "still unacknowledged"
                )
            await asyncio.sleep(0.02)
        if federation is not None:
            # Final report: every record processed, all uploads acked.
            sender.send_telemetry(federation.collect())
        sender.send_done()
        await writer.drain()
        # DONE is best-effort on the ARQ layer, so its delivery must be
        # guaranteed by the close sequence: closing while unread acks
        # sit in our receive buffer turns the close into a TCP RST,
        # which can destroy the just-sent DONE in the coordinator's
        # receive queue.  Half-close instead -- FIN is ordered after
        # the DONE bytes -- and linger until the coordinator has read
        # everything and closed its side (the ack pump sees EOF).
        sender.close()
        try:
            writer.write_eof()
            await asyncio.wait_for(ack_task, drain_timeout)
        except (OSError, RuntimeError, asyncio.TimeoutError):
            pass
    finally:
        sender.close()
        ack_task.cancel()
        await asyncio.gather(ack_task, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
    return site, SiteRunReport(
        records=processed,
        messages_sent=sender.stats.payloads_sent,
        retransmissions=sender.stats.retransmissions,
        payload_bytes=sender.stats.payload_bytes,
        wire_bytes=sender.stats.wire_bytes,
        models=len(site.all_models),
    )
