"""Message-level send path: codec encoding + coalescing over ARQ.

:class:`CodecSender` is the glue between the protocol vocabulary
(:mod:`repro.core.protocol` messages) and the byte transport
(:class:`~repro.transport.reliability.ReliableSender`):

* every outgoing message is encoded by the edge's
  :class:`~repro.core.serde.WireCodec` at the moment it is actually
  transmitted (delta codecs are stateful, so encode order must equal
  send order);
* the codec's ARQ hooks are wired in: each payload is bound to its
  sequence number and the sender's cumulative acks promote delta
  baselines (``note_sent`` / ``note_acked``);
* when the codec config sets a ``coalesce_window``, payloads beyond
  that many unacknowledged sends queue instead of transmitting, and a
  queued-but-unsent model update is replaced newest-wins by the next
  model update from the same site -- rapid successive synopses collapse
  to the latest one before their first transmission attempt.

The queue drains as acks free window slots; :meth:`flush` force-drains
it (ignoring the window) and must be called before ``send_done``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.protocol import Message, ModelUpdateMessage
from repro.core.serde import CodecStats, WireCodec
from repro.obs.spans import SpanContext
from repro.transport.reliability import ReliableSender

__all__ = ["CodecSender"]


@dataclass
class _QueueEntry:
    message: Message
    trace: SpanContext | None


class CodecSender:
    """One edge's message-level sender: ``codec`` over ``sender``."""

    def __init__(self, sender: ReliableSender, codec: WireCodec) -> None:
        self._sender = sender
        self._codec = codec
        self._queue: deque[_QueueEntry] = deque()
        self._chained_on_ack = sender.on_ack
        sender.on_ack = self._on_ack

    @property
    def codec(self) -> WireCodec:
        return self._codec

    @property
    def stats(self) -> CodecStats:
        return self._codec.stats

    @property
    def queued(self) -> int:
        """Messages held back by the coalescing window."""
        return len(self._queue)

    def send(self, message: Message, trace: SpanContext | None = None) -> int | None:
        """Send (or queue) one message; returns its seq, ``None`` if queued."""
        window = self._codec.config.coalesce_window
        if window is not None and (
            self._queue or self._sender.outstanding() >= window
        ):
            self._enqueue(message, trace)
            return None
        return self._transmit(message, trace)

    def flush(self) -> None:
        """Transmit everything still queued, ignoring the window."""
        while self._queue:
            entry = self._queue.popleft()
            self._transmit(entry.message, entry.trace)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _transmit(self, message: Message, trace: SpanContext | None) -> int:
        payload = self._codec.encode(message)
        seq = self._sender.send_payload(
            payload, trace=trace, codec=self._codec.wire_id
        )
        self._codec.note_sent(seq)
        return seq

    def _enqueue(self, message: Message, trace: SpanContext | None) -> None:
        if isinstance(message, ModelUpdateMessage) and self._queue:
            # Newest-wins per site: a queued, not-yet-transmitted model
            # update is superseded by this one -- but only when it is
            # the site's most recent queued message, so per-site order
            # is preserved for everything else.
            last = None
            for index in range(len(self._queue) - 1, -1, -1):
                if self._queue[index].message.site_id == message.site_id:
                    last = index
                    break
            if last is not None and isinstance(
                self._queue[last].message, ModelUpdateMessage
            ):
                self._queue[last] = _QueueEntry(message, trace)
                self._codec.stats.coalesced += 1
                return
        self._queue.append(_QueueEntry(message, trace))

    def _on_ack(self, seq: int) -> None:
        self._codec.note_acked(seq)
        window = self._codec.config.coalesce_window
        while self._queue and (
            window is None or self._sender.outstanding() < window
        ):
            entry = self._queue.popleft()
            self._transmit(entry.message, entry.trace)
        if self._chained_on_ack is not None:
            self._chained_on_ack(seq)
