"""Fault-tolerant, pluggable site-to-coordinator transport.

The paper's protocol (section 5.3) is event driven and synopsis only,
but a synopsis is worthless if the network silently eats it.  This
package carries the :mod:`repro.core.protocol` messages over real (or
realistically misbehaving) links:

* **backends** -- :class:`~repro.transport.loopback.LoopbackTransport`
  (in-process, synchronous, deterministic -- the behaviour the rest of
  the reproduction was built on), and
  :class:`~repro.transport.lossy.LossyTransport` (wraps any backend with
  seeded drop / duplicate / reorder / delay / partition faults); the
  :mod:`repro.transport.tcp` module frames the same envelopes over
  asyncio TCP sockets for genuine multi-process runs;
* **reliability** -- :class:`~repro.transport.reliability.ReliableSender`
  and :class:`~repro.transport.reliability.ReliableReceiver` add per-site
  monotone sequence numbers, an ack-driven outbox with exponential
  backoff + jitter retransmission, idempotent/ordered delivery (dedupe +
  reorder buffer) and heartbeats for staleness detection;
* **endpoints** -- :class:`~repro.transport.endpoint.SiteEndpoint` /
  :class:`~repro.transport.endpoint.CoordinatorEndpoint` plug the stack
  into :class:`~repro.core.remote.RemoteSite` (via its ``emit`` hook) and
  :class:`~repro.core.coordinator.Coordinator` (via ``handle_message``).

The guarantee the stack provides: over any fault pattern that does not
partition the link forever, every emitted synopsis is delivered to the
coordinator **exactly once and in per-site order**, so the coordinator
state is identical to a loss-free run (see
``tests/integration/test_transport_convergence.py``).
"""

from repro.transport.base import DatagramTransport, LinkStats
from repro.transport.clock import Clock, ManualClock, TimerHandle
from repro.transport.endpoint import (
    CoordinatorEndpoint,
    SiteEndpoint,
    TransportEndpoint,
)
from repro.transport.framing import (
    ENVELOPE_BYTES,
    KIND_ACK,
    KIND_DATA,
    KIND_DONE,
    KIND_HEARTBEAT,
    Envelope,
    StreamDecoder,
    decode_envelope,
    encode_envelope,
)
from repro.transport.loopback import LoopbackTransport
from repro.transport.lossy import FaultConfig, FaultStats, LossyTransport
from repro.transport.reliability import (
    ReceiverStats,
    ReliabilityConfig,
    ReliableReceiver,
    ReliableSender,
    SenderStats,
)
from repro.transport.wire import CodecSender

__all__ = [
    "Clock",
    "CodecSender",
    "CoordinatorEndpoint",
    "DatagramTransport",
    "ENVELOPE_BYTES",
    "Envelope",
    "FaultConfig",
    "FaultStats",
    "KIND_ACK",
    "KIND_DATA",
    "KIND_DONE",
    "KIND_HEARTBEAT",
    "LinkStats",
    "LoopbackTransport",
    "LossyTransport",
    "ManualClock",
    "ReceiverStats",
    "ReliabilityConfig",
    "ReliableReceiver",
    "ReliableSender",
    "SenderStats",
    "SiteEndpoint",
    "StreamDecoder",
    "TimerHandle",
    "TransportEndpoint",
    "decode_envelope",
    "encode_envelope",
]
