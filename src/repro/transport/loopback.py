"""In-process loopback backend: perfect, synchronous delivery.

Delivers every datagram immediately, inline, in send order -- exactly
the semantics the reproduction had when messages were Python objects
handed straight to ``Coordinator.handle_message``.  With the reliability
layer on top, acks come back before ``send`` returns, so outboxes drain
instantly and no retransmission timer ever fires: a loopback run is
bit-for-bit the deterministic baseline the lossy runs are compared
against.
"""

from __future__ import annotations

from repro.transport.base import DatagramTransport

__all__ = ["LoopbackTransport"]


class LoopbackTransport(DatagramTransport):
    """Synchronous in-process delivery; never drops, never reorders."""

    def _transmit_to_coordinator(self, site_id: int, data: bytes) -> None:
        self._deliver_to_coordinator(data)

    def _transmit_to_site(self, site_id: int, data: bytes) -> None:
        self._deliver_to_site(site_id, data)
