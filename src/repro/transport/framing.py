"""Transport envelopes and stream framing.

The reliability layer wraps every application payload (a
:mod:`repro.core.serde` ``CDS1`` message) in a fixed 22-byte envelope
carrying the datagram kind, the originating site and the sequence
number, plus a payload-length field that doubles as the length prefix
when envelopes are concatenated onto a byte stream (TCP).

Layout (little endian)::

    magic    4  b"TPT1"
    kind     1  DATA / ACK / HEARTBEAT / DONE / TELEMETRY
    flags    1  bit 0 (FLAG_TRACE): a 16-byte span context follows the
                header; bit 1 (FLAG_CODEC): a 1-byte wire-codec id
                follows the trace context; remaining bits reserved (0)
    site_id  4  int32
    seq      8  uint64 -- DATA: message seq; ACK: cumulative ack;
                HEARTBEAT/DONE/TELEMETRY: highest seq assigned so far
    length   4  uint32 payload length (0 for control kinds)
    [trace  16  optional span context (trace id + span id, uint64 LE
                each) when FLAG_TRACE is set -- Dapper-style context
                propagation; see :mod:`repro.obs.spans`]
    [codec   1  optional wire-codec id when FLAG_CODEC is set -- the
                :data:`repro.core.serde.WireCodec.wire_id` of the
                payload's encoding.  Codec id 0 (CDS1) is the default
                and never set explicitly, so v1 traffic stays
                byte-identical to the pre-extension format, and a
                pre-CDS2 peer rejects announced CDS2 traffic at this
                layer ("unknown envelope flags") instead of feeding
                garbage to its message decoder.]

Control envelopes (ACK, HEARTBEAT, DONE) never carry a payload.
TELEMETRY envelopes carry one (an encoded
:class:`~repro.obs.federation.NodeTelemetry` report) but sit outside
the ARQ state machine: unsequenced, unacked, never retransmitted --
best-effort freight riding an existing uplink without perturbing the
section 6 byte accounting of the application stream.  The trace
extension is only ever attached to DATA envelopes and only when an
enabled observer has an active span, so runs with observability off
(the :data:`~repro.obs.NULL_OBSERVER` default) stay byte-identical to
the pre-extension wire format.  :class:`StreamDecoder` incrementally
re-frames envelopes out of an arbitrary chunking of the byte stream.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.obs.spans import (
    SPAN_CONTEXT_BYTES,
    SpanContext,
    decode_span_context,
    encode_span_context,
)

__all__ = [
    "ENVELOPE_BYTES",
    "Envelope",
    "FLAG_CODEC",
    "FLAG_TRACE",
    "KIND_ACK",
    "KIND_DATA",
    "KIND_DONE",
    "KIND_HEARTBEAT",
    "KIND_TELEMETRY",
    "StreamDecoder",
    "decode_envelope",
    "encode_envelope",
]

ENVELOPE_MAGIC = b"TPT1"

KIND_DATA = 1
KIND_ACK = 2
KIND_HEARTBEAT = 3
KIND_DONE = 4
KIND_TELEMETRY = 5

_KINDS = (KIND_DATA, KIND_ACK, KIND_HEARTBEAT, KIND_DONE, KIND_TELEMETRY)

#: Kinds allowed to carry an application payload.
_PAYLOAD_KINDS = (KIND_DATA, KIND_TELEMETRY)

#: Flags bit 0: a 16-byte span context follows the fixed header.
FLAG_TRACE = 0x01

#: Flags bit 1: a 1-byte wire-codec id follows the (optional) trace
#: context -- the codec-negotiation announcement for non-CDS1 payloads.
FLAG_CODEC = 0x02

_ENVELOPE = struct.Struct("<4sBBiQI")
ENVELOPE_BYTES = _ENVELOPE.size

#: Defensive bound on a single payload; the largest encodable mixture
#: (K = d = 255, full covariance) is ~132 MB below this.
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class Envelope:
    """One transport datagram.

    ``trace`` is the optional propagated span context of the operation
    that produced the payload (the site-side chunk-test span); it rides
    the wire behind :data:`FLAG_TRACE` and never changes the format of
    trace-free envelopes.
    """

    kind: int
    site_id: int
    seq: int
    payload: bytes = b""
    trace: SpanContext | None = None
    codec: int = 0

    def wire_bytes(self) -> int:
        """Size of this envelope on the wire."""
        extra = SPAN_CONTEXT_BYTES if self.trace is not None else 0
        if self.codec:
            extra += 1
        return ENVELOPE_BYTES + extra + len(self.payload)


def encode_envelope(envelope: Envelope) -> bytes:
    """Serialise an envelope (header [+ trace context] + payload)."""
    if envelope.kind not in _KINDS:
        raise ValueError(f"unknown envelope kind {envelope.kind}")
    if envelope.kind not in _PAYLOAD_KINDS and envelope.payload:
        raise ValueError("control envelopes cannot carry a payload")
    if envelope.kind != KIND_DATA and envelope.trace is not None:
        raise ValueError(
            "control/telemetry envelopes cannot carry a trace context"
        )
    if envelope.seq < 0:
        raise ValueError("sequence numbers are non-negative")
    if not -(2**31) <= envelope.site_id < 2**31:
        raise ValueError("site_id does not fit the wire format")
    if envelope.codec and envelope.kind != KIND_DATA:
        raise ValueError("only DATA envelopes announce a wire codec")
    if not 0 <= envelope.codec <= 0xFF:
        raise ValueError("codec id does not fit the wire format")
    flags = FLAG_TRACE if envelope.trace is not None else 0
    if envelope.codec:
        flags |= FLAG_CODEC
    header = _ENVELOPE.pack(
        ENVELOPE_MAGIC,
        envelope.kind,
        flags,
        envelope.site_id,
        envelope.seq,
        len(envelope.payload),
    )
    parts = [header]
    if envelope.trace is not None:
        parts.append(encode_span_context(envelope.trace))
    if envelope.codec:
        parts.append(bytes([envelope.codec]))
    parts.append(envelope.payload)
    return b"".join(parts)


def decode_envelope(data: bytes) -> Envelope:
    """Inverse of :func:`encode_envelope` for one whole datagram."""
    if len(data) < ENVELOPE_BYTES:
        raise ValueError("datagram shorter than the envelope header")
    magic, kind, flags, site_id, seq, length = _ENVELOPE.unpack_from(data)
    if magic != ENVELOPE_MAGIC:
        raise ValueError(f"bad magic {magic!r}; not a TPT1 envelope")
    if kind not in _KINDS:
        raise ValueError(f"unknown envelope kind {kind}")
    if flags & ~(FLAG_TRACE | FLAG_CODEC):
        raise ValueError(f"unknown envelope flags 0x{flags:02x}")
    offset = ENVELOPE_BYTES
    trace: SpanContext | None = None
    if flags & FLAG_TRACE:
        if len(data) < offset + SPAN_CONTEXT_BYTES:
            raise ValueError("datagram shorter than its declared trace context")
        trace = decode_span_context(data[offset : offset + SPAN_CONTEXT_BYTES])
        offset += SPAN_CONTEXT_BYTES
    codec = 0
    if flags & FLAG_CODEC:
        if kind != KIND_DATA:
            raise ValueError("only DATA envelopes announce a wire codec")
        if len(data) < offset + 1:
            raise ValueError("datagram shorter than its declared codec id")
        codec = data[offset]
        offset += 1
    if len(data) != offset + length:
        raise ValueError(
            f"datagram length {len(data)} does not match the declared "
            f"payload length {length}"
        )
    return Envelope(
        kind=kind,
        site_id=site_id,
        seq=seq,
        payload=data[offset:],
        trace=trace,
        codec=codec,
    )


@dataclass
class StreamDecoder:
    """Incremental envelope re-framer for byte streams.

    Feed arbitrary chunks; complete envelopes come out in order.  A
    corrupt header raises immediately -- there is no resynchronisation
    on a TCP stream (the connection is broken anyway).
    """

    _buffer: bytearray = field(default_factory=bytearray)

    def feed(self, data: bytes) -> list[Envelope]:
        """Consume ``data``; return every envelope completed by it."""
        self._buffer.extend(data)
        envelopes: list[Envelope] = []
        while len(self._buffer) >= ENVELOPE_BYTES:
            magic, kind, flags, _site, _seq, length = _ENVELOPE.unpack_from(
                self._buffer
            )
            if magic != ENVELOPE_MAGIC:
                raise ValueError(f"bad magic {magic!r} on the stream")
            if length > MAX_PAYLOAD_BYTES:
                raise ValueError(f"declared payload of {length} bytes is absurd")
            extra = SPAN_CONTEXT_BYTES if flags & FLAG_TRACE else 0
            if flags & FLAG_CODEC:
                extra += 1
            total = ENVELOPE_BYTES + extra + length
            if len(self._buffer) < total:
                break
            frame = bytes(self._buffer[:total])
            del self._buffer[:total]
            envelopes.append(decode_envelope(frame))
        return envelopes

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete envelope."""
        return len(self._buffer)
