"""Transport envelopes and stream framing.

The reliability layer wraps every application payload (a
:mod:`repro.core.serde` ``CDS1`` message) in a fixed 22-byte envelope
carrying the datagram kind, the originating site and the sequence
number, plus a payload-length field that doubles as the length prefix
when envelopes are concatenated onto a byte stream (TCP).

Layout (little endian)::

    magic    4  b"TPT1"
    kind     1  DATA / ACK / HEARTBEAT / DONE
    flags    1  reserved (0)
    site_id  4  int32
    seq      8  uint64 -- DATA: message seq; ACK: cumulative ack;
                HEARTBEAT/DONE: highest seq assigned so far
    length   4  uint32 payload length (0 for control kinds)

Control envelopes (ACK, HEARTBEAT, DONE) never carry a payload.
:class:`StreamDecoder` incrementally re-frames envelopes out of an
arbitrary chunking of the byte stream.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

__all__ = [
    "ENVELOPE_BYTES",
    "Envelope",
    "KIND_ACK",
    "KIND_DATA",
    "KIND_DONE",
    "KIND_HEARTBEAT",
    "StreamDecoder",
    "decode_envelope",
    "encode_envelope",
]

ENVELOPE_MAGIC = b"TPT1"

KIND_DATA = 1
KIND_ACK = 2
KIND_HEARTBEAT = 3
KIND_DONE = 4

_KINDS = (KIND_DATA, KIND_ACK, KIND_HEARTBEAT, KIND_DONE)

_ENVELOPE = struct.Struct("<4sBBiQI")
ENVELOPE_BYTES = _ENVELOPE.size

#: Defensive bound on a single payload; the largest encodable mixture
#: (K = d = 255, full covariance) is ~132 MB below this.
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class Envelope:
    """One transport datagram."""

    kind: int
    site_id: int
    seq: int
    payload: bytes = b""

    def wire_bytes(self) -> int:
        """Size of this envelope on the wire."""
        return ENVELOPE_BYTES + len(self.payload)


def encode_envelope(envelope: Envelope) -> bytes:
    """Serialise an envelope (header + payload)."""
    if envelope.kind not in _KINDS:
        raise ValueError(f"unknown envelope kind {envelope.kind}")
    if envelope.kind != KIND_DATA and envelope.payload:
        raise ValueError("control envelopes cannot carry a payload")
    if envelope.seq < 0:
        raise ValueError("sequence numbers are non-negative")
    if not -(2**31) <= envelope.site_id < 2**31:
        raise ValueError("site_id does not fit the wire format")
    header = _ENVELOPE.pack(
        ENVELOPE_MAGIC,
        envelope.kind,
        0,
        envelope.site_id,
        envelope.seq,
        len(envelope.payload),
    )
    return header + envelope.payload


def decode_envelope(data: bytes) -> Envelope:
    """Inverse of :func:`encode_envelope` for one whole datagram."""
    if len(data) < ENVELOPE_BYTES:
        raise ValueError("datagram shorter than the envelope header")
    magic, kind, _flags, site_id, seq, length = _ENVELOPE.unpack_from(data)
    if magic != ENVELOPE_MAGIC:
        raise ValueError(f"bad magic {magic!r}; not a TPT1 envelope")
    if kind not in _KINDS:
        raise ValueError(f"unknown envelope kind {kind}")
    if len(data) != ENVELOPE_BYTES + length:
        raise ValueError(
            f"datagram length {len(data)} does not match the declared "
            f"payload length {length}"
        )
    return Envelope(kind=kind, site_id=site_id, seq=seq, payload=data[ENVELOPE_BYTES:])


@dataclass
class StreamDecoder:
    """Incremental envelope re-framer for byte streams.

    Feed arbitrary chunks; complete envelopes come out in order.  A
    corrupt header raises immediately -- there is no resynchronisation
    on a TCP stream (the connection is broken anyway).
    """

    _buffer: bytearray = field(default_factory=bytearray)

    def feed(self, data: bytes) -> list[Envelope]:
        """Consume ``data``; return every envelope completed by it."""
        self._buffer.extend(data)
        envelopes: list[Envelope] = []
        while len(self._buffer) >= ENVELOPE_BYTES:
            magic, kind, _flags, _site, _seq, length = _ENVELOPE.unpack_from(
                self._buffer
            )
            if magic != ENVELOPE_MAGIC:
                raise ValueError(f"bad magic {magic!r} on the stream")
            if length > MAX_PAYLOAD_BYTES:
                raise ValueError(f"declared payload of {length} bytes is absurd")
            total = ENVELOPE_BYTES + length
            if len(self._buffer) < total:
                break
            frame = bytes(self._buffer[:total])
            del self._buffer[:total]
            envelopes.append(decode_envelope(frame))
        return envelopes

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete envelope."""
        return len(self._buffer)
