"""Endpoints: plugging the transport stack into sites and coordinator.

A :class:`SiteEndpoint` is the thin object a
:class:`~repro.core.remote.RemoteSite` talks to: its :meth:`send` is
shaped exactly like the site's ``emit`` hook, serialises the message
through :mod:`repro.core.serde` and hands the bytes to a
:class:`~repro.transport.reliability.ReliableSender`.

A :class:`CoordinatorEndpoint` is the receiving half: datagrams come in
from the transport, the
:class:`~repro.transport.reliability.ReliableReceiver` dedupes/orders
them, and surviving payloads are decoded back into protocol messages
and applied via ``Coordinator.handle_message``.  It also turns the
heartbeat stream into staleness information and can *evict* a dead
site's synopses using the paper's own section 7 deletion protocol.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.coordinator import Coordinator
from repro.core.protocol import DeletionMessage, Message
from repro.core.serde import CodecConfig, get_codec
from repro.obs.observer import Observer, ensure_observer
from repro.transport.base import DatagramTransport
from repro.transport.clock import Clock, ManualClock
from repro.transport.reliability import (
    ReliabilityConfig,
    ReliableReceiver,
    ReliableSender,
)
from repro.transport.wire import CodecSender

__all__ = [
    "CoordinatorEndpoint",
    "SiteEndpoint",
    "TransportEndpoint",
    "connect_system",
    "drain",
]


class TransportEndpoint(ABC):
    """What a message producer needs from a transport: ``send``."""

    @abstractmethod
    def send(self, message: Message) -> None:
        """Ship one protocol message towards the coordinator."""

    @abstractmethod
    def close(self) -> None:
        """Release timers and transport bindings."""


class SiteEndpoint(TransportEndpoint):
    """Site-side endpoint: serde + reliable sender over a transport.

    Use ``site._emit = endpoint.send`` (or pass ``emit=endpoint.send``
    at construction) to route a :class:`~repro.core.remote.RemoteSite`'s
    messages through the transport.

    Parameters
    ----------
    site_id:
        The site this endpoint speaks for.
    transport:
        Any :class:`~repro.transport.base.DatagramTransport`.
    clock:
        Timer service shared with the transport.
    config:
        Reliability tuning.
    rng:
        Randomness for retransmission jitter.
    observer:
        Optional :class:`~repro.obs.observer.Observer`; serialisation is
        timed into the ``profile.serde_encode`` histogram and forwarded
        to the :class:`~repro.transport.reliability.ReliableSender`.
    """

    def __init__(
        self,
        site_id: int,
        transport: DatagramTransport,
        clock: Clock,
        config: ReliabilityConfig | None = None,
        rng: np.random.Generator | None = None,
        observer: Observer | None = None,
        *,
        wire_codec: str = "cds1",
        codec_config: CodecConfig | None = None,
    ) -> None:
        self.site_id = site_id
        self._transport = transport
        self._obs = ensure_observer(observer)
        self.sender = ReliableSender(
            site_id=site_id,
            transmit=lambda data: transport.send_to_coordinator(site_id, data),
            clock=clock,
            config=config,
            rng=rng,
            observer=self._obs,
        )
        self.codec_sender = CodecSender(
            self.sender, get_codec(wire_codec, codec_config)
        )
        transport.bind_site(site_id, self.sender.handle_datagram)

    def send(self, message: Message) -> None:
        if message.site_id != self.site_id:
            raise ValueError(
                f"endpoint of site {self.site_id} cannot send a message "
                f"from site {message.site_id}"
            )
        # Propagate the active span context (the chunk-test/EM span that
        # produced this synopsis) inside the envelope header.  Encoding
        # happens inside the codec sender, at transmission time.
        with self._obs.timer("profile.serde_encode"):
            self.codec_sender.send(message, trace=self._obs.span_context())

    def outstanding(self) -> int:
        """Messages sent-but-unacked, plus any still queued for coalescing."""
        return self.sender.outstanding() + self.codec_sender.queued

    def finish(self) -> None:
        """Announce end of stream (best-effort DONE)."""
        self.codec_sender.flush()
        self.sender.send_done()

    def close(self) -> None:
        self.sender.close()
        self._transport.unbind_site(self.site_id)


class CoordinatorEndpoint:
    """Coordinator-side endpoint: reliable receiver + serde + staleness.

    Parameters
    ----------
    coordinator:
        The coordinator consuming delivered messages.
    transport:
        The datagram backend to bind to.
    clock:
        Clock used for liveness timestamps.
    config:
        Reliability tuning (``stale_after`` in particular).
    observer:
        Optional :class:`~repro.obs.observer.Observer`; deserialisation
        is timed into ``profile.serde_decode`` and forwarded to the
        :class:`~repro.transport.reliability.ReliableReceiver`.
        Evictions emit ``transport.evict`` trace events.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        transport: DatagramTransport,
        clock: Clock,
        config: ReliabilityConfig | None = None,
        observer: Observer | None = None,
        *,
        wire_codec: str = "cds1",
        codec_config: CodecConfig | None = None,
    ) -> None:
        self.coordinator = coordinator
        self._transport = transport
        self._clock = clock
        self._obs = ensure_observer(observer)
        self.codec = get_codec(wire_codec, codec_config)
        self.receiver = ReliableReceiver(
            deliver_traced=self._deliver,
            send_ack=transport.send_to_site,
            clock=clock,
            config=config,
            observer=self._obs,
            accept_codecs={0, self.codec.wire_id},
        )
        transport.bind_coordinator(self.receiver.handle_datagram)
        #: Sites evicted by :meth:`evict_stale` (they may come back).
        self.evicted: set[int] = set()

    def _deliver(self, site_id: int, payload: bytes, trace=None) -> None:
        with self._obs.timer("profile.serde_decode"):
            message = self.codec.decode(payload)
        # Adopt the propagated context so coordinator-side spans
        # (coord.update / coord.merge / coord.split) causally link back
        # to the originating site's chunk-test span.
        with self._obs.remote_parent(trace):
            self.coordinator.handle_message(message)
        # A site that talks again after an eviction is alive after all.
        self.evicted.discard(site_id)

    # ------------------------------------------------------------------
    # Staleness
    # ------------------------------------------------------------------
    def stale_sites(self, stale_after: float | None = None) -> tuple[int, ...]:
        """Sites silent beyond the staleness timeout (and not DONE)."""
        return self.receiver.stale_sites(stale_after)

    def evict_stale(self, stale_after: float | None = None) -> tuple[int, ...]:
        """Remove every stale site's synopses from the global model.

        Reuses the paper's sliding-window deletion protocol: for each
        registered model of a stale site, a synthetic
        :class:`~repro.core.protocol.DeletionMessage` carrying the
        model's full remaining weight is applied, which drops the model
        and its leaves.  Returns the evicted site ids.  If the site
        resumes talking, its next model update simply re-registers it.
        """
        stale = self.stale_sites(stale_after)
        obs = self._obs
        for site_id in stale:
            evicted_models = 0
            for (owner, model_id), (_, count) in list(
                self.coordinator.site_models.items()
            ):
                if owner != site_id or count <= 0:
                    continue
                self.coordinator.handle_message(
                    DeletionMessage(
                        site_id=owner,
                        model_id=model_id,
                        time=0,
                        count_delta=count,
                    )
                )
                evicted_models += 1
            self.evicted.add(site_id)
            if obs.enabled:
                obs.inc("transport.evictions")
                obs.event(
                    "transport.evict",
                    site=site_id,
                    models=evicted_models,
                    last_seen=self.receiver.last_seen(site_id),
                )
        return stale

    def close(self) -> None:
        self._transport.bind_coordinator(lambda data: None)


# ----------------------------------------------------------------------
# Convenience wiring
# ----------------------------------------------------------------------
def connect_system(
    sites,
    coordinator: Coordinator,
    transport: DatagramTransport,
    clock: Clock,
    config: ReliabilityConfig | None = None,
    seed: int = 0,
    observer: Observer | None = None,
    *,
    wire_codec: str = "cds1",
    codec_config: CodecConfig | None = None,
) -> tuple[list[SiteEndpoint], CoordinatorEndpoint]:
    """Wire ``sites`` and ``coordinator`` over one transport.

    Installs a :class:`SiteEndpoint` as each site's ``emit`` hook and
    binds a :class:`CoordinatorEndpoint`; returns both so callers can
    inspect stats, drain outboxes and close everything down.  The
    optional ``observer`` is shared by every endpoint, and the optional
    ``wire_codec``/``codec_config`` select the serialisation for every
    edge (see :func:`repro.core.serde.get_codec`).
    """
    observer = ensure_observer(observer)
    coordinator_endpoint = CoordinatorEndpoint(
        coordinator,
        transport,
        clock,
        config,
        observer=observer,
        wire_codec=wire_codec,
        codec_config=codec_config,
    )
    endpoints: list[SiteEndpoint] = []
    for site in sites:
        endpoint = SiteEndpoint(
            site.site_id,
            transport,
            clock,
            config,
            rng=np.random.default_rng(seed + 70_000 + site.site_id),
            observer=observer,
            wire_codec=wire_codec,
            codec_config=codec_config,
        )
        site._emit = endpoint.send
        endpoints.append(endpoint)
    return endpoints, coordinator_endpoint


def drain(
    clock: ManualClock,
    endpoints,
    step: float = 0.25,
    limit: float = 600.0,
) -> float:
    """Advance ``clock`` until every endpoint's outbox is empty.

    Retransmission timers and delayed deliveries fire as the clock
    moves; with unlimited retry attempts this terminates for any fault
    pattern short of a permanent partition.  Returns the clock time
    spent; raises ``RuntimeError`` if ``limit`` seconds pass without the
    outboxes draining (a genuinely dead link).
    """
    spent = 0.0
    while any(endpoint.outstanding() for endpoint in endpoints):
        if spent >= limit:
            raise RuntimeError(
                f"transport failed to drain within {limit} clock seconds"
            )
        clock.advance(step)
        spent += step
    return spent
