"""Gaussian mixture models (paper section 3.1).

A :class:`GaussianMixture` bundles ``K`` weighted :class:`Gaussian`
components and provides every quantity the paper's algorithms consume:

* the mixture density ``p(x) = Σ_j w_j p(x|j)`` (eq. 1),
* posteriors ``Pr(j|x)`` (eq. 2),
* the average log likelihood ``AvgPr`` (Definition 1) both as the paper
  states it and in the "sharpened" max-component form used in the proof
  of Theorem 2,
* moment summaries (pooled mean/covariance) needed by the coordinator's
  split criterion, and
* synopsis payload accounting for the communication benchmarks.

Like :class:`Gaussian`, mixtures are immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.gaussian import BYTES_PER_FLOAT, Gaussian
from repro.numerics.linalg import batch_log_pdf, logsumexp

__all__ = ["GaussianMixture"]

#: Log-density floor: records in the far tail of every component clamp
#: here rather than producing ``-inf`` average log likelihoods.
LOG_DENSITY_FLOOR = -745.0  # ~ log(smallest positive double)


@dataclass(frozen=True)
class GaussianMixture:
    """An immutable mixture ``(w_j, μ_j, Σ_j), j = 1..K``.

    Parameters
    ----------
    weights:
        Non-negative weights of shape ``(K,)``; they are normalised to
        sum to one on construction.  Weights that already sum to one
        within floating-point tolerance are kept bitwise as given, so
        reconstructing a mixture from its own (serialised) weights is
        exactly idempotent.
    components:
        The ``K`` Gaussian components, all of the same dimension.
    """

    weights: np.ndarray
    components: tuple[Gaussian, ...]
    _pooled: list = field(default_factory=list, init=False, repr=False, compare=False)
    _batch: list = field(default_factory=list, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=float).ravel()
        components = tuple(self.components)
        if weights.size != len(components):
            raise ValueError(
                f"{weights.size} weights for {len(components)} components"
            )
        if weights.size == 0:
            raise ValueError("a mixture needs at least one component")
        if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0.0:
            raise ValueError("weights must not all be zero")
        dims = {component.dim for component in components}
        if len(dims) != 1:
            raise ValueError(f"components have mixed dimensions: {dims}")
        # Skip the division when the weights are already normalised to
        # within floating-point tolerance: dividing by 1.0 +/- 1ulp would
        # shift the stored values by an ulp, which breaks the bitwise
        # construct/serialise/reconstruct idempotency the checkpoint
        # restore path (DESIGN.md section 9) relies on.
        if abs(total - 1.0) > 1e-12:
            weights = weights / total
        else:
            weights = weights.copy()
        object.__setattr__(self, "weights", weights)
        object.__setattr__(self, "components", components)
        self.weights.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, component: Gaussian) -> "GaussianMixture":
        """Mixture containing one component with weight 1."""
        return cls(np.ones(1), (component,))

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[tuple[float, Gaussian]]
    ) -> "GaussianMixture":
        """Build from ``(weight, component)`` pairs."""
        if not pairs:
            raise ValueError("need at least one (weight, component) pair")
        weights = np.array([w for w, _ in pairs], dtype=float)
        components = tuple(g for _, g in pairs)
        return cls(weights, components)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_components(self) -> int:
        """Number of components ``K``."""
        return len(self.components)

    @property
    def dim(self) -> int:
        """Dimensionality ``d``."""
        return self.components[0].dim

    def __iter__(self) -> Iterator[tuple[float, Gaussian]]:
        return zip(self.weights.tolist(), self.components)

    # ------------------------------------------------------------------
    # Densities and posteriors
    # ------------------------------------------------------------------
    def _batch_factors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stacked ``(means, L⁻¹s, log-dets)`` of all components.

        Computed once per mixture and cached (mixtures are immutable),
        so every density evaluation -- E-step iterations, fit tests,
        anomaly scoring -- reuses the same Cholesky-derived whitening
        matrices.  Archived models on a remote site keep their stacks
        across chunks: the multi-test ``c_max`` path never re-factorises
        a covariance it has tested before.
        """
        if not self._batch:
            means = np.stack([c.mean for c in self.components])
            inv_chols = np.stack(
                [c.factors.inverse_cholesky() for c in self.components]
            )
            log_dets = np.array([c.log_det for c in self.components])
            self._batch.append((means, inv_chols, log_dets))
        return self._batch[0]

    def component_log_pdf(self, points: np.ndarray) -> np.ndarray:
        """Matrix of ``log p(x|j)`` values, shape ``(n, K)``.

        Evaluated by the batched kernel
        :func:`repro.numerics.linalg.batch_log_pdf` -- one einsum over
        all ``K`` components instead of ``K`` separate triangular
        solves.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        means, inv_chols, log_dets = self._batch_factors()
        return batch_log_pdf(points, means, inv_chols, log_dets)

    def weighted_log_pdf(self, points: np.ndarray) -> np.ndarray:
        """Matrix of ``log(w_j p(x|j))`` values, shape ``(n, K)``.

        Zero-weight components contribute ``-inf`` columns, matching the
        convention that they cannot generate data.
        """
        with np.errstate(divide="ignore"):
            log_weights = np.log(self.weights)
        return self.component_log_pdf(points) + log_weights[None, :]

    def log_pdf(self, points: np.ndarray) -> np.ndarray:
        """Mixture log density ``log p(x)`` per row (eq. 1), floored.

        The log-sum-exp is computed stably; rows in the extreme tail of
        every component clamp to :data:`LOG_DENSITY_FLOOR` instead of
        ``-inf`` so downstream averages stay finite.
        """
        weighted = self.weighted_log_pdf(points)
        log_density = logsumexp(weighted, axis=1)
        return np.maximum(log_density, LOG_DENSITY_FLOOR)

    def pdf(self, points: np.ndarray) -> np.ndarray:
        """Mixture density ``p(x)`` per row."""
        return np.exp(self.log_pdf(points))

    def posterior(self, points: np.ndarray) -> np.ndarray:
        """Posterior membership matrix ``Pr(j|x)`` (eq. 2), shape ``(n, K)``.

        Rows always sum to one.  In the deep tail of every component the
        computation stays stable: the relatively-closest component wins
        (a numerically hard assignment); a row whose every weighted log
        density is ``-inf`` falls back to the mixture weights.
        """
        weighted = self.weighted_log_pdf(points)
        peak = np.max(weighted, axis=1, keepdims=True)
        finite = np.isfinite(peak).ravel()
        probs = np.exp(weighted - np.where(np.isfinite(peak), peak, 0.0))
        totals = probs.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore"):
            posterior = probs / totals
        if not np.all(finite):
            posterior[~finite] = self.weights[None, :]
        return posterior

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Hard assignment: index of the most probable component per row."""
        return np.argmax(self.posterior(points), axis=1)

    # ------------------------------------------------------------------
    # Average log likelihood (Definition 1)
    # ------------------------------------------------------------------
    def average_log_likelihood(self, points: np.ndarray) -> float:
        """``AvgPr = (1/|D|) Σ_x log Σ_j w_j p(x|j)`` (Definition 1)."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[0] == 0:
            raise ValueError("cannot average over an empty data set")
        return float(np.mean(self.log_pdf(points)))

    def max_component_log_likelihood(self, points: np.ndarray) -> float:
        """Sharpened average using per-record max component probability.

        The proof of Theorem 2 replaces the overall mixture probability
        of each record by the maximal ``w_j p(x|j)`` to sharpen the
        average-log-likelihood test; this method implements that
        variant.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[0] == 0:
            raise ValueError("cannot average over an empty data set")
        weighted = self.weighted_log_pdf(points)
        best = np.max(weighted, axis=1)
        return float(np.mean(np.maximum(best, LOG_DENSITY_FLOOR)))

    # ------------------------------------------------------------------
    # Moments, sampling, combination
    # ------------------------------------------------------------------
    def pooled_gaussian(self) -> Gaussian:
        """Single moment-matched Gaussian of the whole mixture.

        This provides the ``(μ_Mix, Σ_Mix)`` pair the coordinator's
        ``M_split`` / ``M_remerge`` criteria compare components against.
        """
        if not self._pooled:
            means = self._means_matrix()
            covariances = np.stack(
                [component.covariance for component in self.components]
            )
            mean = self.weights @ means
            deltas = means - mean
            cov = np.einsum(
                "k,kij->ij", self.weights, covariances
            ) + np.einsum("k,ki,kj->ij", self.weights, deltas, deltas)
            self._pooled.append(Gaussian(mean, cov))
        return self._pooled[0]

    def _means_matrix(self) -> np.ndarray:
        return np.stack([component.mean for component in self.components])

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` samples; returns ``(points, component_labels)``."""
        if n < 0:
            raise ValueError("sample count must be non-negative")
        labels = rng.choice(self.n_components, size=n, p=self.weights)
        points = np.empty((n, self.dim))
        for j, component in enumerate(self.components):
            mask = labels == j
            count = int(mask.sum())
            if count:
                points[mask] = component.sample(count, rng)
        return points, labels

    def scaled(self, factor: float) -> np.ndarray:
        """Raw (unnormalised) weights scaled by ``factor``.

        Helper for the sliding-window deletion protocol where model
        weights are adjusted by signed record counts.
        """
        if factor <= 0.0:
            raise ValueError("scale factor must be positive")
        return self.weights * factor

    def with_components(
        self, weights: np.ndarray, components: Sequence[Gaussian]
    ) -> "GaussianMixture":
        """New mixture with replaced contents (dimension-checked)."""
        mixture = GaussianMixture(np.asarray(weights, dtype=float), tuple(components))
        if mixture.dim != self.dim:
            raise ValueError("replacement components change dimensionality")
        return mixture

    def union(
        self, other: "GaussianMixture", weight_self: float, weight_other: float
    ) -> "GaussianMixture":
        """Weighted union of two mixtures.

        ``weight_self`` / ``weight_other`` are the relative masses of the
        two mixtures (typically record counts); the result renormalises.
        This is the coordinator's "combine all Gaussian models directly"
        primitive of section 5.2.
        """
        if other.dim != self.dim:
            raise ValueError("cannot union mixtures of different dimension")
        if weight_self < 0.0 or weight_other < 0.0:
            raise ValueError("union masses must be non-negative")
        weights = np.concatenate(
            [self.weights * weight_self, other.weights * weight_other]
        )
        return GaussianMixture(weights, self.components + other.components)

    # ------------------------------------------------------------------
    # Serialisation (synopsis payloads)
    # ------------------------------------------------------------------
    def payload_bytes(self) -> int:
        """Bytes to ship this mixture as a synopsis.

        ``K`` weights plus each component's parameters -- exactly the
        ``K(d² + d + 1)`` accounting of Theorem 3 (or ``K(2d + 1)`` for
        diagonal components), at 8 bytes per parameter.
        """
        return BYTES_PER_FLOAT * self.n_components + sum(
            component.payload_bytes() for component in self.components
        )

    def to_dict(self) -> Mapping[str, object]:
        """Plain-data representation (for message payloads and tests)."""
        return {
            "weights": self.weights.tolist(),
            "components": [c.to_dict() for c in self.components],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "GaussianMixture":
        """Inverse of :meth:`to_dict`."""
        components = tuple(
            Gaussian.from_dict(item) for item in payload["components"]
        )
        return cls(np.asarray(payload["weights"], dtype=float), components)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GaussianMixture):
            return NotImplemented
        return (
            np.array_equal(self.weights, other.weights)
            and self.components == other.components
        )

    def __hash__(self) -> int:
        return hash((self.weights.tobytes(), self.components))

    def __repr__(self) -> str:
        return (
            f"GaussianMixture(K={self.n_components}, dim={self.dim}, "
            f"weights={np.round(self.weights, 4)})"
        )
