"""Chunk-size theory (paper Lemma 1 / Theorem 1).

The remote site conceptually divides its stream into chunks of size::

    M = -2 d ln(δ(2 - δ)) / ε

Theorem 1 guarantees that with at least ``M`` samples the squared
Mahalanobis distance between the sample mean and the true mean stays
below ``ε`` with probability ``1 - δ``; Theorem 2 lifts this to the
average-log-likelihood test used by the test-and-cluster strategy.

This module computes ``M``, exposes the Lemma 1 tail bound for property
tests, and provides the chunk iterator that feeds Algorithm 1.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "chunk_size",
    "iter_chunks",
    "lemma1_tail_bound",
    "window_error_bound",
]


def chunk_size(dim: int, epsilon: float, delta: float) -> int:
    """Theorem 1 chunk size ``M = ⌈-2 d ln(δ(2-δ)) / ε⌉``.

    Parameters
    ----------
    dim:
        Data dimensionality ``d``.
    epsilon:
        Error bound ``ε`` on the squared Mahalanobis distance (and, via
        Theorem 2, on the average-log-likelihood difference).
    delta:
        Probability error bound ``δ`` in ``(0, 1)``.

    Returns
    -------
    int
        The chunk size, at least 1.

    Notes
    -----
    ``δ(2-δ) ∈ (0, 1)`` for ``δ ∈ (0, 1)``, so the logarithm is negative
    and ``M`` positive.  With the paper's defaults
    (``d=4, ε=0.02, δ=0.01``) this gives ``M = 1567``.
    """
    if dim < 1:
        raise ValueError("dimension must be at least 1")
    if epsilon <= 0.0:
        raise ValueError("epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie strictly between 0 and 1")
    raw = -2.0 * dim * math.log(delta * (2.0 - delta)) / epsilon
    return max(1, math.ceil(raw))


def lemma1_tail_bound(epsilon: float, m: int) -> float:
    """Lemma 1 upper bound on ``Pr(x ≥ ε)`` for ``x ~ N(0, 1/M)``.

    Returns ``1 - sqrt(1 - exp(-M ε² / 2))``, clipped into ``[0, 1]``.
    Property tests check it dominates the exact Gaussian tail.
    """
    if m <= 0:
        raise ValueError("M must be positive")
    if epsilon < 0.0:
        raise ValueError("epsilon must be non-negative")
    inner = 1.0 - math.exp(-m * epsilon * epsilon / 2.0)
    return min(1.0, max(0.0, 1.0 - math.sqrt(inner))) if inner >= 0 else 1.0


def window_error_bound(dim: int, epsilon: float, delta: float) -> float:
    """Absolute error of evolving-analysis window answers (section 7).

    Event-table entries are chunk-aligned, so a user query window is
    answered to within half a chunk: ``M/2 = -d ln(δ(2-δ)) / ε``.
    """
    return chunk_size(dim, epsilon, delta) / 2.0


def iter_chunks(
    records: Iterable[np.ndarray],
    chunk: int,
    drop_last: bool = True,
) -> Iterator[np.ndarray]:
    """Group a record iterable into ``(chunk, d)`` arrays.

    Parameters
    ----------
    records:
        Iterable of ``(d,)`` record vectors (e.g. a stream generator).
    chunk:
        Records per chunk (Theorem 1's ``M``).
    drop_last:
        When ``True`` (the streaming default) a trailing partial chunk
        is held back -- Algorithm 1 only ever acts on full chunks.  Set
        ``False`` for batch replays that must not lose records.

    Yields
    ------
    numpy.ndarray
        Arrays of shape ``(chunk, d)`` (the final one may be shorter
        when ``drop_last`` is ``False``).
    """
    if chunk < 1:
        raise ValueError("chunk size must be at least 1")
    buffer: list[np.ndarray] = []
    for record in records:
        buffer.append(np.asarray(record, dtype=float))
        if len(buffer) == chunk:
            yield np.stack(buffer)
            buffer = []
    if buffer and not drop_last:
        yield np.stack(buffer)
