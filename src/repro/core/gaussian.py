"""Single Gaussian mixture components.

A :class:`Gaussian` is the atomic model object of the whole system: EM
estimates them, remote sites archive them, the network ships them (as
synopses) and the coordinator merges and splits them.  The class is
immutable -- every update produces a new instance -- which makes model
snapshots in the event table and in-flight network messages trivially
safe to share.

Both full and diagonal covariances are supported.  Theorem 3 notes the
memory trade-off between them (``d²`` versus ``d`` parameters); the
:meth:`Gaussian.payload_bytes` accounting reflects it so communication
benchmarks can report both variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.numerics.linalg import (
    LOG_2PI,
    SPDFactors,
    mahalanobis_sq,
    spd_factorize,
)

__all__ = ["Gaussian", "LOG_2PI"]

#: Bytes used per scalar parameter when accounting synopsis payloads.
#: The paper's implementation shipped doubles.
BYTES_PER_FLOAT = 8


@dataclass(frozen=True)
class Gaussian:
    """An immutable ``d``-dimensional Gaussian distribution.

    Parameters
    ----------
    mean:
        Mean vector ``μ`` of shape ``(d,)``.
    covariance:
        Covariance ``Σ`` of shape ``(d, d)``.  It is symmetrised and
        regularised on construction; the Cholesky factorisation is
        cached so repeated density evaluations are cheap.
    diagonal:
        When ``True`` the off-diagonal entries are zeroed and payload
        accounting uses ``d`` covariance parameters instead of ``d²``.
    """

    mean: np.ndarray
    covariance: np.ndarray
    diagonal: bool = False
    _factors: SPDFactors = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        mean = np.asarray(self.mean, dtype=float).ravel()
        cov = np.asarray(self.covariance, dtype=float)
        if cov.ndim == 1:
            cov = np.diag(cov)
        if cov.shape != (mean.size, mean.size):
            raise ValueError(
                f"covariance shape {cov.shape} does not match "
                f"mean dimension {mean.size}"
            )
        if self.diagonal:
            cov = np.diag(np.diag(cov))
        factors = spd_factorize(cov)
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "covariance", factors.covariance)
        object.__setattr__(self, "_factors", factors)
        self.mean.setflags(write=False)
        self.covariance.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def spherical(
        cls, mean: np.ndarray, variance: float, diagonal: bool = False
    ) -> "Gaussian":
        """Gaussian with isotropic covariance ``variance * I``."""
        mean = np.asarray(mean, dtype=float).ravel()
        return cls(mean, variance * np.eye(mean.size), diagonal=diagonal)

    @classmethod
    def from_samples(
        cls, samples: np.ndarray, diagonal: bool = False
    ) -> "Gaussian":
        """Maximum-likelihood Gaussian fitted to ``samples``.

        Parameters
        ----------
        samples:
            Array of shape ``(n, d)`` with ``n >= 2``.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if samples.shape[0] < 2:
            raise ValueError("need at least two samples to fit a Gaussian")
        mean = samples.mean(axis=0)
        centered = samples - mean
        cov = centered.T @ centered / samples.shape[0]
        return cls(mean, cov, diagonal=diagonal)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Dimensionality ``d``."""
        return self.mean.size

    @property
    def log_det(self) -> float:
        """``log |Σ|`` from the cached factorisation."""
        return self._factors.log_det

    @property
    def precision(self) -> np.ndarray:
        """Explicit inverse covariance ``Σ⁻¹`` (cached)."""
        return self._factors.inverse()

    @property
    def factors(self) -> SPDFactors:
        """The cached :class:`~repro.numerics.linalg.SPDFactors`.

        Batched kernels (:func:`repro.numerics.linalg.batch_log_pdf`)
        pull each component's whitening matrix and log-determinant from
        here, so density evaluation never re-factorises a covariance --
        including across repeated chunk tests against archived models.
        """
        return self._factors

    # ------------------------------------------------------------------
    # Density evaluation
    # ------------------------------------------------------------------
    def mahalanobis_sq(self, points: np.ndarray) -> np.ndarray:
        """Squared Mahalanobis distance of each row of ``points``."""
        return mahalanobis_sq(points, self.mean, self._factors)

    def log_pdf(self, points: np.ndarray) -> np.ndarray:
        """Log density ``log p(x | this component)`` per row.

        This is the exact log of the paper's equation for ``p(x|j)``.
        """
        dist_sq = self.mahalanobis_sq(points)
        return -0.5 * (self.dim * LOG_2PI + self.log_det + dist_sq)

    def pdf(self, points: np.ndarray) -> np.ndarray:
        """Density ``p(x | this component)`` per row."""
        return np.exp(self.log_pdf(points))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` samples, shape ``(n, d)``."""
        if n < 0:
            raise ValueError("sample count must be non-negative")
        noise = rng.standard_normal((n, self.dim))
        return self.mean[None, :] + noise @ self._factors.cholesky.T

    # ------------------------------------------------------------------
    # Distances and combination
    # ------------------------------------------------------------------
    def symmetric_mahalanobis_sq(self, other: "Gaussian") -> float:
        """``(μ_i - μ_j)ᵀ (Σ_i⁻¹ + Σ_j⁻¹) (μ_i - μ_j)``.

        This is the quadratic form at the heart of the paper's
        ``M_merge`` (its reciprocal), ``M_split`` and ``M_remerge``
        criteria; the paper notes it can be derived from the symmetrised
        KL divergence between the components.
        """
        if other.dim != self.dim:
            raise ValueError("cannot compare Gaussians of different dimension")
        delta = self.mean - other.mean
        precision_sum = self.precision + other.precision
        return float(delta @ precision_sum @ delta)

    def merge_moments(
        self, other: "Gaussian", weight_self: float, weight_other: float
    ) -> "Gaussian":
        """Moment-matched Gaussian of the two-component sub-mixture.

        Exact mean/covariance of ``(w_i N_i + w_j N_j) / (w_i + w_j)``.
        Used both as the initial guess for the simplex merge fit and as
        the cheap ablation baseline.
        """
        total = weight_self + weight_other
        if total <= 0.0:
            raise ValueError("merged weight must be positive")
        a = weight_self / total
        b = weight_other / total
        mean = a * self.mean + b * other.mean
        delta_self = self.mean - mean
        delta_other = other.mean - mean
        cov = (
            a * (self.covariance + np.outer(delta_self, delta_self))
            + b * (other.covariance + np.outer(delta_other, delta_other))
        )
        return Gaussian(mean, cov, diagonal=self.diagonal and other.diagonal)

    # ------------------------------------------------------------------
    # Serialisation (synopsis payloads)
    # ------------------------------------------------------------------
    def payload_bytes(self) -> int:
        """Synopsis size in bytes when shipped to the coordinator.

        ``d`` mean parameters plus ``d²`` (full) or ``d`` (diagonal)
        covariance parameters, 8 bytes each.  The component weight is
        accounted separately by the mixture payload.
        """
        cov_params = self.dim if self.diagonal else self.dim * self.dim
        return BYTES_PER_FLOAT * (self.dim + cov_params)

    def to_dict(self) -> Mapping[str, object]:
        """Plain-data representation (for message payloads and tests)."""
        return {
            "mean": self.mean.tolist(),
            "covariance": self.covariance.tolist(),
            "diagonal": self.diagonal,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Gaussian":
        """Inverse of :meth:`to_dict`."""
        return cls(
            np.asarray(payload["mean"], dtype=float),
            np.asarray(payload["covariance"], dtype=float),
            diagonal=bool(payload.get("diagonal", False)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gaussian):
            return NotImplemented
        return (
            self.diagonal == other.diagonal
            and np.array_equal(self.mean, other.mean)
            and np.array_equal(self.covariance, other.covariance)
        )

    def __hash__(self) -> int:
        return hash((self.mean.tobytes(), self.covariance.tobytes()))

    def __repr__(self) -> str:
        return (
            f"Gaussian(dim={self.dim}, mean={np.round(self.mean, 4)}, "
            f"diagonal={self.diagonal})"
        )
