"""Classical EM for Gaussian mixtures (paper section 3.2).

The trainer follows the paper's recipe exactly:

1. initialise ``(w_j, μ_j, Σ_j)``,
2. E-step: posteriors ``Pr(j|x)`` (eq. 2),
3. M-step: re-estimate weights, means and covariances,
4. stop when the log likelihood change drops below the user threshold
   ``ϖ`` (``tol`` here).

Production details the paper leaves implicit are handled explicitly:
k-means++-style seeding (with a plain random fallback), responsibility
floors against component starvation, covariance regularisation against
chunk-sized degeneracies, and an optional diagonal-covariance mode for
the Theorem 3 memory trade-off.  Multiple restarts keep the best
likelihood, which matters for the small chunk sizes Theorem 1 produces.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.obs.observer import Observer, ensure_observer

__all__ = ["EMConfig", "EMResult", "fit_em", "kmeans_plus_plus_centers"]

#: Responsibility mass floor per component; components starving below it
#: are re-seeded on the record the model currently explains worst.
MIN_COMPONENT_MASS = 1e-8


@dataclass(frozen=True, kw_only=True)
class EMConfig:
    """Hyper-parameters of the EM trainer.

    Parameters
    ----------
    n_components:
        Number of clusters ``K``.
    tol:
        The paper's ``ϖ``: stop when ``|Lᵢ - Lᵢ₊₁| ≤ tol`` (on the
        *average* log likelihood so the threshold is data-size
        independent).
    max_iter:
        Iteration cap per restart.
    n_init:
        Number of random restarts; the fit with the best final
        likelihood wins.
    diagonal:
        Fit diagonal covariances (the ``d``-parameter variant mentioned
        in Theorem 3) instead of full ones.
    covariance_ridge:
        Relative ridge added to every M-step covariance.
    init:
        ``"kmeans++"`` (default) or ``"random"`` seeding.
    """

    n_components: int = 5
    tol: float = 1e-4
    max_iter: int = 100
    n_init: int = 2
    diagonal: bool = False
    covariance_ridge: float = 1e-6
    init: str = "kmeans++"

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ValueError("n_components must be at least 1")
        if self.tol < 0.0:
            raise ValueError("tol must be non-negative")
        if self.max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        if self.n_init < 1:
            raise ValueError("n_init must be at least 1")
        if self.init not in ("kmeans++", "random"):
            raise ValueError(f"unknown init strategy {self.init!r}")


@dataclass(frozen=True)
class EMResult:
    """Outcome of an EM fit.

    Attributes
    ----------
    mixture:
        The fitted :class:`GaussianMixture`.
    log_likelihood:
        Final average log likelihood (``AvgPr`` of Definition 1) on the
        training chunk.
    n_iter:
        Iterations of the winning restart.
    converged:
        Whether the winning restart met the ``tol`` criterion.
    history:
        Average log likelihood after each iteration of the winning
        restart (non-decreasing, per Dempster et al.).
    """

    mixture: GaussianMixture
    log_likelihood: float
    n_iter: int
    converged: bool
    history: tuple[float, ...]


def kmeans_plus_plus_centers(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread ``k`` centers by squared distance.

    Returns an array of shape ``(k, d)``.  Duplicated records are fine;
    when all remaining distances are zero the next center is drawn
    uniformly.
    """
    n = data.shape[0]
    if k > n:
        raise ValueError(f"cannot seed {k} centers from {n} records")
    centers = np.empty((k, data.shape[1]))
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            choice = int(rng.integers(n))
        else:
            choice = int(rng.choice(n, p=closest_sq / total))
        centers[i] = data[choice]
        dist_sq = np.sum((data - centers[i]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def _initial_mixture(
    data: np.ndarray, config: EMConfig, rng: np.random.Generator
) -> GaussianMixture:
    """Seed a mixture: chosen centers, shared spherical covariance."""
    k = min(config.n_components, data.shape[0])
    if config.init == "kmeans++" and data.shape[0] >= k:
        centers = kmeans_plus_plus_centers(data, k, rng)
    else:
        indices = rng.choice(data.shape[0], size=k, replace=False)
        centers = data[indices]
    global_var = float(np.mean(np.var(data, axis=0)))
    if global_var <= 0.0:
        global_var = 1.0
    variance = max(global_var / max(k, 1), 1e-6)
    components = tuple(
        Gaussian.spherical(center, variance, diagonal=config.diagonal)
        for center in centers
    )
    return GaussianMixture(np.full(k, 1.0 / k), components)


def _m_step(
    data: np.ndarray,
    responsibilities: np.ndarray,
    config: EMConfig,
    rng: np.random.Generator,
    mixture: GaussianMixture,
) -> GaussianMixture:
    """Re-estimate ``(w, μ, Σ)`` from posteriors (paper step 2b).

    A component whose responsibility mass collapses is re-seeded on the
    record with the lowest current mixture density -- the standard cure
    for starvation on tiny chunks.
    """
    n, k = responsibilities.shape
    masses = responsibilities.sum(axis=0)
    weights = masses / n
    components: list[Gaussian] = []
    global_var = float(np.mean(np.var(data, axis=0))) or 1.0
    starved = masses < MIN_COMPONENT_MASS * n
    if np.any(starved):
        log_density = mixture.log_pdf(data)
        worst_order = np.argsort(log_density)
    reseed_cursor = 0
    for j in range(k):
        if starved[j]:
            center = data[worst_order[min(reseed_cursor, n - 1)]]
            reseed_cursor += 1
            components.append(
                Gaussian.spherical(center, global_var, diagonal=config.diagonal)
            )
            weights[j] = 1.0 / n
            continue
        resp = responsibilities[:, j]
        mass = masses[j]
        mean = resp @ data / mass
        centered = data - mean
        if config.diagonal:
            variances = resp @ (centered**2) / mass
            cov = np.diag(variances)
        else:
            cov = (centered * resp[:, None]).T @ centered / mass
        cov = cov + config.covariance_ridge * global_var * np.eye(data.shape[1])
        components.append(Gaussian(mean, cov, diagonal=config.diagonal))
    return GaussianMixture(np.asarray(weights), tuple(components))


def _run_single(
    data: np.ndarray, config: EMConfig, rng: np.random.Generator
) -> EMResult:
    """One EM restart: iterate E/M until the ``tol`` criterion holds."""
    mixture = _initial_mixture(data, config, rng)
    history: list[float] = []
    previous = -np.inf
    converged = False
    iterations = 0
    for iterations in range(1, config.max_iter + 1):
        responsibilities = mixture.posterior(data)
        mixture = _m_step(data, responsibilities, config, rng, mixture)
        current = mixture.average_log_likelihood(data)
        history.append(current)
        if np.isfinite(previous) and abs(current - previous) <= config.tol:
            converged = True
            break
        previous = current
    return EMResult(
        mixture=mixture,
        log_likelihood=history[-1],
        n_iter=iterations,
        converged=converged,
        history=tuple(history),
    )


def fit_em(
    data: np.ndarray,
    config: EMConfig | None = None,
    rng: np.random.Generator | None = None,
    initial: GaussianMixture | None = None,
    observer: Observer | None = None,
) -> EMResult:
    """Fit a Gaussian mixture to ``data`` with the classical EM algorithm.

    Parameters
    ----------
    data:
        Records of shape ``(n, d)``; ``n`` must be at least
        ``n_components``.
    config:
        Trainer hyper-parameters; defaults to :class:`EMConfig` with the
        paper's ``K = 5``.
    rng:
        Randomness source for seeding and restarts.
    initial:
        Optional warm-start mixture.  When provided it is refined as one
        extra candidate alongside ``n_init`` cold restarts -- remote
        sites warm-start from the current model when clustering a new
        chunk whose distribution only drifted slightly.
    observer:
        Optional :class:`~repro.obs.observer.Observer`: the whole fit is
        timed into the ``profile.em_fit`` histogram and the winning
        restart's iteration count and log-likelihood trajectory are
        emitted as one ``em.fit`` trace event.

    Returns
    -------
    EMResult
        The best fit (by final average log likelihood) over all
        candidates.
    """
    config = config or EMConfig()
    rng = rng if rng is not None else np.random.default_rng()
    data = np.atleast_2d(np.asarray(data, dtype=float))
    if data.ndim != 2:
        raise ValueError("data must be a 2-d array of records")
    if data.shape[0] < config.n_components:
        raise ValueError(
            f"need at least n_components={config.n_components} records, "
            f"got {data.shape[0]}"
        )
    if not np.all(np.isfinite(data)):
        raise ValueError("data contains non-finite records")

    obs = ensure_observer(observer)
    with obs.timer("profile.em_fit"):
        candidates = [
            _run_single(data, config, rng) for _ in range(config.n_init)
        ]
        if initial is not None:
            if initial.dim != data.shape[1]:
                raise ValueError("warm-start mixture dimension mismatch")
            candidates.append(_refine(data, initial, config, rng))
        best = max(candidates, key=lambda result: result.log_likelihood)
    if obs.enabled:
        obs.inc("em.fits")
        obs.inc("em.iterations", best.n_iter)
        obs.event(
            "em.fit",
            records=int(data.shape[0]),
            n_components=best.mixture.n_components,
            n_iter=best.n_iter,
            converged=best.converged,
            log_likelihood=best.log_likelihood,
            history=list(best.history),
        )
    return best


def _refine(
    data: np.ndarray,
    mixture: GaussianMixture,
    config: EMConfig,
    rng: np.random.Generator,
) -> EMResult:
    """EM iterations from an existing mixture instead of a cold seed."""
    history: list[float] = []
    previous = -np.inf
    converged = False
    iterations = 0
    current_mixture = mixture
    for iterations in range(1, config.max_iter + 1):
        responsibilities = current_mixture.posterior(data)
        current_mixture = _m_step(
            data, responsibilities, config, rng, current_mixture
        )
        current = current_mixture.average_log_likelihood(data)
        history.append(current)
        if np.isfinite(previous) and abs(current - previous) <= config.tol:
            converged = True
            break
        previous = current
    return EMResult(
        mixture=current_mixture,
        log_likelihood=history[-1],
        n_iter=iterations,
        converged=converged,
        history=tuple(history),
    )


def responsibilities_and_likelihood(
    mixture: GaussianMixture, data: np.ndarray
) -> tuple[np.ndarray, float]:
    """One E-step: posteriors plus the current average log likelihood.

    Exposed for the SEM baseline, which interleaves E-steps over live
    records with sufficient-statistics updates.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    return mixture.posterior(data), mixture.average_log_likelihood(data)
