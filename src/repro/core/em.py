"""Classical EM for Gaussian mixtures (paper section 3.2).

The trainer follows the paper's recipe exactly:

1. initialise ``(w_j, μ_j, Σ_j)``,
2. E-step: posteriors ``Pr(j|x)`` (eq. 2),
3. M-step: re-estimate weights, means and covariances,
4. stop when the log likelihood change drops below the user threshold
   ``ϖ`` (``tol`` here).

Production details the paper leaves implicit are handled explicitly:
k-means++-style seeding (with a plain random fallback), responsibility
floors against component starvation, covariance regularisation against
chunk-sized degeneracies, and an optional diagonal-covariance mode for
the Theorem 3 memory trade-off.  Multiple restarts keep the best
likelihood, which matters for the small chunk sizes Theorem 1 produces.

Beyond the batch trainer, this module carries the incremental pipeline
(DESIGN.md section 14) that the refit ladder in
:mod:`repro.core.remote` runs before falling back to a cold fit:

- :func:`fit_em` with ``warm_start=`` refines existing mixture
  candidates (the current model, reactivation losers) instead of
  burning ``n_init`` k-means++ restarts;
- :func:`incremental_em` absorbs a failing chunk with a few stepwise
  E-M passes (Cappé–Moulines stepsize ``(t+2)^{-α}``) over the
  sufficient statistics in :mod:`repro.core.suffstats`;
- :func:`absorb_chunk` folds a *passing* chunk into the running stats
  in one pass, no EM iterations at all.

All three are opt-in; with ``EMConfig.incremental`` left off the batch
path is bit-for-bit what it was before they existed.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.core.suffstats import SufficientStats
from repro.obs.observer import Observer, ensure_observer

__all__ = [
    "EMConfig",
    "EMResult",
    "IncrementalResult",
    "absorb_chunk",
    "fit_em",
    "incremental_em",
    "kmeans_plus_plus_centers",
]

#: Responsibility mass floor per component; components starving below it
#: are re-seeded on the record the model currently explains worst.
MIN_COMPONENT_MASS = 1e-8


@dataclass(frozen=True, kw_only=True)
class EMConfig:
    """Hyper-parameters of the EM trainer.

    Parameters
    ----------
    n_components:
        Number of clusters ``K``.
    tol:
        The paper's ``ϖ``: stop when ``|Lᵢ - Lᵢ₊₁| ≤ tol`` (on the
        *average* log likelihood so the threshold is data-size
        independent).
    max_iter:
        Iteration cap per restart.
    n_init:
        Number of random restarts; the fit with the best final
        likelihood wins.
    diagonal:
        Fit diagonal covariances (the ``d``-parameter variant mentioned
        in Theorem 3) instead of full ones.
    covariance_ridge:
        Relative ridge added to every M-step covariance.
    init:
        ``"kmeans++"`` (default) or ``"random"`` seeding.
    incremental:
        Opt into the incremental refit ladder: sites try
        reactivation → warm-start stepwise E-M → cold refit instead of
        always cold-refitting a failing chunk, and absorb passing
        chunks through the sufficient statistics in one pass.  Off by
        default; the default path is pinned byte-identical to the
        pre-ladder trainer.
    step_alpha:
        Cappé–Moulines stepsize exponent ``α`` for
        :func:`incremental_em` (``η_t = (t+2)^{-α}``).  Must lie in
        ``(0.5, 1.0]`` for the stepwise updates to converge.
    incremental_steps:
        Stepwise E-M passes over a failing chunk before the ladder
        judges the warm fit.  ``0`` makes warm-start incremental an
        exact no-op (useful for ablations).
    """

    n_components: int = 5
    tol: float = 1e-4
    max_iter: int = 100
    n_init: int = 2
    diagonal: bool = False
    covariance_ridge: float = 1e-6
    init: str = "kmeans++"
    incremental: bool = False
    step_alpha: float = 0.7
    incremental_steps: int = 2

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ValueError("n_components must be at least 1")
        if self.tol < 0.0:
            raise ValueError("tol must be non-negative")
        if self.max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        if self.n_init < 1:
            raise ValueError("n_init must be at least 1")
        if self.init not in ("kmeans++", "random"):
            raise ValueError(f"unknown init strategy {self.init!r}")
        if not 0.5 < self.step_alpha <= 1.0:
            raise ValueError("step_alpha must lie in (0.5, 1.0]")
        if self.incremental_steps < 0:
            raise ValueError("incremental_steps must be non-negative")


@dataclass(frozen=True)
class EMResult:
    """Outcome of an EM fit.

    Attributes
    ----------
    mixture:
        The fitted :class:`GaussianMixture`.
    log_likelihood:
        Final average log likelihood (``AvgPr`` of Definition 1) on the
        training chunk.
    n_iter:
        Iterations of the winning restart.
    converged:
        Whether the winning restart met the ``tol`` criterion.
    history:
        Average log likelihood after each iteration of the winning
        restart (non-decreasing, per Dempster et al.).
    """

    mixture: GaussianMixture
    log_likelihood: float
    n_iter: int
    converged: bool
    history: tuple[float, ...]


def kmeans_plus_plus_centers(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread ``k`` centers by squared distance.

    Returns an array of shape ``(k, d)``.  Duplicated records are fine;
    when all remaining distances are zero the next center is drawn
    uniformly.
    """
    n = data.shape[0]
    if k > n:
        raise ValueError(f"cannot seed {k} centers from {n} records")
    centers = np.empty((k, data.shape[1]))
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            choice = int(rng.integers(n))
        else:
            choice = int(rng.choice(n, p=closest_sq / total))
        centers[i] = data[choice]
        dist_sq = np.sum((data - centers[i]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def _initial_mixture(
    data: np.ndarray, config: EMConfig, rng: np.random.Generator
) -> GaussianMixture:
    """Seed a mixture: chosen centers, shared spherical covariance."""
    k = min(config.n_components, data.shape[0])
    if config.init == "kmeans++" and data.shape[0] >= k:
        centers = kmeans_plus_plus_centers(data, k, rng)
    else:
        indices = rng.choice(data.shape[0], size=k, replace=False)
        centers = data[indices]
    global_var = float(np.mean(np.var(data, axis=0)))
    if global_var <= 0.0:
        global_var = 1.0
    variance = max(global_var / max(k, 1), 1e-6)
    components = tuple(
        Gaussian.spherical(center, variance, diagonal=config.diagonal)
        for center in centers
    )
    return GaussianMixture(np.full(k, 1.0 / k), components)


def _m_step(
    data: np.ndarray,
    responsibilities: np.ndarray,
    config: EMConfig,
    rng: np.random.Generator,
    mixture: GaussianMixture,
) -> GaussianMixture:
    """Re-estimate ``(w, μ, Σ)`` from posteriors (paper step 2b).

    A component whose responsibility mass collapses is re-seeded on the
    record with the lowest current mixture density -- the standard cure
    for starvation on tiny chunks.
    """
    n, k = responsibilities.shape
    masses = responsibilities.sum(axis=0)
    weights = masses / n
    components: list[Gaussian] = []
    global_var = float(np.mean(np.var(data, axis=0))) or 1.0
    starved = masses < MIN_COMPONENT_MASS * n
    if np.any(starved):
        log_density = mixture.log_pdf(data)
        worst_order = np.argsort(log_density)
    reseed_cursor = 0
    for j in range(k):
        if starved[j]:
            center = data[worst_order[min(reseed_cursor, n - 1)]]
            reseed_cursor += 1
            components.append(
                Gaussian.spherical(center, global_var, diagonal=config.diagonal)
            )
            weights[j] = 1.0 / n
            continue
        resp = responsibilities[:, j]
        mass = masses[j]
        mean = resp @ data / mass
        centered = data - mean
        if config.diagonal:
            variances = resp @ (centered**2) / mass
            cov = np.diag(variances)
        else:
            cov = (centered * resp[:, None]).T @ centered / mass
        cov = cov + config.covariance_ridge * global_var * np.eye(data.shape[1])
        components.append(Gaussian(mean, cov, diagonal=config.diagonal))
    return GaussianMixture(np.asarray(weights), tuple(components))


def _em_loop(
    data: np.ndarray,
    mixture: GaussianMixture,
    config: EMConfig,
    rng: np.random.Generator,
) -> EMResult:
    """Iterate E/M from ``mixture`` until the ``tol`` criterion holds.

    The single driver behind both cold restarts (:func:`_run_single`)
    and warm refinement (:func:`_refine`); their loop bodies were
    already identical, so sharing it cannot shift the default path.
    """
    history: list[float] = []
    previous = -np.inf
    converged = False
    iterations = 0
    for iterations in range(1, config.max_iter + 1):
        responsibilities = mixture.posterior(data)
        mixture = _m_step(data, responsibilities, config, rng, mixture)
        current = mixture.average_log_likelihood(data)
        history.append(current)
        if np.isfinite(previous) and abs(current - previous) <= config.tol:
            converged = True
            break
        previous = current
    return EMResult(
        mixture=mixture,
        log_likelihood=history[-1],
        n_iter=iterations,
        converged=converged,
        history=tuple(history),
    )


def _run_single(
    data: np.ndarray, config: EMConfig, rng: np.random.Generator
) -> EMResult:
    """One EM restart: a cold k-means++ seed fed to the shared loop."""
    return _em_loop(data, _initial_mixture(data, config, rng), config, rng)


def fit_em(
    data: np.ndarray,
    config: EMConfig | None = None,
    rng: np.random.Generator | None = None,
    initial: GaussianMixture | None = None,
    observer: Observer | None = None,
    *,
    warm_start: GaussianMixture | Sequence[GaussianMixture] | None = None,
) -> EMResult:
    """Fit a Gaussian mixture to ``data`` with the classical EM algorithm.

    Parameters
    ----------
    data:
        Records of shape ``(n, d)``; ``n`` must be at least
        ``n_components``.
    config:
        Trainer hyper-parameters; defaults to :class:`EMConfig` with the
        paper's ``K = 5``.
    rng:
        Randomness source for seeding and restarts.
    initial:
        Optional extra candidate mixture.  When provided it is refined
        as one additional candidate *alongside* ``n_init`` cold
        restarts -- the pre-ladder warm-start flavour kept for
        compatibility (``RemoteSiteConfig.warm_start``).
    observer:
        Optional :class:`~repro.obs.observer.Observer`: the whole fit is
        timed into the ``profile.em_fit`` histogram and the winning
        restart's iteration count and log-likelihood trajectory are
        emitted as one ``em.fit`` trace event.
    warm_start:
        One mixture or a sequence of them to refine *instead of* the
        ``n_init`` cold restarts -- no k-means++ seeding at all.  This
        is the ladder's warm rung: candidates are the current model and
        any archived models the reactivation scan already scored.
        Mutually exclusive with ``initial``.

    Returns
    -------
    EMResult
        The best fit (by final average log likelihood) over all
        candidates.
    """
    config = config or EMConfig()
    rng = rng if rng is not None else np.random.default_rng()
    data = np.atleast_2d(np.asarray(data, dtype=float))
    if data.ndim != 2:
        raise ValueError("data must be a 2-d array of records")
    if data.shape[0] < config.n_components:
        raise ValueError(
            f"need at least n_components={config.n_components} records, "
            f"got {data.shape[0]}"
        )
    if not np.all(np.isfinite(data)):
        raise ValueError("data contains non-finite records")
    if warm_start is not None:
        if initial is not None:
            raise ValueError("warm_start and initial are mutually exclusive")
        if isinstance(warm_start, GaussianMixture):
            warm_start = (warm_start,)
        else:
            warm_start = tuple(warm_start)
        if not warm_start:
            raise ValueError("warm_start must contain at least one mixture")
        for candidate in warm_start:
            if candidate.dim != data.shape[1]:
                raise ValueError("warm-start mixture dimension mismatch")

    obs = ensure_observer(observer)
    with obs.timer("profile.em_fit"):
        if warm_start is not None:
            candidates = [
                _refine(data, candidate, config, rng)
                for candidate in warm_start
            ]
        else:
            candidates = [
                _run_single(data, config, rng) for _ in range(config.n_init)
            ]
            if initial is not None:
                if initial.dim != data.shape[1]:
                    raise ValueError("warm-start mixture dimension mismatch")
                candidates.append(_refine(data, initial, config, rng))
        best = max(candidates, key=lambda result: result.log_likelihood)
    if obs.enabled:
        obs.inc("em.fits")
        obs.inc("em.iterations", best.n_iter)
        obs.event(
            "em.fit",
            records=int(data.shape[0]),
            n_components=best.mixture.n_components,
            n_iter=best.n_iter,
            converged=best.converged,
            log_likelihood=best.log_likelihood,
            history=list(best.history),
        )
    return best


def _refine(
    data: np.ndarray,
    mixture: GaussianMixture,
    config: EMConfig,
    rng: np.random.Generator,
) -> EMResult:
    """EM iterations from an existing mixture instead of a cold seed."""
    return _em_loop(data, mixture, config, rng)


def responsibilities_and_likelihood(
    mixture: GaussianMixture, data: np.ndarray
) -> tuple[np.ndarray, float]:
    """One E-step: posteriors plus the current average log likelihood.

    Exposed for the SEM baseline, which interleaves E-steps over live
    records with sufficient-statistics updates.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    return mixture.posterior(data), mixture.average_log_likelihood(data)


# ----------------------------------------------------------------------
# Incremental pipeline (DESIGN.md section 14)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class IncrementalResult:
    """Outcome of an incremental update (:func:`incremental_em` or
    :func:`absorb_chunk`).

    Attributes
    ----------
    mixture:
        The updated :class:`GaussianMixture`.
    stats:
        The running :class:`~repro.core.suffstats.SufficientStats` after
        absorbing the chunk; feed it back into the next call so the
        model's memory of past chunks survives.
    log_likelihood:
        Average log likelihood of ``mixture`` on the chunk it just
        absorbed (``AvgPr`` of Definition 1).
    n_steps:
        Stepwise E-M passes actually performed (``0`` when the update
        was a no-op, ``1`` for one-pass absorption).
    history:
        Average log likelihood after each pass.
    """

    mixture: GaussianMixture
    stats: SufficientStats
    log_likelihood: float
    n_steps: int
    history: tuple[float, ...]


def _chunk_global_var(data: np.ndarray) -> float:
    """The M-step's ridge scale: mean per-axis variance of the chunk."""
    return float(np.mean(np.var(data, axis=0))) or 1.0


def _validate_chunk(data: np.ndarray, mixture: GaussianMixture) -> np.ndarray:
    data = np.atleast_2d(np.asarray(data, dtype=float))
    if data.ndim != 2:
        raise ValueError("data must be a 2-d array of records")
    if data.shape[1] != mixture.dim:
        raise ValueError(
            f"chunk dimension {data.shape[1]} does not match "
            f"mixture dimension {mixture.dim}"
        )
    if not np.all(np.isfinite(data)):
        raise ValueError("data contains non-finite records")
    return data


def incremental_em(
    data: np.ndarray,
    mixture: GaussianMixture,
    config: EMConfig | None = None,
    *,
    stats: SufficientStats | None = None,
    observer: Observer | None = None,
) -> IncrementalResult:
    """Absorb a chunk with a few stepwise E-M passes (Cappé–Moulines).

    Each pass ``t`` runs one E-step under the current mixture, folds the
    chunk's sufficient statistics into the running ones with stepsize
    ``η_t = (t + 2)^{-config.step_alpha}``, and re-materializes the
    mixture.  The chunk's mass is absorbed exactly once regardless of
    how many passes run; only the *parameters* keep moving.

    ``config.incremental_steps == 0`` is an exact no-op: the input
    mixture and stats come back untouched (the ladder's ablation case,
    pinned by a property test).

    Parameters
    ----------
    data:
        The chunk, shape ``(n, d)``.
    mixture:
        Warm-start model -- the site's current model or a reactivation
        candidate.
    config:
        Uses ``step_alpha``, ``incremental_steps``, ``diagonal`` and
        ``covariance_ridge``; defaults to :class:`EMConfig`.
    stats:
        Running statistics for ``mixture``.  When ``None`` they are
        synthesized from the mixture itself with mass equal to the
        chunk size -- the prior model counts as one chunk's worth of
        evidence, so a drifted chunk can actually move it.
    observer:
        Timed into ``profile.em_incremental``; emits an
        ``em.incremental`` event and bumps ``em.incremental_updates``.

    Raises
    ------
    ValueError
        On dimension/finite-ness violations, or when a component
        starves below materializable mass mid-update -- callers (the
        refit ladder) treat that as "warm rung failed" and escalate.
    """
    config = config or EMConfig()
    data = _validate_chunk(data, mixture)
    n = data.shape[0]
    if stats is None:
        stats = SufficientStats.from_mixture(
            mixture, float(n), diagonal=config.diagonal
        )
    obs = ensure_observer(observer)
    with obs.timer("profile.em_incremental"):
        if config.incremental_steps == 0:
            result = IncrementalResult(
                mixture=mixture,
                stats=stats,
                log_likelihood=mixture.average_log_likelihood(data),
                n_steps=0,
                history=(),
            )
        else:
            global_var = _chunk_global_var(data)
            target = stats.total + float(n)
            history: list[float] = []
            current = mixture
            for t in range(config.incremental_steps):
                eta = (t + 2.0) ** -config.step_alpha
                responsibilities = current.posterior(data)
                batch = SufficientStats.from_responsibilities(
                    data, responsibilities, diagonal=config.diagonal
                )
                stats = stats.blend(batch, eta, target=target)
                current = stats.materialize(
                    covariance_ridge=config.covariance_ridge,
                    global_var=global_var,
                )
                history.append(current.average_log_likelihood(data))
            result = IncrementalResult(
                mixture=current,
                stats=stats,
                log_likelihood=history[-1],
                n_steps=len(history),
                history=tuple(history),
            )
    if obs.enabled:
        obs.inc("em.incremental_updates")
        obs.event(
            "em.incremental",
            records=int(n),
            n_components=result.mixture.n_components,
            n_steps=result.n_steps,
            log_likelihood=result.log_likelihood,
        )
    return result


def absorb_chunk(
    data: np.ndarray,
    mixture: GaussianMixture,
    config: EMConfig | None = None,
    *,
    stats: SufficientStats | None = None,
    observer: Observer | None = None,
) -> IncrementalResult:
    """One-pass absorption of a *passing* chunk: no EM iterations.

    When a chunk passes the fit test the model already explains it, so
    a single E-step's sufficient statistics merged at full weight keep
    ``(w, μ, Σ)`` current at the cost of one posterior evaluation --
    the suffstat analogue of "the model absorbs the chunk" in
    Algorithm 1's pass branch.

    Same ``stats`` convention as :func:`incremental_em`; returns the
    merged statistics so successive passing chunks accumulate exactly.
    """
    config = config or EMConfig()
    data = _validate_chunk(data, mixture)
    n = data.shape[0]
    if stats is None:
        stats = SufficientStats.from_mixture(
            mixture, float(n), diagonal=config.diagonal
        )
    obs = ensure_observer(observer)
    with obs.timer("profile.em_absorb"):
        responsibilities = mixture.posterior(data)
        batch = SufficientStats.from_responsibilities(
            data, responsibilities, diagonal=config.diagonal
        )
        stats = stats.merge(batch)
        updated = stats.materialize(
            covariance_ridge=config.covariance_ridge,
            global_var=_chunk_global_var(data),
        )
        likelihood = updated.average_log_likelihood(data)
    if obs.enabled:
        obs.inc("em.absorbed_chunks")
        obs.event(
            "em.absorb",
            records=int(n),
            n_components=updated.n_components,
            log_likelihood=likelihood,
        )
    return IncrementalResult(
        mixture=updated,
        stats=stats,
        log_likelihood=likelihood,
        n_steps=1,
        history=(likelihood,),
    )
