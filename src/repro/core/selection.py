"""Automatic selection of the component count K.

The paper fixes ``K`` per experiment but explicitly allows "any number
of distributions which can be potentially different on individual
nodes" -- it never says how a node should *choose* its ``K``.  This
module supplies the standard answer: fit candidate ``K`` values and
pick the one minimising the Bayesian Information Criterion::

    BIC(K) = -2 · L(K) + p(K) · ln(n)

where ``L`` is the total data log likelihood and ``p`` the number of
free parameters (``K-1`` weights, ``K·d`` means, ``K·d(d+1)/2`` or
``K·d`` covariance values).

Remote sites opt in with ``RemoteSiteConfig(auto_k=(k_min, k_max))``:
each EM run then sweeps the range and installs the BIC winner, so a
chunk with three real clusters gets a three-component model even when a
neighbouring site needed seven.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.em import EMConfig, EMResult, fit_em
from repro.core.mixture import GaussianMixture

__all__ = ["KSelectionResult", "bic_score", "mixture_free_parameters", "select_k"]


def mixture_free_parameters(k: int, dim: int, diagonal: bool = False) -> int:
    """Free parameters of a ``K``-component, ``d``-dim Gaussian mixture.

    ``K - 1`` independent weights, ``K·d`` means, plus covariance
    parameters (``d`` per component when diagonal, ``d(d+1)/2`` for the
    symmetric full matrix).
    """
    if k < 1 or dim < 1:
        raise ValueError("k and dim must be positive")
    cov = dim if diagonal else dim * (dim + 1) // 2
    return (k - 1) + k * dim + k * cov


def bic_score(result: EMResult, n: int, dim: int, diagonal: bool) -> float:
    """BIC of a fitted mixture (lower is better)."""
    if n < 1:
        raise ValueError("n must be positive")
    k = result.mixture.n_components
    total_log_likelihood = result.log_likelihood * n
    penalty = mixture_free_parameters(k, dim, diagonal) * np.log(n)
    return float(-2.0 * total_log_likelihood + penalty)


@dataclass(frozen=True)
class KSelectionResult:
    """Outcome of a ``K`` sweep.

    Attributes
    ----------
    best:
        The winning EM fit.
    best_k:
        Its component count.
    scores:
        ``{k: BIC}`` over the sweep (for diagnostics and tests).
    """

    best: EMResult
    best_k: int
    scores: dict[int, float]


def select_k(
    data: np.ndarray,
    k_range: tuple[int, int],
    config: EMConfig | None = None,
    rng: np.random.Generator | None = None,
    initial: GaussianMixture | None = None,
) -> KSelectionResult:
    """Fit every ``K`` in ``k_range`` (inclusive) and keep the BIC winner.

    Parameters
    ----------
    data:
        Records of shape ``(n, d)``.
    k_range:
        Inclusive ``(k_min, k_max)`` sweep bounds.
    config:
        Template EM settings; ``n_components`` is overridden per
        candidate.
    rng:
        Randomness shared across candidates.
    initial:
        Optional warm-start mixture: the model-count choice under warm
        start.  When its ``K`` falls inside ``k_range`` the sweep at
        that ``K`` refines it as one extra candidate next to the cold
        restarts (``fit_em(initial=...)``), so an adapted previous
        model competes with -- and usually undercuts the cost of --
        cold fits, while BIC still gets to move ``K`` when the data
        says so.

    Returns
    -------
    KSelectionResult
    """
    k_min, k_max = k_range
    if k_min < 1 or k_max < k_min:
        raise ValueError("k_range must satisfy 1 <= k_min <= k_max")
    config = config or EMConfig()
    rng = rng if rng is not None else np.random.default_rng()
    data = np.atleast_2d(np.asarray(data, dtype=float))
    n, dim = data.shape
    if n <= k_max:
        raise ValueError(f"need more than k_max={k_max} records, got {n}")

    from dataclasses import replace

    scores: dict[int, float] = {}
    best: EMResult | None = None
    best_k = k_min
    best_score = np.inf
    for k in range(k_min, k_max + 1):
        candidate_config = replace(config, n_components=k)
        warm = initial if (
            initial is not None and initial.n_components == k
        ) else None
        result = fit_em(data, candidate_config, rng, initial=warm)
        score = bic_score(result, n, dim, config.diagonal)
        scores[k] = score
        if score < best_score:
            best, best_k, best_score = result, k, score
    assert best is not None
    return KSelectionResult(best=best, best_k=best_k, scores=scores)
