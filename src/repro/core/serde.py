"""Binary wire formats for synopsis messages, behind a codec registry.

The byte accounting in :mod:`repro.core.protocol` is only honest if the
messages actually fit in that many bytes.  This module provides the
encodings that prove it, organised as pluggable codecs:

* :class:`CDS1Codec` (``wire_id 0``) -- the paper-faithful format:
  every message serialises to *exactly* ``message.payload_bytes()``
  bytes and round-trips losslessly.  This is the default and the unit
  of the section-6 accounting.
* :class:`CDS2Codec` (``wire_id 2``) -- the communication-optimal
  generation: ``uint16`` component/dimension header fields (lifting the
  CDS1 ``K <= 255 / d <= 255`` limit), optional delta encoding of model
  updates (only components changed since the last *acknowledged*
  baseline go on the wire), and optional quantized covariance Cholesky
  factors (float32/float16).  See DESIGN.md section 15 for the byte
  layouts, negotiation rules, baseline invariants, and the quantization
  error bound.

Codecs are obtained from the registry::

    codec = get_codec("cds2", CodecConfig(delta=True, quantize="f32"))
    payload = codec.encode(message)
    message = codec.decode(payload)

CDS1 layout (little endian):

==========  =====  =====================================================
field       bytes  notes
==========  =====  =====================================================
magic       4      ``b"CDS1"`` (format version 1)
tag         1      message type (:data:`TAG_BY_TYPE`)
flags       1      bit 0: diagonal covariances
K           1      mixture components (model updates; else 0)
d           1      dimensionality (model updates; else 0)
site_id     8      int64
model_id    8      int64
time        8      int64
==========  =====  =====================================================

-- 32 header bytes (``protocol.HEADER_BYTES``), then per type:

* ``ModelUpdateMessage``: ``count`` (int64), ``reference_likelihood``
  (float64), ``K`` weights, then per component ``d`` mean values and
  ``d²`` (full) or ``d`` (diagonal) covariance values -- all float64.
* ``WeightUpdateMessage`` / ``DeletionMessage``: ``count_delta``
  (int64).

Mixtures mixing diagonal and full-covariance components are rejected
(they never occur -- a mixture comes from one EM run with one
covariance mode) because their size could not match the accounting.
"""

from __future__ import annotations

import struct
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.core.protocol import (
    HEADER_BYTES,
    DeletionMessage,
    Message,
    ModelUpdateMessage,
    WeightUpdateMessage,
)

__all__ = [
    "CDS1Codec",
    "CDS2Codec",
    "CodecConfig",
    "CodecError",
    "CodecNegotiationError",
    "CodecStats",
    "WireCodec",
    "available_codecs",
    "codec_name_for_wire_id",
    "decode_message",
    "encode_message",
    "get_codec",
    "register_codec",
]

MAGIC = b"CDS1"
CDS2_MAGIC = b"CDS2"

TAG_MODEL_UPDATE = 1
TAG_WEIGHT_UPDATE = 2
TAG_DELETION = 3

TAG_BY_TYPE = {
    ModelUpdateMessage: TAG_MODEL_UPDATE,
    WeightUpdateMessage: TAG_WEIGHT_UPDATE,
    DeletionMessage: TAG_DELETION,
}

_HEADER = struct.Struct("<4sBBBBqqq")
assert _HEADER.size == HEADER_BYTES

#: CDS2 header: uint16 K and d lift the CDS1 255-component/255-dim cap.
_HEADER2 = struct.Struct("<4sBBHHqqq")
CDS2_HEADER_BYTES = _HEADER2.size  # 34

_FLAG2_DIAGONAL = 0x01
_FLAG2_DELTA = 0x02
_QUANT_SHIFT = 2
_QUANT_MASK = 0x03 << _QUANT_SHIFT

#: Quantization modes: transport dtype for covariance blocks.  ``f64``
#: ships raw covariances (exact); ``f32``/``f16`` ship packed
#: lower-triangular Cholesky factors in the reduced precision.
_QUANT_CODES = {"f64": 0, "f32": 1, "f16": 2}
_QUANT_DTYPES = {"f64": "<f8", "f32": "<f4", "f16": "<f2"}


class CodecError(ValueError):
    """A payload could not be decoded by this codec."""


class CodecNegotiationError(CodecError):
    """A peer sent bytes in a wire format this endpoint did not enable."""


@dataclass(frozen=True, kw_only=True)
class CodecConfig:
    """Knobs for a wire codec instance.

    Parameters
    ----------
    quantize:
        Covariance transport precision: ``"f64"`` ships raw float64
        covariances (bit-exact round trips), ``"f32"``/``"f16"`` ship
        packed Cholesky factors in the reduced precision (CDS2 only).
    delta:
        When ``True`` (CDS2 only) model updates ship only the
        components that changed since the last update the peer has
        *acknowledged*; a missing or stale baseline falls back to a
        full snapshot.
    coalesce_window:
        Maximum unacknowledged payloads in flight before further model
        updates queue (and coalesce newest-wins per site) instead of
        transmitting immediately.  ``None`` disables queueing.  Used by
        the transport-side :class:`repro.transport.wire.CodecSender`.
    baseline_depth:
        How many decoded updates per site each end retains as delta
        baseline candidates.  The sender never references a baseline
        older than this many updates, so both ends agree by
        construction.
    """

    quantize: str = "f64"
    delta: bool = False
    coalesce_window: int | None = None
    baseline_depth: int = 8

    def __post_init__(self) -> None:
        if self.quantize not in _QUANT_CODES:
            raise ValueError(
                f"unknown quantize mode {self.quantize!r}; "
                f"expected one of {sorted(_QUANT_CODES)}"
            )
        if self.coalesce_window is not None and self.coalesce_window < 1:
            raise ValueError("coalesce_window must be positive or None")
        if self.baseline_depth < 1:
            raise ValueError("baseline_depth must be at least 1")


@dataclass
class CodecStats:
    """Per-codec-instance wire accounting.

    ``bytes_snapshot`` is what the same messages would have cost as
    CDS1 full snapshots (``message.payload_bytes()``, the section-6
    unit), so ``bytes_saved`` is directly the wire win of the codec.
    """

    messages: int = 0
    model_updates: int = 0
    delta_updates: int = 0
    snapshot_updates: int = 0
    components_total: int = 0
    components_shipped: int = 0
    bytes_encoded: int = 0
    bytes_snapshot: int = 0
    coalesced: int = 0

    @property
    def delta_hit_rate(self) -> float:
        """Fraction of model updates that went out as deltas."""
        if self.model_updates == 0:
            return 0.0
        return self.delta_updates / self.model_updates

    @property
    def bytes_saved(self) -> int:
        """Bytes the codec avoided vs CDS1 full snapshots."""
        return self.bytes_snapshot - self.bytes_encoded

    def as_dict(self) -> dict[str, float]:
        return {
            "messages": self.messages,
            "model_updates": self.model_updates,
            "delta_updates": self.delta_updates,
            "snapshot_updates": self.snapshot_updates,
            "components_total": self.components_total,
            "components_shipped": self.components_shipped,
            "bytes_encoded": self.bytes_encoded,
            "bytes_snapshot": self.bytes_snapshot,
            "bytes_saved": self.bytes_saved,
            "delta_hit_rate": self.delta_hit_rate,
            "coalesced": self.coalesced,
        }


@runtime_checkable
class WireCodec(Protocol):
    """The pluggable codec surface.

    A codec instance owns one *edge* (one sender or one receiver side):
    delta codecs keep per-site baseline state, so instances must not be
    shared between unrelated connections.
    """

    name: str
    wire_id: int
    config: CodecConfig
    stats: CodecStats

    def encode(self, message: Message) -> bytes:
        """Serialise ``message`` for this edge."""
        ...

    def decode(self, payload: bytes) -> Message:
        """Inverse of :meth:`encode` (plus any formats this codec accepts)."""
        ...

    def note_sent(self, seq: int) -> None:
        """Bind the most recently encoded payload to an ARQ sequence number."""
        ...

    def note_acked(self, seq: int) -> None:
        """Cumulative acknowledgement: every payload up to ``seq`` arrived."""
        ...


# ----------------------------------------------------------------------
# CDS1 -- the paper-faithful v1 format
# ----------------------------------------------------------------------
def _mixture_mode(mixture: GaussianMixture) -> bool:
    """``True`` if all components are diagonal; raises on mixed modes."""
    modes = {component.diagonal for component in mixture.components}
    if len(modes) > 1:
        raise ValueError(
            "cannot encode a mixture with mixed diagonal/full components"
        )
    return modes.pop()


def _encode_cds1(message: Message) -> bytes:
    """Serialise ``message``; the result has ``payload_bytes()`` length."""
    tag = TAG_BY_TYPE.get(type(message))
    if tag is None:
        raise TypeError(f"cannot encode {type(message).__name__}")

    flags = 0
    k = d = 0
    body = b""
    if isinstance(message, ModelUpdateMessage):
        mixture = message.mixture
        diagonal = _mixture_mode(mixture)
        flags |= int(diagonal)
        k = mixture.n_components
        d = mixture.dim
        if k > 255 or d > 255:
            raise ValueError(
                "mixture too large for the wire format "
                "(CDS1 caps K and d at 255; use the cds2 codec)"
            )
        parts = [
            struct.pack("<q", message.count),
            struct.pack("<d", message.reference_likelihood),
            np.asarray(mixture.weights, dtype="<f8").tobytes(),
        ]
        for component in mixture.components:
            parts.append(np.asarray(component.mean, dtype="<f8").tobytes())
            if diagonal:
                parts.append(
                    np.ascontiguousarray(
                        np.diag(component.covariance), dtype="<f8"
                    ).tobytes()
                )
            else:
                parts.append(
                    np.ascontiguousarray(
                        component.covariance, dtype="<f8"
                    ).tobytes()
                )
        body = b"".join(parts)
    else:
        body = struct.pack("<q", message.count_delta)

    header = _HEADER.pack(
        MAGIC,
        tag,
        flags,
        k,
        d,
        message.site_id,
        message.model_id,
        message.time,
    )
    encoded = header + body
    if len(encoded) != message.payload_bytes():
        raise AssertionError(
            f"encoded size {len(encoded)} != accounted "
            f"{message.payload_bytes()}"
        )
    return encoded


def _decode_cds1(payload: bytes) -> Message:
    """Inverse of :func:`_encode_cds1`."""
    if len(payload) < HEADER_BYTES:
        raise CodecError("payload shorter than the message header")
    magic, tag, flags, k, d, site_id, model_id, time = _HEADER.unpack_from(
        payload
    )
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}; not a CDS1 message")
    body = payload[HEADER_BYTES:]

    if tag == TAG_MODEL_UPDATE:
        diagonal = bool(flags & 1)
        (count,) = struct.unpack_from("<q", body, 0)
        (reference,) = struct.unpack_from("<d", body, 8)
        offset = 16
        weights = np.frombuffer(body, dtype="<f8", count=k, offset=offset)
        offset += 8 * k
        cov_values = d if diagonal else d * d
        components = []
        for _ in range(k):
            mean = np.frombuffer(body, dtype="<f8", count=d, offset=offset)
            offset += 8 * d
            cov_flat = np.frombuffer(
                body, dtype="<f8", count=cov_values, offset=offset
            )
            offset += 8 * cov_values
            cov = np.diag(cov_flat) if diagonal else cov_flat.reshape(d, d)
            components.append(Gaussian(mean.copy(), cov, diagonal=diagonal))
        if offset != len(body):
            raise CodecError("trailing bytes after model update body")
        return ModelUpdateMessage(
            site_id=site_id,
            model_id=model_id,
            time=time,
            mixture=GaussianMixture(weights.copy(), tuple(components)),
            count=count,
            reference_likelihood=reference,
        )

    if tag in (TAG_WEIGHT_UPDATE, TAG_DELETION):
        if len(body) != 8:
            raise CodecError("bad body size for a counter message")
        (count_delta,) = struct.unpack("<q", body)
        cls = WeightUpdateMessage if tag == TAG_WEIGHT_UPDATE else DeletionMessage
        return cls(
            site_id=site_id,
            model_id=model_id,
            time=time,
            count_delta=count_delta,
        )

    raise CodecError(f"unknown message tag {tag}")


class CDS1Codec:
    """The v1 codec: exact float64 snapshots, ``payload_bytes()`` sized.

    Stateless -- every model update is a full snapshot, and the encoded
    length equals the section-6 accounting byte for byte.
    """

    name = "cds1"
    wire_id = 0

    def __init__(self, config: CodecConfig | None = None) -> None:
        config = config or CodecConfig()
        if config.quantize != "f64":
            raise ValueError(
                "the cds1 codec is exact float64 only; "
                "quantization needs --wire-codec cds2"
            )
        if config.delta:
            raise ValueError(
                "the cds1 codec cannot delta-encode; "
                "delta needs --wire-codec cds2"
            )
        self.config = config
        self.stats = CodecStats()

    def encode(self, message: Message) -> bytes:
        payload = _encode_cds1(message)
        stats = self.stats
        stats.messages += 1
        stats.bytes_encoded += len(payload)
        stats.bytes_snapshot += len(payload)
        if isinstance(message, ModelUpdateMessage):
            stats.model_updates += 1
            stats.snapshot_updates += 1
            stats.components_total += message.mixture.n_components
            stats.components_shipped += message.mixture.n_components
        return payload

    def decode(self, payload: bytes) -> Message:
        if payload[:4] == CDS2_MAGIC:
            raise CodecNegotiationError(
                "peer sent a CDS2 payload but this endpoint only accepts "
                "CDS1; enable the cds2 codec on both ends "
                "(--wire-codec cds2) before mixing wire formats"
            )
        return _decode_cds1(payload)

    def note_sent(self, seq: int) -> None:
        pass

    def note_acked(self, seq: int) -> None:
        pass


# ----------------------------------------------------------------------
# CDS2 -- uint16 shapes, delta synopses, quantized Cholesky factors
# ----------------------------------------------------------------------
def _spd_cholesky(covariance: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor, with an escalating jitter fallback.

    Site/coordinator covariances are kept SPD by the EM ridge, but a
    covariance arriving at the wire boundary may sit on the PSD edge;
    a tiny diagonal lift keeps the factorisation defined without
    visibly moving the model.
    """
    try:
        return np.linalg.cholesky(covariance)
    except np.linalg.LinAlgError:
        scale = max(float(np.trace(covariance)) / covariance.shape[0], 1.0)
        for exponent in range(-12, 0):
            jitter = scale * 10.0**exponent
            try:
                return np.linalg.cholesky(
                    covariance + jitter * np.eye(covariance.shape[0])
                )
            except np.linalg.LinAlgError:
                continue
        raise


def _quantize_cov(component: Gaussian, quantize: str) -> bytes:
    """Covariance transport block for one component."""
    dtype = _QUANT_DTYPES[quantize]
    if component.diagonal:
        values = np.diag(component.covariance)
    elif quantize == "f64":
        values = np.ascontiguousarray(component.covariance)
    else:
        factor = _spd_cholesky(component.covariance)
        values = factor[np.tril_indices(component.dim)]
    if quantize == "f16":
        # Clamp into float16's finite range so extreme variances
        # degrade instead of overflowing to inf.
        finfo = np.finfo(np.float16)
        values = np.clip(values, -float(finfo.max), float(finfo.max))
        values = np.where(
            (values > 0) & (values < float(finfo.tiny)),
            float(finfo.tiny),
            values,
        )
    return np.ascontiguousarray(values, dtype=dtype).tobytes()


def _dequantize_cov(
    blob: bytes, d: int, diagonal: bool, quantize: str
) -> np.ndarray:
    """Reconstruct a covariance matrix from its transport block."""
    dtype = _QUANT_DTYPES[quantize]
    values = np.frombuffer(blob, dtype=dtype).astype(np.float64)
    if diagonal:
        tiny = float(np.finfo(np.float64).tiny)
        return np.diag(np.maximum(values, tiny))
    if quantize == "f64":
        return values.reshape(d, d).copy()
    factor = np.zeros((d, d))
    factor[np.tril_indices(d)] = values
    # A factor diagonal rounded to zero would make the reconstruction
    # singular; the tiniest positive lift keeps it positive definite.
    diag = factor.diagonal().copy()
    floor = max(float(np.abs(diag).max()), 1.0) * 1e-7
    np.fill_diagonal(factor, np.maximum(diag, floor))
    cov = factor @ factor.T
    return (cov + cov.T) / 2.0


def _cov_block_bytes(d: int, diagonal: bool, quantize: str) -> int:
    width = np.dtype(_QUANT_DTYPES[quantize]).itemsize
    if diagonal:
        return width * d
    if quantize == "f64":
        return width * d * d
    return width * (d * (d + 1) // 2)


class CDS2Codec:
    """The v2 codec: delta synopses and quantized factors.

    CDS2 header (little endian, 34 bytes)::

        magic     4   b"CDS2"
        tag       1   message type (CDS1 vocabulary)
        flags     1   bit 0 diagonal, bit 1 delta, bits 2-3 quantize
        K         2   uint16 components (model updates; else 0)
        d         2   uint16 dimensionality (model updates; else 0)
        site_id   8   int64
        model_id  8   int64
        time      8   int64

    Model-update bodies carry ``count`` (int64), ``reference_likelihood``
    (float64), ``update_id`` (uint32), then -- delta updates only --
    ``baseline_id`` (uint32) and a ceil(K/8)-byte changed-component
    bitmask; then all ``K`` weights (float64) and, for each shipped
    component, ``d`` float64 mean values plus the covariance transport
    block (raw float64, or a packed lower-triangular Cholesky factor in
    float32/float16).  Counter messages carry ``count_delta`` (int64).

    Delta baselines are keyed per sending site: an update may reference
    any of the previous ``baseline_depth`` updates from the same site,
    and the *sender* only references updates the receiver has
    cumulatively acknowledged (:meth:`note_acked`), so a baseline lost
    in transit can never be referenced -- the next update simply goes
    out as a full snapshot.
    """

    name = "cds2"
    wire_id = 2

    def __init__(self, config: CodecConfig | None = None) -> None:
        self.config = config or CodecConfig()
        self.stats = CodecStats()
        # Sender-side delta state, all keyed by site_id.
        self._next_update_id: dict[int, int] = {}
        self._unbound: tuple[int, int] | None = None  # (site_id, update_id)
        self._in_flight: OrderedDict[int, tuple[int, int]] = OrderedDict()
        self._sent_reps: dict[int, OrderedDict[int, tuple[bytes, ...]]] = {}
        self._baseline: dict[int, tuple[int, tuple[bytes, ...]]] = {}
        # Receiver-side baseline cache: site_id -> update_id -> mixture.
        self._rx: dict[int, OrderedDict[int, GaussianMixture]] = {}

    # -- ARQ hooks ------------------------------------------------------
    def note_sent(self, seq: int) -> None:
        if self._unbound is not None:
            self._in_flight[seq] = self._unbound
            self._unbound = None

    def note_acked(self, seq: int) -> None:
        while self._in_flight:
            first = next(iter(self._in_flight))
            if first > seq:
                break
            site_id, update_id = self._in_flight.pop(first)
            reps = self._sent_reps.get(site_id, {}).get(update_id)
            if reps is None:
                continue
            current = self._baseline.get(site_id)
            if current is None or update_id > current[0]:
                self._baseline[site_id] = (update_id, reps)

    # -- encoding -------------------------------------------------------
    def encode(self, message: Message) -> bytes:
        tag = TAG_BY_TYPE.get(type(message))
        if tag is None:
            raise TypeError(f"cannot encode {type(message).__name__}")
        stats = self.stats
        if not isinstance(message, ModelUpdateMessage):
            payload = self._encode_counter(message, tag)
            stats.messages += 1
            stats.bytes_encoded += len(payload)
            stats.bytes_snapshot += message.payload_bytes()
            return payload

        mixture = message.mixture
        diagonal = _mixture_mode(mixture)
        k = mixture.n_components
        d = mixture.dim
        if k > 0xFFFF or d > 0xFFFF:
            raise ValueError(
                "mixture too large even for CDS2 (K and d cap at 65535)"
            )
        quantize = self.config.quantize
        site_id = message.site_id

        update_id = self._next_update_id.get(site_id, 0)
        self._next_update_id[site_id] = (update_id + 1) & 0xFFFFFFFF

        reps = tuple(
            np.asarray(component.mean, dtype="<f8").tobytes()
            + _quantize_cov(component, quantize)
            + bytes([int(component.diagonal)])
            for component in mixture.components
        )

        baseline = self._baseline.get(site_id) if self.config.delta else None
        changed: list[int] | None = None
        baseline_id = 0
        if baseline is not None:
            baseline_id, baseline_reps = baseline
            stale = (
                update_id - baseline_id > self.config.baseline_depth
                or len(baseline_reps) != k
            )
            if not stale:
                diff = [
                    i for i in range(k) if reps[i] != baseline_reps[i]
                ]
                # A delta that ships every component is strictly worse
                # than a snapshot (mask + baseline_id overhead).
                if len(diff) < k:
                    changed = diff

        flags = int(diagonal)
        flags |= _QUANT_CODES[quantize] << _QUANT_SHIFT
        if changed is not None:
            flags |= _FLAG2_DELTA

        parts = [
            _HEADER2.pack(
                CDS2_MAGIC,
                tag,
                flags,
                k,
                d,
                site_id,
                message.model_id,
                message.time,
            ),
            struct.pack("<q", message.count),
            struct.pack("<d", message.reference_likelihood),
            struct.pack("<I", update_id),
        ]
        shipped = range(k) if changed is None else changed
        if changed is not None:
            mask = bytearray((k + 7) // 8)
            for i in changed:
                mask[i // 8] |= 1 << (i % 8)
            parts.append(struct.pack("<I", baseline_id))
            parts.append(bytes(mask))
        parts.append(np.asarray(mixture.weights, dtype="<f8").tobytes())
        cov_bytes = _cov_block_bytes(d, diagonal, quantize)
        for i in shipped:
            parts.append(reps[i][: 8 * d + cov_bytes])
        payload = b"".join(parts)

        # Remember what the receiver will hold for this update so later
        # deltas can reference it once it is acknowledged.
        per_site = self._sent_reps.setdefault(site_id, OrderedDict())
        per_site[update_id] = reps
        while len(per_site) > self.config.baseline_depth + 1:
            per_site.popitem(last=False)
        self._unbound = (site_id, update_id)

        stats.messages += 1
        stats.model_updates += 1
        stats.components_total += k
        stats.components_shipped += len(tuple(shipped))
        if changed is None:
            stats.snapshot_updates += 1
        else:
            stats.delta_updates += 1
        stats.bytes_encoded += len(payload)
        stats.bytes_snapshot += message.payload_bytes()
        return payload

    def _encode_counter(self, message: Message, tag: int) -> bytes:
        return _HEADER2.pack(
            CDS2_MAGIC,
            tag,
            0,
            0,
            0,
            message.site_id,
            message.model_id,
            message.time,
        ) + struct.pack("<q", message.count_delta)

    # -- decoding -------------------------------------------------------
    def decode(self, payload: bytes) -> Message:
        if payload[:4] == MAGIC:
            # Cross-version safety: a CDS2 endpoint always understands
            # the v1 format exactly.
            return _decode_cds1(payload)
        if len(payload) < CDS2_HEADER_BYTES:
            raise CodecError("payload shorter than the CDS2 message header")
        magic, tag, flags, k, d, site_id, model_id, time = _HEADER2.unpack_from(
            payload
        )
        if magic != CDS2_MAGIC:
            raise CodecError(f"bad magic {magic!r}; not a CDS1/CDS2 message")
        body = payload[CDS2_HEADER_BYTES:]

        if tag in (TAG_WEIGHT_UPDATE, TAG_DELETION):
            if len(body) != 8:
                raise CodecError("bad body size for a counter message")
            (count_delta,) = struct.unpack("<q", body)
            cls = (
                WeightUpdateMessage
                if tag == TAG_WEIGHT_UPDATE
                else DeletionMessage
            )
            return cls(
                site_id=site_id,
                model_id=model_id,
                time=time,
                count_delta=count_delta,
            )
        if tag != TAG_MODEL_UPDATE:
            raise CodecError(f"unknown message tag {tag}")

        diagonal = bool(flags & _FLAG2_DIAGONAL)
        delta = bool(flags & _FLAG2_DELTA)
        quant_code = (flags & _QUANT_MASK) >> _QUANT_SHIFT
        quantize = {v: n for n, v in _QUANT_CODES.items()}.get(quant_code)
        if quantize is None:
            raise CodecError(f"unknown quantization code {quant_code}")

        (count,) = struct.unpack_from("<q", body, 0)
        (reference,) = struct.unpack_from("<d", body, 8)
        (update_id,) = struct.unpack_from("<I", body, 16)
        offset = 20

        baseline_components: tuple[Gaussian, ...] | None = None
        changed_mask: list[bool] | None = None
        if delta:
            (baseline_id,) = struct.unpack_from("<I", body, offset)
            offset += 4
            mask = body[offset : offset + (k + 7) // 8]
            offset += (k + 7) // 8
            changed_mask = [
                bool(mask[i // 8] & (1 << (i % 8))) for i in range(k)
            ]
            cached = self._rx.get(site_id, {}).get(baseline_id)
            if cached is None:
                raise CodecError(
                    f"delta update {update_id} from site {site_id} "
                    f"references baseline {baseline_id} which this "
                    "endpoint does not hold -- the sender violated the "
                    "acknowledged-baseline invariant"
                )
            if cached.n_components != k:
                raise CodecError(
                    "delta update component count does not match its baseline"
                )
            baseline_components = cached.components

        weights = np.frombuffer(body, dtype="<f8", count=k, offset=offset)
        offset += 8 * k
        cov_bytes = _cov_block_bytes(d, diagonal, quantize)
        components: list[Gaussian] = []
        for i in range(k):
            if changed_mask is not None and not changed_mask[i]:
                assert baseline_components is not None
                components.append(baseline_components[i])
                continue
            mean = np.frombuffer(body, dtype="<f8", count=d, offset=offset)
            offset += 8 * d
            cov = _dequantize_cov(
                body[offset : offset + cov_bytes], d, diagonal, quantize
            )
            offset += cov_bytes
            components.append(Gaussian(mean.copy(), cov, diagonal=diagonal))
        if offset != len(body):
            raise CodecError("trailing bytes after CDS2 model update body")

        mixture = GaussianMixture(weights.copy(), tuple(components))
        per_site = self._rx.setdefault(site_id, OrderedDict())
        per_site[update_id] = mixture
        while len(per_site) > self.config.baseline_depth + 1:
            per_site.popitem(last=False)
        return ModelUpdateMessage(
            site_id=site_id,
            model_id=model_id,
            time=time,
            mixture=mixture,
            count=count,
            reference_likelihood=reference,
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[CodecConfig | None], WireCodec]] = {}


def register_codec(
    name: str, factory: Callable[[CodecConfig | None], WireCodec]
) -> None:
    """Register a codec factory under ``name``.

    The factory is called with a :class:`CodecConfig` (or ``None`` for
    defaults) and must return a fresh :class:`WireCodec` instance --
    codec instances carry per-edge state and are never shared.
    """
    if name in _REGISTRY:
        raise ValueError(f"codec {name!r} is already registered")
    _REGISTRY[name] = factory


def get_codec(
    name: str = "cds1", config: CodecConfig | None = None
) -> WireCodec:
    """Instantiate a registered codec for one edge."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown wire codec {name!r}; "
            f"available: {', '.join(available_codecs())}"
        ) from None
    return factory(config)


def available_codecs() -> tuple[str, ...]:
    """Names accepted by :func:`get_codec`, in registration order."""
    return tuple(_REGISTRY)


register_codec("cds1", CDS1Codec)
register_codec("cds2", CDS2Codec)

#: Envelope codec ids (TPT1 negotiation) back to registry names.
_WIRE_IDS = {CDS1Codec.wire_id: "cds1", CDS2Codec.wire_id: "cds2"}


def codec_name_for_wire_id(wire_id: int) -> str | None:
    """Registry name for a TPT1 envelope codec id, if known."""
    return _WIRE_IDS.get(wire_id)


# ----------------------------------------------------------------------
# Deprecated 1.1.0 module-function surface (DESIGN.md section 10.3)
# ----------------------------------------------------------------------
def encode_message(message: Message) -> bytes:
    """Deprecated alias for the v1 codec's :meth:`WireCodec.encode`.

    .. deprecated:: 1.2.0
        Use ``get_codec("cds1").encode(message)`` (or another
        registered codec) instead.
    """
    warnings.warn(
        "encode_message() is deprecated; use "
        "repro.core.serde.get_codec('cds1').encode(message) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _encode_cds1(message)


def decode_message(payload: bytes) -> Message:
    """Deprecated alias for the v1 codec's :meth:`WireCodec.decode`.

    .. deprecated:: 1.2.0
        Use ``get_codec("cds1").decode(payload)`` (or another
        registered codec) instead.
    """
    warnings.warn(
        "decode_message() is deprecated; use "
        "repro.core.serde.get_codec('cds1').decode(payload) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _decode_cds1(payload)
