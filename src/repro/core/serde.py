"""Binary wire format for synopsis messages.

The byte accounting in :mod:`repro.core.protocol` is only honest if the
messages actually fit in that many bytes.  This module provides the
encoding that proves it: every message serialises to *exactly*
``message.payload_bytes()`` bytes and round-trips losslessly.

Layout (little endian):

==========  =====  =====================================================
field       bytes  notes
==========  =====  =====================================================
magic       4      ``b"CDS1"`` (format version 1)
tag         1      message type (:data:`TAG_BY_TYPE`)
flags       1      bit 0: diagonal covariances
K           1      mixture components (model updates; else 0)
d           1      dimensionality (model updates; else 0)
site_id     8      int64
model_id    8      int64
time        8      int64
==========  =====  =====================================================

-- 32 header bytes (``protocol.HEADER_BYTES``), then per type:

* ``ModelUpdateMessage``: ``count`` (int64), ``reference_likelihood``
  (float64), ``K`` weights, then per component ``d`` mean values and
  ``d²`` (full) or ``d`` (diagonal) covariance values -- all float64.
* ``WeightUpdateMessage`` / ``DeletionMessage``: ``count_delta``
  (int64).

Mixtures mixing diagonal and full-covariance components are rejected
(they never occur -- a mixture comes from one EM run with one
covariance mode) because their size could not match the accounting.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.core.protocol import (
    HEADER_BYTES,
    DeletionMessage,
    Message,
    ModelUpdateMessage,
    WeightUpdateMessage,
)

__all__ = ["decode_message", "encode_message"]

MAGIC = b"CDS1"

TAG_MODEL_UPDATE = 1
TAG_WEIGHT_UPDATE = 2
TAG_DELETION = 3

TAG_BY_TYPE = {
    ModelUpdateMessage: TAG_MODEL_UPDATE,
    WeightUpdateMessage: TAG_WEIGHT_UPDATE,
    DeletionMessage: TAG_DELETION,
}

_HEADER = struct.Struct("<4sBBBBqqq")
assert _HEADER.size == HEADER_BYTES


def _mixture_mode(mixture: GaussianMixture) -> bool:
    """``True`` if all components are diagonal; raises on mixed modes."""
    modes = {component.diagonal for component in mixture.components}
    if len(modes) > 1:
        raise ValueError(
            "cannot encode a mixture with mixed diagonal/full components"
        )
    return modes.pop()


def encode_message(message: Message) -> bytes:
    """Serialise ``message``; the result has ``payload_bytes()`` length."""
    tag = TAG_BY_TYPE.get(type(message))
    if tag is None:
        raise TypeError(f"cannot encode {type(message).__name__}")

    flags = 0
    k = d = 0
    body = b""
    if isinstance(message, ModelUpdateMessage):
        mixture = message.mixture
        diagonal = _mixture_mode(mixture)
        flags |= int(diagonal)
        k = mixture.n_components
        d = mixture.dim
        if k > 255 or d > 255:
            raise ValueError("mixture too large for the wire format")
        parts = [
            struct.pack("<q", message.count),
            struct.pack("<d", message.reference_likelihood),
            np.asarray(mixture.weights, dtype="<f8").tobytes(),
        ]
        for component in mixture.components:
            parts.append(np.asarray(component.mean, dtype="<f8").tobytes())
            if diagonal:
                parts.append(
                    np.ascontiguousarray(
                        np.diag(component.covariance), dtype="<f8"
                    ).tobytes()
                )
            else:
                parts.append(
                    np.ascontiguousarray(
                        component.covariance, dtype="<f8"
                    ).tobytes()
                )
        body = b"".join(parts)
    else:
        body = struct.pack("<q", message.count_delta)

    header = _HEADER.pack(
        MAGIC,
        tag,
        flags,
        k,
        d,
        message.site_id,
        message.model_id,
        message.time,
    )
    encoded = header + body
    if len(encoded) != message.payload_bytes():
        raise AssertionError(
            f"encoded size {len(encoded)} != accounted "
            f"{message.payload_bytes()}"
        )
    return encoded


def decode_message(payload: bytes) -> Message:
    """Inverse of :func:`encode_message`."""
    if len(payload) < HEADER_BYTES:
        raise ValueError("payload shorter than the message header")
    magic, tag, flags, k, d, site_id, model_id, time = _HEADER.unpack_from(
        payload
    )
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r}; not a CDS1 message")
    body = payload[HEADER_BYTES:]

    if tag == TAG_MODEL_UPDATE:
        diagonal = bool(flags & 1)
        (count,) = struct.unpack_from("<q", body, 0)
        (reference,) = struct.unpack_from("<d", body, 8)
        offset = 16
        weights = np.frombuffer(body, dtype="<f8", count=k, offset=offset)
        offset += 8 * k
        cov_values = d if diagonal else d * d
        components = []
        for _ in range(k):
            mean = np.frombuffer(body, dtype="<f8", count=d, offset=offset)
            offset += 8 * d
            cov_flat = np.frombuffer(
                body, dtype="<f8", count=cov_values, offset=offset
            )
            offset += 8 * cov_values
            cov = np.diag(cov_flat) if diagonal else cov_flat.reshape(d, d)
            components.append(Gaussian(mean.copy(), cov, diagonal=diagonal))
        if offset != len(body):
            raise ValueError("trailing bytes after model update body")
        return ModelUpdateMessage(
            site_id=site_id,
            model_id=model_id,
            time=time,
            mixture=GaussianMixture(weights.copy(), tuple(components)),
            count=count,
            reference_likelihood=reference,
        )

    if tag in (TAG_WEIGHT_UPDATE, TAG_DELETION):
        if len(body) != 8:
            raise ValueError("bad body size for a counter message")
        (count_delta,) = struct.unpack("<q", body)
        cls = WeightUpdateMessage if tag == TAG_WEIGHT_UPDATE else DeletionMessage
        return cls(
            site_id=site_id,
            model_id=model_id,
            time=time,
            count_delta=count_delta,
        )

    raise ValueError(f"unknown message tag {tag}")
