"""The assembled CluDistream system (paper section 5).

:class:`CluDistream` wires ``r`` :class:`~repro.core.remote.RemoteSite`
instances to one :class:`~repro.core.coordinator.Coordinator`, in one of
three transports:

* **direct mode** (:meth:`CluDistream.feed`) -- messages are delivered
  to the coordinator synchronously; ideal for quality experiments where
  network timing is irrelevant;
* **simulated mode** (:meth:`CluDistream.run_simulation`) -- sites pump
  their streams through the discrete-event engine over a star network
  with latency/bandwidth, and the per-second communication-cost series
  of Figure 2 is collected on the way;
* **transport mode** (:meth:`CluDistream.run_over_transport`) -- the
  wire-format messages travel a :mod:`repro.transport` backend with
  full reliability semantics (sequence numbers, retransmission,
  dedupe), surviving seeded drop/duplicate/reorder faults with a final
  state identical to the loss-free run.  The same stack runs over real
  asyncio TCP sockets via ``repro.transport.tcp`` and the ``serve`` /
  ``site`` CLI subcommands.

All three entry points are thin façades over one
:class:`~repro.runtime.Runtime` driving a pluggable
:class:`~repro.runtime.Channel` (:class:`~repro.runtime.DirectChannel`,
:class:`~repro.runtime.SimulatedChannel`,
:class:`~repro.runtime.TransportChannel` respectively); use
:meth:`CluDistream.runtime` directly for fault injection, unified
delivery accounting, or checkpoint/resume.

This is the primary public entry point of the library; see
``examples/quickstart.py``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.coordinator import Coordinator, CoordinatorConfig
from repro.core.mixture import GaussianMixture
from repro.core.protocol import Message
from repro.core.remote import RemoteSite, RemoteSiteConfig
from repro.obs.observer import Observer, ensure_observer
from repro.runtime import (
    Channel,
    DirectChannel,
    Runtime,
    SimulatedChannel,
    TransportChannel,
)

__all__ = ["CluDistream", "CluDistreamConfig", "SimulationReport"]


@dataclass(frozen=True, kw_only=True)
class CluDistreamConfig:
    """Whole-system configuration.

    Defaults follow section 6 of the paper: ``r = 20`` remote sites,
    ``ε = 0.02``, ``δ = 0.01``, ``d = 4``, ``K = 5``, ``c_max = 4``.

    Parameters
    ----------
    n_sites:
        Number of remote sites ``r``.
    site:
        Per-site configuration (shared by all sites).
    coordinator:
        Coordinator configuration.
    rate:
        Stream rate per site in records per virtual second (simulated
        mode only; the paper processes ~1000 updates/s).
    latency:
        Site-to-coordinator propagation delay in virtual seconds.
    bandwidth:
        Link bandwidth in bytes per virtual second (``None`` =
        unconstrained).
    incremental:
        System-wide escalation policy switch for the site refit ladder
        (DESIGN.md section 14).  ``True`` / ``False`` force
        ``site.em.incremental`` on or off for every site; ``None``
        (default) leaves whatever ``site`` says untouched.
    wire_codec / quantize / delta_encoding:
        Wire format for transport mode (DESIGN.md section 15): the
        codec every edge speaks (``"cds1"`` or ``"cds2"``), the
        covariance precision shipped by CDS2 (``"f64"``, ``"f32"``,
        ``"f16"``) and whether CDS2 sends baseline deltas instead of
        full snapshots.  The defaults reproduce the CDS1 byte
        accounting exactly.  Direct and simulated modes ignore these.
    """

    n_sites: int = 20
    site: RemoteSiteConfig = field(default_factory=RemoteSiteConfig)
    coordinator: CoordinatorConfig = field(default_factory=CoordinatorConfig)
    rate: float = 1000.0
    latency: float = 0.01
    bandwidth: float | None = None
    incremental: bool | None = None
    wire_codec: str = "cds1"
    quantize: str = "f64"
    delta_encoding: bool = False

    def codec_config(self):
        """The :class:`~repro.core.serde.CodecConfig` these settings name."""
        from repro.core.serde import CodecConfig

        return CodecConfig(quantize=self.quantize, delta=self.delta_encoding)

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError("need at least one remote site")
        if self.rate <= 0.0:
            raise ValueError("rate must be positive")
        # get_codec validates both the codec name and whether the codec
        # can honour the quantize/delta settings (CDS1 cannot).
        from repro.core.serde import get_codec

        get_codec(self.wire_codec, self.codec_config())
        if (
            self.incremental is not None
            and self.incremental != self.site.em.incremental
        ):
            from dataclasses import replace

            object.__setattr__(
                self,
                "site",
                replace(
                    self.site,
                    em=replace(self.site.em, incremental=self.incremental),
                ),
            )


@dataclass(frozen=True)
class SimulationReport:
    """Summary of one simulated run.

    Attributes
    ----------
    duration:
        Virtual seconds elapsed.
    records:
        Total records delivered across all sites.
    messages / bytes:
        Network traffic totals.
    cost_series:
        Per-second cumulative communication cost ``(times, bytes)`` --
        the Figure 2 curve.
    """

    duration: float
    records: int
    messages: int
    bytes: int
    cost_series: tuple[list[float], list[float]]


class CluDistream:
    """The distributed clustering system: ``r`` sites + coordinator.

    Parameters
    ----------
    config:
        System configuration.
    seed:
        Base seed; site ``i`` uses ``seed + i`` so runs are reproducible
        and sites are independent.
    observer:
        Optional :class:`~repro.obs.observer.Observer`, shared by the
        coordinator and every site (and forwarded to the transport stack
        in :meth:`run_over_transport`).  ``None`` keeps the system
        completely uninstrumented.
    """

    def __init__(
        self,
        config: CluDistreamConfig | None = None,
        seed: int = 0,
        observer: Observer | None = None,
    ) -> None:
        self.config = config or CluDistreamConfig()
        self.observer = ensure_observer(observer)
        self.coordinator = Coordinator(
            self.config.coordinator,
            rng=np.random.default_rng(seed + 10_000),
            observer=self.observer,
        )
        self.sites: list[RemoteSite] = [
            RemoteSite(
                site_id=i,
                config=self.config.site,
                rng=np.random.default_rng(seed + i),
                observer=self.observer,
            )
            for i in range(self.config.n_sites)
        ]
        self._direct_runtime: Runtime | None = None

    # ------------------------------------------------------------------
    # The unified runtime
    # ------------------------------------------------------------------
    def runtime(
        self,
        channel: Channel | None = None,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int | None = None,
    ) -> Runtime:
        """A :class:`~repro.runtime.Runtime` over this system.

        This is the general form of the three mode methods below: pick
        any :class:`~repro.runtime.Channel` (with fault injection if
        desired), get unified delivery accounting, and opt into the
        checkpoint/resume lifecycle.  ``channel`` defaults to a fresh
        :class:`~repro.runtime.DirectChannel`.
        """
        return Runtime(
            self.sites,
            self.coordinator,
            channel if channel is not None else DirectChannel(),
            observer=self.observer,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )

    def _direct(self) -> Runtime:
        """The cached direct-mode runtime behind :meth:`feed` (one
        channel, so delivery accounting accumulates across calls)."""
        if self._direct_runtime is None:
            self._direct_runtime = self.runtime(DirectChannel())
        return self._direct_runtime

    # ------------------------------------------------------------------
    # Direct (synchronous) mode
    # ------------------------------------------------------------------
    def feed(self, site_id: int, record: np.ndarray) -> list[Message]:
        """Deliver one record to a site; messages reach the coordinator
        immediately.

        Returns the messages generated (already applied at the
        coordinator).
        """
        return self._direct().step(site_id, record)

    def feed_streams(
        self,
        streams: Mapping[int, Iterable[np.ndarray]],
        max_records_per_site: int,
    ) -> int:
        """Round-robin feed several site streams in direct mode.

        Parameters
        ----------
        streams:
            ``site_id -> record iterable``.
        max_records_per_site:
            Records consumed from each stream.

        Returns
        -------
        int
            Total records delivered.
        """
        # A fresh Runtime each call (stream position restarts at zero)
        # over the shared direct channel (accounting accumulates).
        runtime = self.runtime(self._direct().channel)
        return runtime.run(streams, max_records_per_site).records

    # ------------------------------------------------------------------
    # Simulated mode
    # ------------------------------------------------------------------
    def run_simulation(
        self,
        streams: Mapping[int, Iterable[np.ndarray]],
        max_records_per_site: int,
        sample_interval: float = 1.0,
    ) -> SimulationReport:
        """Run the system on the discrete-event engine.

        Each site consumes its stream at ``config.rate`` records per
        virtual second; messages traverse the star network with the
        configured latency/bandwidth; communication cost is sampled
        every ``sample_interval`` virtual seconds.

        Parameters
        ----------
        streams:
            ``site_id -> record iterable`` (sites without a stream stay
            idle).
        max_records_per_site:
            Stop each site after this many records.
        sample_interval:
            Grid period of the cost collector.

        Returns
        -------
        SimulationReport

        .. deprecated:: 1.1
            Use :meth:`runtime` with a
            :class:`~repro.runtime.SimulatedChannel` instead; this shim
            will be removed one release after 1.1 (see DESIGN.md §10,
            "Public API and deprecation policy").
        """
        warnings.warn(
            "CluDistream.run_simulation is deprecated; build a Runtime "
            "over a SimulatedChannel instead: "
            "system.runtime(SimulatedChannel(...)).run(streams, n). "
            "The shim will be removed one release after 1.1.",
            DeprecationWarning,
            stacklevel=2,
        )
        channel = SimulatedChannel(
            rate=self.config.rate,
            latency=self.config.latency,
            bandwidth=self.config.bandwidth,
            sample_interval=sample_interval,
        )
        report = self.runtime(channel).run(streams, max_records_per_site)
        accounting = report.accounting
        return SimulationReport(
            duration=report.duration,
            records=report.records,
            messages=accounting.attempted,
            bytes=accounting.payload_bytes,
            cost_series=channel.cost_series(),
        )

    # ------------------------------------------------------------------
    # Transport mode
    # ------------------------------------------------------------------
    def run_over_transport(
        self,
        streams: Mapping[int, Iterable[np.ndarray]],
        max_records_per_site: int,
        transport,
        clock,
        reliability=None,
        drain_step: float = 0.25,
        drain_limit: float = 600.0,
        seed: int = 0,
    ):
        """Drive the system through a :mod:`repro.transport` backend.

        Sites emit through :class:`~repro.transport.endpoint.SiteEndpoint`
        objects (serde + reliable delivery) instead of handing messages
        straight to the coordinator.  After every record the transport is
        *drained* -- the manual ``clock`` is advanced until every outbox
        is acknowledged -- so delivery order equals emission order and
        the final coordinator state is identical across backends: a
        seeded lossy transport converges to exactly the loopback state
        (retransmission + dedupe restore the loss-free history).

        Parameters
        ----------
        streams / max_records_per_site:
            As in :meth:`feed_streams`.
        transport:
            Any :class:`~repro.transport.base.DatagramTransport`.
        clock:
            A :class:`~repro.transport.clock.ManualClock` shared with the
            transport's fault injector (if any).
        reliability:
            Optional :class:`~repro.transport.reliability.ReliabilityConfig`.
        drain_step / drain_limit:
            Clock step and safety bound of each drain.

        Returns
        -------
        tuple
            ``(site_endpoints, coordinator_endpoint)`` with all delivery
            statistics, already closed.

        .. deprecated:: 1.1
            Use :meth:`runtime` with a
            :class:`~repro.runtime.TransportChannel` instead; this shim
            will be removed one release after 1.1 (see DESIGN.md §10,
            "Public API and deprecation policy").
        """
        warnings.warn(
            "CluDistream.run_over_transport is deprecated; build a "
            "Runtime over a TransportChannel instead: "
            "system.runtime(TransportChannel(transport, clock, ...))"
            ".run(streams, n). The shim will be removed one release "
            "after 1.1.",
            DeprecationWarning,
            stacklevel=2,
        )
        channel = TransportChannel(
            transport,
            clock,
            reliability=reliability,
            drain_step=drain_step,
            drain_limit=drain_limit,
            seed=seed,
            wire_codec=self.config.wire_codec,
            codec_config=self.config.codec_config(),
        )
        self.runtime(channel).run(streams, max_records_per_site)
        return channel.endpoints, channel.coordinator_endpoint

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def global_mixture(self) -> GaussianMixture:
        """The coordinator's compact global model."""
        return self.coordinator.global_mixture()

    def site_mixtures(self) -> Sequence[GaussianMixture]:
        """Each site's current local model (sites without one skipped)."""
        return tuple(
            site.current_model.mixture
            for site in self.sites
            if site.current_model is not None
        )

    def evolving_query(
        self, start: int, length: int
    ) -> dict[int, list[tuple[int, int, GaussianMixture | None]]]:
        """Section 7 evolving analysis across all sites.

        For each site, returns the sequence of ``(span_start, span_end,
        mixture)`` covering the record window ``[start, start+length)``
        -- the "series of Gaussian mixture models [reflecting] the
        evolving process of data stream within that window".  Spans are
        clipped to the window; the still-open current reign is included;
        a mixture is ``None`` when the covering model has since expired
        (sliding-window deletion).

        Answers are exact up to chunk granularity (absolute error
        ``M/2``, per the paper).
        """
        if length <= 0:
            raise ValueError("window length must be positive")
        end = start + length
        answer: dict[int, list[tuple[int, int, GaussianMixture | None]]] = {}
        for site in self.sites:
            spans: list[tuple[int, int, GaussianMixture | None]] = []
            for record in site.events.window(start, length):
                entry = site.find_model(record.model_id)
                spans.append(
                    (
                        max(record.start, start),
                        min(record.end, end),
                        entry.mixture if entry else None,
                    )
                )
            current = site.current_model
            if current is not None:
                reign_start = site.current_started_at
                if reign_start < end and start < site.position:
                    spans.append(
                        (
                            max(reign_start, start),
                            min(site.position, end),
                            current.mixture,
                        )
                    )
            answer[site.site_id] = spans
        return answer

    def total_bytes_sent(self) -> int:
        """Bytes emitted by all sites (direct or simulated)."""
        return sum(site.stats.bytes_sent for site in self.sites)

    def total_messages_sent(self) -> int:
        """Messages emitted by all sites."""
        return sum(site.stats.messages_sent for site in self.sites)

    def memory_bytes(self) -> int:
        """Theorem 3 memory across sites plus the coordinator tree."""
        return (
            sum(site.memory_bytes() for site in self.sites)
            + self.coordinator.memory_bytes()
        )

    def _site(self, site_id: int) -> RemoteSite:
        if not 0 <= site_id < len(self.sites):
            raise KeyError(f"unknown site {site_id}")
        return self.sites[site_id]

    def __repr__(self) -> str:
        return (
            f"CluDistream(sites={len(self.sites)}, "
            f"coordinator={self.coordinator!r})"
        )
