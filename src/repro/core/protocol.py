"""Synopsis messages exchanged between remote sites and the coordinator.

Section 5.3 of the paper reduces communication three ways: only model
synopses are transmitted (never raw records), nothing is transmitted
while a site's distribution is stable, and no global information is
broadcast back.  The message vocabulary needed for that protocol is
small:

* :class:`ModelUpdateMessage` -- a site trained a new model; carries the
  full mixture synopsis plus its record counter.
* :class:`WeightUpdateMessage` -- in the multi-test strategy a chunk
  matched an *archived* model, so only that model's weight (record
  count) changes; carries ids and a counter delta.
* :class:`DeletionMessage` -- sliding-window deletion (section 7): the
  site uploads a model ID with a negative weight and the coordinator
  subtracts it.

Every message knows its payload size in bytes so the simulation layer
can meter communication cost exactly the way Figure 2 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mixture import GaussianMixture

__all__ = [
    "DeletionMessage",
    "Message",
    "ModelUpdateMessage",
    "WeightUpdateMessage",
]

#: Fixed per-message framing overhead (site id, model id, timestamps,
#: message tag) counted in every payload.
HEADER_BYTES = 32

#: Bytes for one integer counter field.
COUNTER_BYTES = 8


@dataclass(frozen=True)
class Message:
    """Base class for site-to-coordinator messages.

    Attributes
    ----------
    site_id:
        Originating remote site.
    model_id:
        Site-local identifier of the model the message concerns.
    time:
        Stream position (records processed at the site) when the
        message was emitted.  The simulation layer translates this to
        virtual seconds.
    """

    site_id: int
    model_id: int
    time: int

    def payload_bytes(self) -> int:
        """Wire size of this message in bytes."""
        return HEADER_BYTES


@dataclass(frozen=True)
class ModelUpdateMessage(Message):
    """A newly trained model's full synopsis.

    Attributes
    ----------
    mixture:
        The freshly fitted ``(w, μ, Σ)`` parameters.
    count:
        Number of records the model currently explains (Theorem 1's
        ``M`` right after training).
    reference_likelihood:
        ``AvgPr_0`` of the model -- shipped so the coordinator can run
        fit diagnostics without raw data.
    """

    mixture: GaussianMixture
    count: int
    reference_likelihood: float

    def payload_bytes(self) -> int:
        return (
            HEADER_BYTES
            + self.mixture.payload_bytes()
            + COUNTER_BYTES  # count
            + COUNTER_BYTES  # reference likelihood
        )


@dataclass(frozen=True)
class WeightUpdateMessage(Message):
    """Counter delta for a model the coordinator already holds.

    Emitted when the multi-test strategy matches a chunk to an archived
    model: the distribution is one the coordinator has seen, so only its
    weight moves.
    """

    count_delta: int

    def payload_bytes(self) -> int:
        return HEADER_BYTES + COUNTER_BYTES


@dataclass(frozen=True)
class DeletionMessage(Message):
    """Sliding-window deletion: negative weight for an expired model.

    The coordinator subtracts ``count_delta`` (a positive number of
    expired records) from the model's weight and drops the model when
    the weight becomes non-positive (section 7).
    """

    count_delta: int

    def payload_bytes(self) -> int:
        return HEADER_BYTES + COUNTER_BYTES
