"""Coordinator processing: the global model hierarchy (§5.2, Algorithm 2).

The coordinator receives model synopses from ``r`` remote sites and
maintains a two-level tree:

* **leaves** -- individual Gaussian components shipped by sites, keyed
  by ``(site_id, model_id, component_index)`` and weighted by the site
  mixture weight times the model's record counter;
* **global clusters** (the paper's ``Mix`` nodes) -- groups of leaves,
  each with a *father* component fitted by the merge machinery of
  :mod:`repro.core.merging`.

Simply unioning all site components would give an ``r·K``-component
global mixture -- correct but unscalable and prone to local maxima, as
section 5.2 notes.  Instead the coordinator greedily merges the pair of
global clusters with the largest ``M_merge`` until at most
``max_components`` remain, fitting each father by minimising the L1
accuracy loss.

On every site update Algorithm 2 runs: each updated component checks
``M_split`` against the reciprocal of the ``M_remerge`` value stored
when it was merged; components that drifted away from their father are
split out and re-merged into the sibling cluster with the largest
``M_remerge``.

Sliding-window deletions (section 7) subtract weight from a site model
and drop it once the weight is non-positive.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.merging import fit_merged_component, m_merge, m_split
from repro.core.mixture import GaussianMixture
from repro.core.protocol import (
    DeletionMessage,
    Message,
    ModelUpdateMessage,
    WeightUpdateMessage,
)
from repro.obs.observer import Observer, ensure_observer

__all__ = [
    "Coordinator",
    "CoordinatorConfig",
    "CoordinatorStats",
    "GlobalCluster",
    "Leaf",
]


@dataclass(frozen=True, kw_only=True)
class CoordinatorConfig:
    """Coordinator tuning knobs.

    Parameters
    ----------
    max_components:
        Upper bound on global clusters; merging kicks in above it.
        ``None`` disables merging entirely (the naive ``r·K`` union).
    merge_method:
        ``"simplex"`` (the paper's downhill-simplex fit of the father
        component) or ``"moment"`` (exact moment matching -- the cheap
        ablation).
    merge_samples:
        Monte-Carlo budget per accuracy-loss evaluation.
    attach_threshold:
        A new leaf joins an existing cluster outright when its
        symmetrised Mahalanobis distance to the father is below this;
        otherwise it starts a cluster of its own and the global cap
        decides whether merging is needed.
    tolerate_loss:
        Survive unreliable links: a weight update referring to a model
        whose announcement was lost is counted
        (``stats.orphan_updates``) and ignored instead of raising.
        Model updates are idempotent either way (a duplicate replaces
        the same leaves), so duplicated deliveries are always safe.
    index_candidates:
        The paper's future-work index structure: when set, attach and
        merge searches prune candidates through a KD-tree over father
        means, scoring the exact Mahalanobis criterion only on the
        nearest ``index_candidates`` clusters.  ``None`` (default) keeps
        the exact linear/quadratic scans.
    """

    max_components: int | None = 5
    merge_method: str = "simplex"
    merge_samples: int = 1024
    attach_threshold: float = 4.0
    tolerate_loss: bool = False
    index_candidates: int | None = None

    def __post_init__(self) -> None:
        if self.max_components is not None and self.max_components < 1:
            raise ValueError("max_components must be at least 1")
        if self.merge_method not in ("simplex", "moment"):
            raise ValueError(f"unknown merge method {self.merge_method!r}")
        if self.attach_threshold <= 0.0:
            raise ValueError("attach_threshold must be positive")
        if self.index_candidates is not None and self.index_candidates < 1:
            raise ValueError("index_candidates must be at least 1")


@dataclass
class Leaf:
    """A site component living in the coordinator's tree.

    Attributes
    ----------
    site_id / model_id / component_index:
        Origin of the component.
    gaussian:
        The component parameters as shipped.
    weight:
        Absolute mass: site mixture weight × model record counter.
    remerge_score:
        ``M_remerge(i, Mix)`` stored when the leaf was (re)merged into
        its current father -- Algorithm 2 compares ``M_split`` against
        its reciprocal on later updates.
    """

    site_id: int
    model_id: int
    component_index: int
    gaussian: Gaussian
    weight: float
    remerge_score: float = float("inf")

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.site_id, self.model_id, self.component_index)


@dataclass
class GlobalCluster:
    """A father node: a set of leaves plus its fitted representative."""

    cluster_id: int
    leaves: list[Leaf] = field(default_factory=list)
    father: Gaussian | None = None

    @property
    def weight(self) -> float:
        return float(sum(leaf.weight for leaf in self.leaves))

    def leaf_mixture(self) -> GaussianMixture:
        """Exact sub-mixture of this cluster's leaves."""
        if not self.leaves:
            raise ValueError("cluster has no leaves")
        weights = np.array([leaf.weight for leaf in self.leaves])
        return GaussianMixture(
            weights, tuple(leaf.gaussian for leaf in self.leaves)
        )

    def refresh_father(self) -> None:
        """Refit the representative as the leaves' moment-matched pool.

        Pairwise simplex fits happen at merge time; between merges the
        father tracks its leaves by exact moment matching, which is the
        best available zero-communication refresh.
        """
        self.father = self.leaf_mixture().pooled_gaussian()


@dataclass
class CoordinatorStats:
    """Counters for the coordinator-side figures."""

    messages_received: int = 0
    bytes_received: int = 0
    model_updates: int = 0
    weight_updates: int = 0
    deletions: int = 0
    merges: int = 0
    splits: int = 0
    orphan_updates: int = 0

    def register_message(self, message: Message) -> None:
        self.messages_received += 1
        self.bytes_received += message.payload_bytes()


class Coordinator:
    """The coordinator site of the CluDistream architecture.

    Parameters
    ----------
    config:
        Tuning knobs; defaults follow the paper (``K = 5`` global
        components, simplex merge fit).
    rng:
        Randomness for the Monte-Carlo accuracy-loss estimates.
    observer:
        Optional :class:`~repro.obs.observer.Observer` receiving
        ``coord.*`` trace events (message handling, Algorithm 2
        merge/split decisions with their ``M_merge`` scores) and the
        ``profile.merge_fit`` simplex timer.
    history:
        Optional :class:`~repro.obs.history.ModelHistory` recording a
        pyramidally-retained snapshot of the global model after every
        handled message (tick = ``message.time``, the originating
        site's stream position; interleaved site clocks are safe
        because out-of-order ticks are ignored).  ``None`` (default)
        records nothing and keeps state byte-identical.
    """

    def __init__(
        self,
        config: CoordinatorConfig | None = None,
        rng: np.random.Generator | None = None,
        observer: Observer | None = None,
        history=None,
    ) -> None:
        self.config = config or CoordinatorConfig()
        self._rng = rng if rng is not None else np.random.default_rng(7)
        self._obs = ensure_observer(observer)
        #: ``(site_id, model_id) -> (mixture, count)`` as last reported.
        self._site_models: dict[tuple[int, int], tuple[GaussianMixture, int]] = {}
        self._clusters: dict[int, GlobalCluster] = {}
        self._cluster_ids = itertools.count()
        self.stats = CoordinatorStats()
        self.history = history
        if history is not None:
            if history.scope is None:
                history.scope = "coordinator"
            if history.observer is None:
                history.observer = self._obs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def clusters(self) -> tuple[GlobalCluster, ...]:
        """Current global clusters (fathers with their leaves)."""
        return tuple(self._clusters.values())

    @property
    def n_components(self) -> int:
        """Number of global clusters."""
        return len(self._clusters)

    @property
    def site_models(self) -> dict[tuple[int, int], tuple[GaussianMixture, int]]:
        """Read-only view of the registered site models."""
        return dict(self._site_models)

    def global_mixture(self) -> GaussianMixture:
        """Compact global model: one father component per cluster."""
        if not self._clusters:
            raise ValueError("coordinator has received no models yet")
        pairs = []
        for cluster in self._clusters.values():
            if cluster.father is None:
                cluster.refresh_father()
            pairs.append((cluster.weight, cluster.father))
        return GaussianMixture.from_pairs(pairs)

    def landmark_mixture(self) -> GaussianMixture:
        """Global landmark model: all reported site models, ever.

        The union of every registered ``(site, model)`` mixture weighted
        by its record counter -- the coordinator-side analogue of
        :func:`repro.windows.landmark.landmark_mixture`.  Unlike
        :meth:`global_mixture` (which reflects the merged *current*
        tree), this spans everything the sites have reported since the
        landmark, including models whose distribution has long passed.
        """
        combined: GaussianMixture | None = None
        combined_mass = 0.0
        for mixture, count in self._site_models.values():
            if count <= 0:
                continue
            if combined is None:
                combined = mixture
                combined_mass = float(count)
            else:
                combined = combined.union(
                    mixture, combined_mass, float(count)
                )
                combined_mass += float(count)
        if combined is None:
            raise ValueError("coordinator has received no models yet")
        return combined

    def full_mixture(self) -> GaussianMixture:
        """The naive ``r·K`` union of every leaf (section 5.2's baseline)."""
        leaves = [leaf for cluster in self._clusters.values() for leaf in cluster.leaves]
        if not leaves:
            raise ValueError("coordinator has received no models yet")
        weights = np.array([leaf.weight for leaf in leaves])
        return GaussianMixture(weights, tuple(leaf.gaussian for leaf in leaves))

    def memory_bytes(self) -> int:
        """Bytes held in the tree (leaves + fathers + counters)."""
        total = 0
        for cluster in self._clusters.values():
            if cluster.father is not None:
                total += cluster.father.payload_bytes()
            total += sum(leaf.gaussian.payload_bytes() + 8 for leaf in cluster.leaves)
        return total

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        """Dispatch one incoming site message."""
        self.stats.register_message(message)
        # The coord.update span adopts whatever remote parent the
        # transport activated (the originating site's chunk-test span),
        # and parents any merge/split spans the update triggers.
        with self._obs.span(
            "coord.update",
            site=message.site_id,
            kind=type(message).__name__,
        ):
            if isinstance(message, ModelUpdateMessage):
                self._on_model_update(message)
            elif isinstance(message, WeightUpdateMessage):
                self._on_weight_update(message)
            elif isinstance(message, DeletionMessage):
                self._on_deletion(message)
            else:
                raise TypeError(
                    f"unsupported message type {type(message).__name__}"
                )
        if self.history is not None:
            from repro.obs.history import coordinator_history_payload

            self.history.observe(
                message.time, coordinator_history_payload(self)
            )

    def _on_model_update(self, message: ModelUpdateMessage) -> None:
        """Register a new site model and insert its component leaves."""
        self.stats.model_updates += 1
        if self._obs.enabled:
            self._obs.inc("coord.model_updates", site=message.site_id)
            self._obs.event(
                "coord.model_update",
                site=message.site_id,
                model=message.model_id,
                components=message.mixture.n_components,
                count=message.count,
            )
        key = (message.site_id, message.model_id)
        self._remove_leaves(key)
        self._site_models[key] = (message.mixture, message.count)
        for index, (weight, component) in enumerate(message.mixture):
            if weight <= 0.0:
                continue
            leaf = Leaf(
                site_id=message.site_id,
                model_id=message.model_id,
                component_index=index,
                gaussian=component,
                weight=weight * message.count,
            )
            self._attach(leaf)
        self._enforce_component_cap()
        self.on_updates(message.site_id)

    def _on_weight_update(self, message: WeightUpdateMessage) -> None:
        """Scale the leaves of a model whose counter moved."""
        self.stats.weight_updates += 1
        key = (message.site_id, message.model_id)
        if self._obs.enabled:
            self._obs.inc("coord.weight_updates", site=message.site_id)
            self._obs.event(
                "coord.weight_update",
                site=message.site_id,
                model=message.model_id,
                count_delta=message.count_delta,
                orphan=key not in self._site_models,
            )
        if key not in self._site_models:
            if self.config.tolerate_loss:
                self.stats.orphan_updates += 1
                return
            raise KeyError(f"weight update for unknown model {key}")
        mixture, count = self._site_models[key]
        new_count = count + message.count_delta
        if new_count <= 0:
            self._drop_model(key)
            return
        self._site_models[key] = (mixture, new_count)
        for leaf in self._leaves_of(key):
            index = leaf.component_index
            leaf.weight = float(mixture.weights[index]) * new_count
        self._refresh_fathers()
        self.on_updates(message.site_id)

    def _on_deletion(self, message: DeletionMessage) -> None:
        """Sliding-window deletion: negative weight for an expired model."""
        self.stats.deletions += 1
        if self._obs.enabled:
            self._obs.inc("coord.deletions", site=message.site_id)
            self._obs.event(
                "coord.deletion",
                site=message.site_id,
                model=message.model_id,
                count_delta=message.count_delta,
            )
        key = (message.site_id, message.model_id)
        if key not in self._site_models:
            return  # already expired
        mixture, count = self._site_models[key]
        new_count = count - message.count_delta
        if new_count <= 0:
            self._drop_model(key)
            return
        self._site_models[key] = (mixture, new_count)
        for leaf in self._leaves_of(key):
            leaf.weight = float(mixture.weights[leaf.component_index]) * new_count
        self._refresh_fathers()

    # ------------------------------------------------------------------
    # Algorithm 2: split / re-merge on updates
    # ------------------------------------------------------------------
    def on_updates(self, site_id: int) -> int:
        """Algorithm 2 (``OnUpdates``) for one updated remote site.

        For each leaf of the site, compare ``M_split`` against the
        reciprocal of the stored ``M_remerge``; leaves that drifted away
        from their father are split out and re-merged into the sibling
        cluster with the largest ``M_remerge``.

        Returns the number of splits performed.
        """
        split_leaves: list[Leaf] = []
        for cluster in list(self._clusters.values()):
            if len(cluster.leaves) < 2:
                continue
            if cluster.father is None:
                cluster.refresh_father()
            for leaf in list(cluster.leaves):
                if leaf.site_id != site_id:
                    continue
                score = m_split(leaf.gaussian, cluster.leaf_mixture())
                if np.isfinite(leaf.remerge_score) and score > (
                    1.0 / leaf.remerge_score
                ):
                    with self._obs.span(
                        "coord.split",
                        site=leaf.site_id,
                        model=leaf.model_id,
                        cluster=cluster.cluster_id,
                    ):
                        cluster.leaves.remove(leaf)
                        split_leaves.append(leaf)
                        self.stats.splits += 1
                        if self._obs.enabled:
                            self._obs.inc("coord.splits")
                            self._obs.event(
                                "coord.split",
                                site=leaf.site_id,
                                model=leaf.model_id,
                                component=leaf.component_index,
                                cluster=cluster.cluster_id,
                                m_split=float(score),
                            )
            if cluster.leaves:
                cluster.refresh_father()
            else:
                del self._clusters[cluster.cluster_id]
        for leaf in split_leaves:
            self._attach(leaf)
        if split_leaves:
            self._enforce_component_cap()
        return len(split_leaves)

    # ------------------------------------------------------------------
    # Tree maintenance
    # ------------------------------------------------------------------
    def _leaves_of(self, key: tuple[int, int]) -> list[Leaf]:
        return [
            leaf
            for cluster in self._clusters.values()
            for leaf in cluster.leaves
            if (leaf.site_id, leaf.model_id) == key
        ]

    def _remove_leaves(self, key: tuple[int, int]) -> None:
        for cluster_id, cluster in list(self._clusters.items()):
            cluster.leaves = [
                leaf
                for leaf in cluster.leaves
                if (leaf.site_id, leaf.model_id) != key
            ]
            if not cluster.leaves:
                del self._clusters[cluster_id]
            else:
                cluster.father = None
        self._refresh_fathers()

    def _drop_model(self, key: tuple[int, int]) -> None:
        self._site_models.pop(key, None)
        self._remove_leaves(key)

    def _candidate_clusters(
        self, mean: np.ndarray
    ) -> list[GlobalCluster]:
        """Clusters to score exactly: all of them, or the KD-tree's
        nearest ``index_candidates`` by father mean."""
        clusters = list(self._clusters.values())
        for cluster in clusters:
            if cluster.father is None:
                cluster.refresh_father()
        budget = self.config.index_candidates
        if budget is None or len(clusters) <= budget:
            return clusters
        from repro.numerics.kdtree import KDTree

        tree = KDTree(
            np.stack([cluster.father.mean for cluster in clusters]),
            clusters,
        )
        return [cluster for _, cluster in tree.nearest(mean, k=budget)]

    def _attach(self, leaf: Leaf) -> None:
        """Home a leaf: nearest father within threshold, else new cluster."""
        best_cluster: GlobalCluster | None = None
        best_distance = np.inf
        for cluster in self._candidate_clusters(leaf.gaussian.mean):
            distance = leaf.gaussian.symmetric_mahalanobis_sq(cluster.father)
            if distance < best_distance:
                best_distance = distance
                best_cluster = cluster
        if best_cluster is not None and best_distance <= self.config.attach_threshold:
            best_cluster.leaves.append(leaf)
            leaf.remerge_score = (
                1.0 / best_distance if best_distance > 0.0 else np.inf
            )
            best_cluster.refresh_father()
        else:
            cluster = GlobalCluster(cluster_id=next(self._cluster_ids))
            cluster.leaves.append(leaf)
            leaf.remerge_score = np.inf
            cluster.refresh_father()
            self._clusters[cluster.cluster_id] = cluster

    def _refresh_fathers(self) -> None:
        for cluster in self._clusters.values():
            if cluster.leaves:
                cluster.refresh_father()

    def _enforce_component_cap(self) -> None:
        """Greedy merging until at most ``max_components`` clusters remain.

        Each step merges the cluster pair with the largest ``M_merge``
        between fathers, fitting the merged father with the configured
        method (simplex or moment matching).
        """
        cap = self.config.max_components
        if cap is None:
            return
        while len(self._clusters) > cap:
            best_pair = self._best_merge_pair()
            assert best_pair is not None
            self._merge_clusters(*best_pair)

    def _best_merge_pair(self) -> tuple[int, int] | None:
        """The cluster pair with the largest ``M_merge``.

        With ``index_candidates`` set, each cluster is only scored
        against its KD-tree neighbourhood instead of every other
        cluster.
        """
        ids = list(self._clusters)
        if len(ids) < 2:
            return None
        budget = self.config.index_candidates
        best_pair: tuple[int, int] | None = None
        best_score = -np.inf
        if budget is not None and len(ids) > budget + 1:
            from repro.numerics.kdtree import KDTree

            for cluster in self._clusters.values():
                if cluster.father is None:
                    cluster.refresh_father()
            tree = KDTree(
                np.stack(
                    [self._clusters[i].father.mean for i in ids]
                ),
                ids,
            )
            for a_id in ids:
                neighbours = tree.nearest(
                    self._clusters[a_id].father.mean, k=budget + 1
                )
                for _, b_id in neighbours:
                    if b_id == a_id:
                        continue
                    score = m_merge(
                        self._clusters[a_id].father,
                        self._clusters[b_id].father,
                    )
                    if score > best_score:
                        best_score = score
                        best_pair = (min(a_id, b_id), max(a_id, b_id))
            return best_pair
        for a_pos, a_id in enumerate(ids):
            for b_id in ids[a_pos + 1 :]:
                score = m_merge(
                    self._clusters[a_id].father,
                    self._clusters[b_id].father,
                )
                if score > best_score:
                    best_score = score
                    best_pair = (a_id, b_id)
        return best_pair

    def _merge_clusters(self, id_a: int, id_b: int) -> None:
        """Merge two clusters; the father is fitted per §5.2.1."""
        with self._obs.span("coord.merge", a=id_a, b=id_b):
            cluster_a = self._clusters.pop(id_a)
            cluster_b = self._clusters.pop(id_b)
            with self._obs.timer("profile.merge_fit"):
                fit = fit_merged_component(
                    cluster_a.weight,
                    cluster_a.father,
                    cluster_b.weight,
                    cluster_b.father,
                    n_samples=self.config.merge_samples,
                    rng=self._rng,
                    method=self.config.merge_method,
                    observer=self._obs,
                )
            merged = GlobalCluster(cluster_id=next(self._cluster_ids))
            merged.leaves = cluster_a.leaves + cluster_b.leaves
            merged.father = fit.component
            for leaf in merged.leaves:
                distance = leaf.gaussian.symmetric_mahalanobis_sq(merged.father)
                leaf.remerge_score = 1.0 / distance if distance > 0.0 else np.inf
            self._clusters[merged.cluster_id] = merged
            self.stats.merges += 1
            if self._obs.enabled:
                self._obs.inc("coord.merges")
                self._obs.event(
                    "coord.merge",
                    a=id_a,
                    b=id_b,
                    merged=merged.cluster_id,
                    m_merge=float(m_merge(cluster_a.father, cluster_b.father)),
                    accuracy_loss=float(fit.loss),
                    leaves=len(merged.leaves),
                )

    def __repr__(self) -> str:
        return (
            f"Coordinator(clusters={self.n_components}, "
            f"site_models={len(self._site_models)}, "
            f"messages={self.stats.messages_received})"
        )
