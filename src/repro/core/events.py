"""The event table recording the evolving behaviour of a stream.

Each remote site keeps a table of ``<start time, end time, model ID>``
triplets (section 5.1): whenever the test-and-cluster strategy decides a
new distribution has emerged, the span of chunks the outgoing model
covered is closed off as one event entry.

Section 7 builds *evolving analysis* on top of this table: a user asks
for a start time and a window, and the table answers with the sequence
of models active inside it.  Because entries are chunk-aligned, answers
carry an absolute error of half a chunk
(:func:`repro.core.chunking.window_error_bound`).

Times here are measured in *records* (update counts), matching the
paper's x-axes; the simulation layer maps record counts to virtual
seconds.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["EventRecord", "EventTable"]


@dataclass(frozen=True)
class EventRecord:
    """One event-table entry: a model's reign over part of the stream.

    Attributes
    ----------
    start:
        Index (in records) of the first record the model covered,
        inclusive.
    end:
        Index one past the last covered record (exclusive), so
        ``end - start`` is the number of records explained.
    model_id:
        Identifier of the archived model in the site's model list.
    """

    start: int
    end: int
    model_id: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("event start must be non-negative")
        if self.end <= self.start:
            raise ValueError("event end must exceed its start")

    @property
    def length(self) -> int:
        """Number of records covered by this event."""
        return self.end - self.start

    def overlaps(self, start: int, end: int) -> bool:
        """Whether this event intersects the half-open window ``[start, end)``."""
        return self.start < end and start < self.end


class EventTable:
    """Append-only, time-ordered list of :class:`EventRecord` entries.

    The table enforces the invariant that events are contiguous and
    non-overlapping: each appended event must start exactly where the
    previous one ended.  That property is what makes window queries
    exact up to chunk granularity.

    Parameters
    ----------
    max_events:
        Optional retention bound: beyond it the *oldest* entries are
        discarded (``evictions`` counts them).  The surviving records
        still tile ``[retained_start, horizon)``; queries before
        ``retained_start`` answer ``None`` / empty, exactly as they do
        past the horizon.  ``None`` (the default) keeps every entry --
        the pre-retention behaviour.
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(
                f"max_events must be at least 1, got {max_events}"
            )
        self._records: list[EventRecord] = []
        self.max_events = max_events
        #: Entries discarded by the retention bound.
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> EventRecord:
        return self._records[index]

    @property
    def records(self) -> Sequence[EventRecord]:
        """Immutable view of the stored events."""
        return tuple(self._records)

    @property
    def horizon(self) -> int:
        """Index one past the last recorded record (0 when empty)."""
        return self._records[-1].end if self._records else 0

    @property
    def retained_start(self) -> int:
        """First record index still covered (> 0 after evictions)."""
        return self._records[0].start if self._records else 0

    def append(self, start: int, end: int, model_id: int) -> EventRecord:
        """Close off a model's span and store it.

        An empty table accepts any valid starting index (a site resumed
        from a retention-trimmed checkpoint starts mid-stream); once
        non-empty, events must tile the stream.

        Raises
        ------
        ValueError
            If the new event does not start exactly at the current
            horizon (events must tile the stream).
        """
        record = EventRecord(start=start, end=end, model_id=model_id)
        if self._records and record.start != self.horizon:
            raise ValueError(
                f"event must start at horizon {self.horizon}, got {record.start}"
            )
        self._records.append(record)
        if self.max_events is not None and len(self._records) > self.max_events:
            excess = len(self._records) - self.max_events
            del self._records[:excess]
            self.evictions += excess
        return record

    def model_at(self, time: int) -> int | None:
        """Model ID active at record index ``time`` (``None`` if unknown).

        Only *closed* events are visible; the model currently in force
        has no entry yet, mirroring Algorithm 1 where an entry is
        appended only when the model is superseded.
        """
        if time < 0 or time >= self.horizon:
            return None
        starts = [record.start for record in self._records]
        index = bisect_right(starts, time) - 1
        if index < 0:
            # Before the retained range (older entries were evicted).
            return None
        record = self._records[index]
        return record.model_id if record.start <= time < record.end else None

    def window(self, start: int, length: int) -> list[EventRecord]:
        """Evolving-analysis query (section 7).

        Parameters
        ----------
        start:
            Window start, in records.
        length:
            Window size, in records.

        Returns
        -------
        list[EventRecord]
            The events intersecting ``[start, start + length)``, in
            time order -- the "series of Gaussian mixture models" the
            paper returns to reflect the evolution inside the window.
        """
        if length <= 0:
            raise ValueError(
                f"window length must be positive, got {length}"
            )
        if start < 0:
            raise ValueError(
                f"window start must be non-negative, got {start}"
            )
        end = start + length
        return [record for record in self._records if record.overlaps(start, end)]

    def between(self, t0: int, t1: int) -> list[EventRecord]:
        """The events intersecting the half-open range ``[t0, t1)``.

        The range form of :meth:`window`; the endpoints are validated
        the same way -- a reversed or negative range raises instead of
        silently answering with an empty view.

        Raises
        ------
        ValueError
            If ``t0`` is negative or the range is reversed
            (``t1 < t0``); the message names the offending values.
        """
        if t0 < 0:
            raise ValueError(
                f"window start must be non-negative, got {t0}"
            )
        if t1 < t0:
            raise ValueError(
                f"reversed window [{t0}, {t1}): end precedes start"
            )
        return [record for record in self._records if record.overlaps(t0, t1)]

    def change_points(self) -> list[int]:
        """Record indices at which the underlying distribution changed.

        The boundary between two consecutive events is exactly where the
        test-and-cluster strategy declared a new distribution -- the
        change-detection signal of section 7.
        """
        return [record.end for record in self._records[:-1]] + (
            [self._records[-1].end] if self._records else []
        )

    def __repr__(self) -> str:
        return f"EventTable(n_events={len(self._records)}, horizon={self.horizon})"
