"""Component merge/split criteria and the merged-component fit (§5.2).

The coordinator cannot see raw data, so it replaces SMEM's data-driven
merge criterion::

    J_merge(i, j) = Σ_x Pr(i|x) · Pr(j|x)

with the synopsis-only Mahalanobis criterion (eq. 5)::

    M_merge(i, j) = 1 / ((μ_i - μ_j)ᵀ (Σ_i⁻¹ + Σ_j⁻¹) (μ_i - μ_j))

Figure 1 of the paper argues the two rank component pairs almost
identically; :func:`j_merge` and :func:`m_merge` are both implemented so
the benchmark can reproduce that comparison.

After choosing the pair with the largest ``M_merge``, the merged
component ``i'`` is fitted by minimising the L1 accuracy loss::

    l(x) = ∫ | w_i p(x|i) + w_j p(x|j) - (w_i + w_j) p(x|i') | dx

with the downhill-simplex method (the paper's choice, since ``l`` has no
usable derivatives).  The simplex search runs over the mean and a
log-Cholesky parameterisation of the covariance -- log-diagonal entries
keep every candidate positive definite -- and starts from the exact
moment-matched Gaussian, which is also exposed as the cheap ablation
baseline.

The split-side criteria of Algorithm 2 (eq. 6) live here too:
``M_split(i, Mix)`` compares a component against its father mixture's
pooled Gaussian, and ``M_remerge = 1 / M_split`` scores candidate new
homes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.numerics.integrate import monte_carlo_l1
from repro.numerics.simplex import nelder_mead
from repro.obs.observer import Observer, ensure_observer

__all__ = [
    "MergeFit",
    "accuracy_loss",
    "fit_merged_component",
    "j_merge",
    "m_merge",
    "m_remerge",
    "m_split",
    "normalize_scores",
    "pairwise_m_merge",
    "rank_merge_pairs",
]

#: ``M_merge`` of components with (numerically) identical means.  The
#: reciprocal distance diverges; we cap it so ranking stays total.
MERGE_SCORE_CAP = 1e12


# ----------------------------------------------------------------------
# Pairwise merge criteria
# ----------------------------------------------------------------------
def j_merge(
    mixture: GaussianMixture, i: int, j: int, data: np.ndarray
) -> float:
    """SMEM's data-driven criterion ``Σ_x Pr(i|x) Pr(j|x)``.

    Needs raw records, so the coordinator never uses it in production;
    it exists as the reference for the Figure 1 comparison.
    """
    if i == j:
        raise ValueError("j_merge is defined for distinct components")
    posterior = mixture.posterior(data)
    return float(np.sum(posterior[:, i] * posterior[:, j]))


def m_merge(component_i: Gaussian, component_j: Gaussian) -> float:
    """Synopsis-only merge criterion of eq. 5 (larger = merge sooner)."""
    distance = component_i.symmetric_mahalanobis_sq(component_j)
    if distance <= 1.0 / MERGE_SCORE_CAP:
        return MERGE_SCORE_CAP
    return 1.0 / distance


def m_split(component: Gaussian, mixture: GaussianMixture) -> float:
    """Split criterion of eq. 6 against the mixture's pooled Gaussian.

    A large value means the component sits far (in symmetrised
    Mahalanobis terms) from its father mixture and should be split out.
    """
    return component.symmetric_mahalanobis_sq(mixture.pooled_gaussian())


def m_remerge(component: Gaussian, mixture: GaussianMixture) -> float:
    """Re-merge criterion: reciprocal of :func:`m_split`.

    Algorithm 2 merges a split component into the sibling mixture with
    the largest ``M_remerge`` (equivalently the smallest Mahalanobis
    distance).
    """
    distance = m_split(component, mixture)
    if distance <= 1.0 / MERGE_SCORE_CAP:
        return MERGE_SCORE_CAP
    return 1.0 / distance


def pairwise_m_merge(mixture: GaussianMixture) -> np.ndarray:
    """Upper-triangular matrix of ``M_merge`` scores for all pairs.

    Entry ``[i, j]`` with ``i < j`` holds the score; the lower triangle
    and diagonal are zero.
    """
    k = mixture.n_components
    scores = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            scores[i, j] = m_merge(mixture.components[i], mixture.components[j])
    return scores


def rank_merge_pairs(mixture: GaussianMixture) -> list[tuple[int, int, float]]:
    """All component pairs sorted by descending ``M_merge``.

    Returns ``(i, j, score)`` triples with ``i < j`` -- the paper's "28
    combinations" for ``K = 8``.
    """
    scores = pairwise_m_merge(mixture)
    pairs = [
        (i, j, float(scores[i, j]))
        for i in range(mixture.n_components)
        for j in range(i + 1, mixture.n_components)
    ]
    pairs.sort(key=lambda item: item[2], reverse=True)
    return pairs


def normalize_scores(scores: Sequence[float]) -> np.ndarray:
    """Min-max normalisation used in the Figure 1 comparison.

    ``(s - min) / (max - min)``; a constant score list maps to zeros.
    """
    arr = np.asarray(scores, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot normalise an empty score list")
    span = float(arr.max() - arr.min())
    if span <= 0.0:
        return np.zeros_like(arr)
    return (arr - arr.min()) / span


# ----------------------------------------------------------------------
# Accuracy loss and the merged-component fit
# ----------------------------------------------------------------------
def _two_component_density(
    weight_i: float, comp_i: Gaussian, weight_j: float, comp_j: Gaussian
):
    """Unnormalised density ``w_i p(x|i) + w_j p(x|j)`` as a callable."""

    def density(points: np.ndarray) -> np.ndarray:
        return weight_i * comp_i.pdf(points) + weight_j * comp_j.pdf(points)

    return density


def accuracy_loss(
    weight_i: float,
    comp_i: Gaussian,
    weight_j: float,
    comp_j: Gaussian,
    merged: Gaussian,
    n_samples: int = 2048,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of the paper's ``l(x)`` accuracy loss.

    The proposal is the normalised two-component sub-mixture, which by
    construction covers the support of both sides of the integrand.
    """
    if weight_i <= 0.0 or weight_j <= 0.0:
        raise ValueError("component weights must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    total = weight_i + weight_j
    proposal = GaussianMixture(
        np.array([weight_i / total, weight_j / total]), (comp_i, comp_j)
    )

    pair_density = _two_component_density(weight_i, comp_i, weight_j, comp_j)

    def merged_density(points: np.ndarray) -> np.ndarray:
        return total * merged.pdf(points)

    return monte_carlo_l1(
        pair_density,
        merged_density,
        sampler=lambda n, gen: proposal.sample(n, gen)[0],
        proposal_density=proposal.pdf,
        n_samples=n_samples,
        rng=rng,
    )


def _pack_parameters(gaussian: Gaussian) -> np.ndarray:
    """Mean + log-Cholesky vectorisation of a Gaussian.

    The diagonal of the Cholesky factor is stored in log space so every
    parameter vector decodes to a valid (positive definite) covariance.
    """
    d = gaussian.dim
    chol = np.linalg.cholesky(gaussian.covariance)
    log_diag = np.log(np.diag(chol))
    lower = chol[np.tril_indices(d, k=-1)]
    return np.concatenate([gaussian.mean, log_diag, lower])


def _unpack_parameters(theta: np.ndarray, dim: int) -> Gaussian:
    """Inverse of :func:`_pack_parameters`."""
    mean = theta[:dim]
    log_diag = theta[dim : 2 * dim]
    lower = theta[2 * dim :]
    chol = np.zeros((dim, dim))
    chol[np.diag_indices(dim)] = np.exp(np.clip(log_diag, -30.0, 30.0))
    chol[np.tril_indices(dim, k=-1)] = lower
    return Gaussian(mean, chol @ chol.T)


@dataclass(frozen=True)
class MergeFit:
    """Result of fitting a merged component ``i'``.

    Attributes
    ----------
    component:
        The fitted father component.
    weight:
        Its weight ``w_i + w_j``.
    loss:
        Final L1 accuracy-loss estimate.
    moment_loss:
        Loss of the moment-matched initial guess (the ablation
        baseline); ``loss <= moment_loss`` up to Monte-Carlo noise.
    iterations:
        Simplex iterations spent.
    """

    component: Gaussian
    weight: float
    loss: float
    moment_loss: float
    iterations: int


def fit_merged_component(
    weight_i: float,
    comp_i: Gaussian,
    weight_j: float,
    comp_j: Gaussian,
    n_samples: int = 2048,
    max_iter: int = 120,
    rng: np.random.Generator | None = None,
    method: str = "simplex",
    observer: Observer | None = None,
) -> MergeFit:
    """Fit the father component of a merge by minimising ``l(x)``.

    Parameters
    ----------
    weight_i / comp_i / weight_j / comp_j:
        The two components being merged, with their mixture weights.
    n_samples:
        Monte-Carlo budget per loss evaluation.  A common random-number
        sample set is drawn once and reused across simplex evaluations
        so the objective is deterministic (otherwise the simplex chases
        noise).
    max_iter:
        Simplex iteration budget.
    rng:
        Randomness for the loss sample set.
    method:
        ``"simplex"`` (the paper's downhill simplex fit) or
        ``"moment"`` (the exact moment-matching ablation, no search).
    observer:
        Optional :class:`~repro.obs.observer.Observer`: the simplex
        search is timed into the ``profile.simplex`` histogram and its
        iteration count lands in the ``merge.simplex_iterations``
        counter.

    Returns
    -------
    MergeFit
    """
    if method not in ("simplex", "moment"):
        raise ValueError(f"unknown merge fit method {method!r}")
    obs = ensure_observer(observer)
    rng = rng if rng is not None else np.random.default_rng(0)
    total = weight_i + weight_j
    moment = comp_i.merge_moments(comp_j, weight_i, weight_j)

    # Common random numbers: fix the proposal sample once.
    proposal = GaussianMixture(
        np.array([weight_i / total, weight_j / total]), (comp_i, comp_j)
    )
    samples, _ = proposal.sample(n_samples, rng)
    proposal_values = proposal.pdf(samples)
    pair_values = _two_component_density(weight_i, comp_i, weight_j, comp_j)(
        samples
    )

    def loss_of(candidate: Gaussian) -> float:
        merged_values = total * candidate.pdf(samples)
        return float(np.mean(np.abs(pair_values - merged_values) / proposal_values))

    moment_loss = loss_of(moment)
    if method == "moment":
        return MergeFit(
            component=moment,
            weight=total,
            loss=moment_loss,
            moment_loss=moment_loss,
            iterations=0,
        )

    dim = comp_i.dim

    def objective(theta: np.ndarray) -> float:
        try:
            candidate = _unpack_parameters(theta, dim)
        except (ValueError, np.linalg.LinAlgError):
            return np.inf
        return loss_of(candidate)

    with obs.timer("profile.simplex"):
        result = nelder_mead(
            objective,
            _pack_parameters(moment),
            max_iter=max_iter,
            xtol=1e-5,
            ftol=1e-7,
        )
    if obs.enabled:
        obs.inc("merge.simplex_iterations", result.iterations)
    fitted = _unpack_parameters(result.x, dim)
    fitted_loss = loss_of(fitted)
    if fitted_loss > moment_loss:
        # The search never accepts a candidate worse than its seed.
        fitted, fitted_loss = moment, moment_loss
    return MergeFit(
        component=fitted,
        weight=total,
        loss=fitted_loss,
        moment_loss=moment_loss,
        iterations=result.iterations,
    )
