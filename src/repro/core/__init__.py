"""Core CluDistream algorithms.

This package holds the paper's primary contribution:

* the Gaussian mixture machinery (:mod:`repro.core.gaussian`,
  :mod:`repro.core.mixture`),
* the classical EM trainer of section 3.2 (:mod:`repro.core.em`),
* the chunk-size theory of Theorems 1-2 (:mod:`repro.core.chunking`,
  :mod:`repro.core.testing`),
* remote-site processing, Algorithm 1 (:mod:`repro.core.remote`),
* coordinator merge/split maintenance, Algorithm 2
  (:mod:`repro.core.coordinator`, :mod:`repro.core.merging`),
* the event table driving evolving analysis (:mod:`repro.core.events`),
  and
* the assembled distributed system (:mod:`repro.core.cludistream`).
"""

from repro.core.chunking import chunk_size, iter_chunks
from repro.core.scoring import AnomalyDetector, anomaly_scores, membership_report
from repro.core.selection import select_k
from repro.core.serde import (
    CodecConfig,
    CodecError,
    CodecNegotiationError,
    CodecStats,
    WireCodec,
    available_codecs,
    decode_message,
    encode_message,
    get_codec,
    register_codec,
)
from repro.core.cludistream import CluDistream, CluDistreamConfig
from repro.core.coordinator import Coordinator, CoordinatorConfig
from repro.core.em import EMConfig, EMResult, fit_em
from repro.core.events import EventRecord, EventTable
from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.core.remote import RemoteSite, RemoteSiteConfig
from repro.core.testing import FitTestResult, average_log_likelihood, fit_test

__all__ = [
    "AnomalyDetector",
    "CluDistream",
    "CluDistreamConfig",
    "CodecConfig",
    "CodecError",
    "CodecNegotiationError",
    "CodecStats",
    "Coordinator",
    "CoordinatorConfig",
    "EMConfig",
    "EMResult",
    "EventRecord",
    "EventTable",
    "FitTestResult",
    "Gaussian",
    "GaussianMixture",
    "RemoteSite",
    "RemoteSiteConfig",
    "WireCodec",
    "anomaly_scores",
    "available_codecs",
    "average_log_likelihood",
    "chunk_size",
    "decode_message",
    "encode_message",
    "fit_em",
    "fit_test",
    "get_codec",
    "iter_chunks",
    "membership_report",
    "register_codec",
    "select_k",
]
