"""Sufficient statistics for Gaussian mixtures (the incremental-EM layer).

Every quantity EM ever estimates is a function of three per-component
accumulators over responsibility-weighted records::

    N_j  = Σ_n r_nj              (mass)
    S_j  = Σ_n r_nj x_n          (first moment,  shape (d,))
    O_j  = Σ_n r_nj x_n x_nᵀ     (second moment, shape (d, d) or (d,))

:class:`SufficientStats` is the immutable value object holding the
stacked ``(N, S, O)`` of all ``K`` components.  It supports the algebra
the refit ladder needs -- accumulate from responsibilities, **merge**
(streams of chunks), **scale** (decay / forgetting), **blend** (the
Cappé–Moulines stepwise update) -- and exact **materialization** back
into a :class:`~repro.core.mixture.GaussianMixture`::

    w_j = N_j / Σ_i N_i,   μ_j = S_j / N_j,   Σ_j = O_j / N_j − μ_j μ_jᵀ

Materialization is the moment-form twin of the batch trainer's M-step
(:func:`repro.core.em._m_step` keeps the centered two-pass formula for
bitwise stability of the default path); property tests pin the two to
≤ 1e-10 agreement, including near-singular covariances and diagonal
mode.  Diagonal mode stores ``O_j`` as the ``d`` per-axis second
moments, matching Theorem 3's ``d``-parameter memory trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture

__all__ = ["SufficientStats"]

#: Mass below which a component's parameters cannot be materialized.
MIN_MASS = 1e-12


@dataclass(frozen=True)
class SufficientStats:
    """Immutable per-component ``(N, Σx, Σxx)`` accumulators.

    Parameters
    ----------
    counts:
        Responsibility masses ``N_j``, shape ``(K,)``.
    sums:
        First moments ``Σ r x``, shape ``(K, d)``.
    outers:
        Second moments ``Σ r x xᵀ``: shape ``(K, d, d)`` for full
        covariances, ``(K, d)`` (per-axis ``Σ r x²``) when ``diagonal``.
    diagonal:
        Whether the second moments are stored (and materialized)
        diagonally.
    """

    counts: np.ndarray
    sums: np.ndarray
    outers: np.ndarray
    diagonal: bool = False

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=float).ravel()
        sums = np.asarray(self.sums, dtype=float)
        outers = np.asarray(self.outers, dtype=float)
        k = counts.size
        if sums.ndim != 2 or sums.shape[0] != k:
            raise ValueError(
                f"sums shape {sums.shape} does not match {k} components"
            )
        d = sums.shape[1]
        expected = (k, d) if self.diagonal else (k, d, d)
        if outers.shape != expected:
            raise ValueError(
                f"outers shape {outers.shape} does not match {expected}"
            )
        if np.any(counts < 0.0) or not np.all(np.isfinite(counts)):
            raise ValueError("counts must be finite and non-negative")
        object.__setattr__(self, "counts", counts)
        object.__setattr__(self, "sums", sums)
        object.__setattr__(self, "outers", outers)
        for array in (self.counts, self.sums, self.outers):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, k: int, dim: int, diagonal: bool = False) -> "SufficientStats":
        """Empty accumulators for ``k`` components in ``dim`` dimensions."""
        if k < 1 or dim < 1:
            raise ValueError("k and dim must be positive")
        shape = (k, dim) if diagonal else (k, dim, dim)
        return cls(np.zeros(k), np.zeros((k, dim)), np.zeros(shape), diagonal)

    @classmethod
    def from_responsibilities(
        cls,
        data: np.ndarray,
        responsibilities: np.ndarray,
        diagonal: bool = False,
    ) -> "SufficientStats":
        """Accumulate one chunk under a fixed responsibility matrix.

        ``data`` has shape ``(n, d)``, ``responsibilities`` shape
        ``(n, K)`` with rows summing to one (an E-step output).
        """
        data = np.atleast_2d(np.asarray(data, dtype=float))
        resp = np.atleast_2d(np.asarray(responsibilities, dtype=float))
        if resp.shape[0] != data.shape[0]:
            raise ValueError(
                f"{resp.shape[0]} responsibility rows for "
                f"{data.shape[0]} records"
            )
        counts = resp.sum(axis=0)
        sums = resp.T @ data
        if diagonal:
            outers = resp.T @ (data**2)
        else:
            outers = np.einsum("nk,ni,nj->kij", resp, data, data)
        return cls(counts, sums, outers, diagonal)

    @classmethod
    def from_mixture(
        cls, mixture: GaussianMixture, mass: float, diagonal: bool = False
    ) -> "SufficientStats":
        """Synthesize the stats a mixture would have produced.

        The exact inverse of :meth:`materialize` (minus the ridge):
        ``N_j = w_j · mass``, ``S_j = N_j μ_j``,
        ``O_j = N_j (Σ_j + μ_j μ_jᵀ)``.  This is how the refit ladder
        warm-starts incremental EM from a current or archived model that
        never tracked stats -- the model itself *is* the summary of the
        records it absorbed, ``mass`` says how many they were.
        """
        if mass <= 0.0:
            raise ValueError("mass must be positive")
        counts = mixture.weights * float(mass)
        means = np.stack([c.mean for c in mixture.components])
        sums = counts[:, None] * means
        if diagonal:
            variances = np.stack(
                [np.diag(c.covariance) for c in mixture.components]
            )
            outers = counts[:, None] * (variances + means**2)
        else:
            covs = np.stack([c.covariance for c in mixture.components])
            outers = counts[:, None, None] * (
                covs + np.einsum("ki,kj->kij", means, means)
            )
        return cls(counts, sums, outers, diagonal)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_components(self) -> int:
        return self.counts.size

    @property
    def dim(self) -> int:
        return self.sums.shape[1]

    @property
    def total(self) -> float:
        """Total absorbed mass ``Σ_j N_j`` (records, up to decay)."""
        return float(self.counts.sum())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "SufficientStats") -> None:
        if (
            other.n_components != self.n_components
            or other.dim != self.dim
            or other.diagonal != self.diagonal
        ):
            raise ValueError(
                "incompatible sufficient statistics: "
                f"(K={self.n_components}, d={self.dim}, "
                f"diagonal={self.diagonal}) vs "
                f"(K={other.n_components}, d={other.dim}, "
                f"diagonal={other.diagonal})"
            )

    def merge(self, other: "SufficientStats") -> "SufficientStats":
        """Component-wise sum: the stats of the concatenated data."""
        self._check_compatible(other)
        return SufficientStats(
            self.counts + other.counts,
            self.sums + other.sums,
            self.outers + other.outers,
            self.diagonal,
        )

    def scaled(self, factor: float) -> "SufficientStats":
        """Uniformly decayed stats (``factor`` in ``(0, inf)``).

        Scaling all three accumulators by the same factor leaves the
        materialized ``(μ, Σ)`` unchanged and shrinks only the mass --
        the standard exponential-forgetting primitive.
        """
        if factor <= 0.0 or not np.isfinite(factor):
            raise ValueError("scale factor must be positive and finite")
        return SufficientStats(
            self.counts * factor,
            self.sums * factor,
            self.outers * factor,
            self.diagonal,
        )

    def blend(
        self,
        batch: "SufficientStats",
        eta: float,
        *,
        target: float | None = None,
    ) -> "SufficientStats":
        """Cappé–Moulines stepwise update: ``s ← (1−η)·s̄ + η·b̄``.

        Both operands are normalised to unit mass before the convex
        combination, then the result is rescaled to ``target`` -- by
        default the combined mass ``self.total + batch.total``.  The
        chunk is absorbed, but its influence on the parameters is
        ``η``, not its share of the records.  ``η`` follows the
        ``(t+2)^{-α}`` schedule in :func:`repro.core.em.incremental_em`,
        which passes ``target`` explicitly so repeated passes over the
        *same* chunk absorb its mass only once.
        """
        self._check_compatible(batch)
        if not 0.0 < eta <= 1.0:
            raise ValueError("eta must lie in (0, 1]")
        if batch.total <= MIN_MASS:
            raise ValueError("cannot blend in an empty batch")
        if target is None:
            target = self.total + batch.total
        if target <= 0.0 or not np.isfinite(target):
            raise ValueError("target mass must be positive and finite")
        if self.total <= MIN_MASS:
            return batch.scaled(target / batch.total)
        return self.scaled((1.0 - eta) * target / self.total).merge(
            batch.scaled(eta * target / batch.total)
        )

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        *,
        covariance_ridge: float = 0.0,
        global_var: float = 1.0,
    ) -> GaussianMixture:
        """Exact ``(w, μ, Σ)`` of the accumulated evidence.

        ``covariance_ridge * global_var`` is added to every covariance
        diagonal, matching the batch M-step's regularisation
        (:func:`repro.core.em._m_step`); pass the trainer's
        ``EMConfig.covariance_ridge`` and the chunk's mean variance.

        Raises
        ------
        ValueError
            If any component's mass is below :data:`MIN_MASS` -- a
            starved component has no parameters; callers (the trainer's
            starvation re-seed, the ladder's cold fallback) must handle
            it before materializing.
        """
        if np.any(self.counts <= MIN_MASS):
            starved = np.flatnonzero(self.counts <= MIN_MASS).tolist()
            raise ValueError(
                f"cannot materialize starved components {starved}; "
                "re-seed or drop them first"
            )
        total = self.counts.sum()
        weights = self.counts / total
        means = self.sums / self.counts[:, None]
        ridge = covariance_ridge * global_var
        components = []
        for j in range(self.n_components):
            mean = means[j]
            if self.diagonal:
                variances = self.outers[j] / self.counts[j] - mean**2
                cov = np.diag(variances + ridge)
            else:
                cov = self.outers[j] / self.counts[j] - np.outer(mean, mean)
                cov = cov + ridge * np.eye(self.dim)
            components.append(Gaussian(mean, cov, diagonal=self.diagonal))
        return GaussianMixture(weights, tuple(components))

    # ------------------------------------------------------------------
    # Serialisation (checkpoints)
    # ------------------------------------------------------------------
    def to_dict(self) -> Mapping[str, object]:
        return {
            "counts": self.counts.tolist(),
            "sums": self.sums.tolist(),
            "outers": self.outers.tolist(),
            "diagonal": self.diagonal,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SufficientStats":
        return cls(
            np.asarray(payload["counts"], dtype=float),
            np.asarray(payload["sums"], dtype=float),
            np.asarray(payload["outers"], dtype=float),
            bool(payload.get("diagonal", False)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SufficientStats):
            return NotImplemented
        return (
            self.diagonal == other.diagonal
            and np.array_equal(self.counts, other.counts)
            and np.array_equal(self.sums, other.sums)
            and np.array_equal(self.outers, other.outers)
        )

    def __repr__(self) -> str:
        return (
            f"SufficientStats(K={self.n_components}, dim={self.dim}, "
            f"total={self.total:.1f}, diagonal={self.diagonal})"
        )
