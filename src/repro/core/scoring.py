"""Soft-clustering scores: membership and anomaly detection.

The paper's introduction motivates *soft* clustering with exactly this
use case: "the network connection with 80% probability to be attacked
by hackers is more informative than a simple Yes/No answer".  This
module turns the fitted mixture models into those answers:

* :func:`membership_report` -- per-record posterior membership over the
  model's clusters (eq. 2), the "80% probability" output;
* :func:`anomaly_scores` -- per-record surprise under the model
  (negative log density), with a calibrated threshold derived from a
  reference sample;
* :class:`AnomalyDetector` -- a streaming wrapper that calibrates on a
  site's current model and flags records whose observed attributes the
  model cannot explain (NaN attributes are marginalised out, so
  incomplete records are scored on what *was* observed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.mixture import GaussianMixture

__all__ = [
    "AnomalyDetector",
    "AnomalyVerdict",
    "anomaly_scores",
    "calibrate_threshold",
    "membership_report",
]


def membership_report(
    mixture: GaussianMixture, records: np.ndarray
) -> list[list[tuple[int, float]]]:
    """Per-record soft cluster memberships, strongest first.

    Parameters
    ----------
    mixture:
        The fitted model.
    records:
        Records of shape ``(n, d)``; NaN attributes allowed.

    Returns
    -------
    list of per-record ``(cluster_index, probability)`` pairs sorted by
    descending probability.  Probabilities per record sum to one.
    """
    records = np.atleast_2d(np.asarray(records, dtype=float))
    if np.isnan(records).any():
        from repro.core.missing import marginal_posterior

        posterior = marginal_posterior(mixture, records)
    else:
        posterior = mixture.posterior(records)
    report = []
    for row in posterior:
        order = np.argsort(row)[::-1]
        report.append([(int(j), float(row[j])) for j in order])
    return report


def anomaly_scores(
    mixture: GaussianMixture, records: np.ndarray
) -> np.ndarray:
    """Per-record surprise: negative log density under the model.

    NaN attributes are marginalised out, so an incomplete record is
    scored on its observed sub-vector.  Higher = more anomalous.
    """
    records = np.atleast_2d(np.asarray(records, dtype=float))
    if np.isnan(records).any():
        from repro.core.missing import marginal_log_values

        return -marginal_log_values(mixture, records)
    return -mixture.log_pdf(records)


def calibrate_threshold(
    mixture: GaussianMixture,
    reference: np.ndarray,
    false_positive_rate: float = 0.01,
) -> float:
    """Anomaly threshold from a reference sample of normal data.

    The threshold is the ``1 - false_positive_rate`` quantile of the
    reference scores, so roughly that fraction of normal records will
    be flagged.
    """
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must lie strictly in (0, 1)")
    scores = anomaly_scores(mixture, reference)
    if scores.size < 10:
        raise ValueError("need at least 10 reference records to calibrate")
    return float(np.quantile(scores, 1.0 - false_positive_rate))


@dataclass(frozen=True)
class AnomalyVerdict:
    """One scored record.

    Attributes
    ----------
    score:
        Negative log density of the record under the model.
    threshold:
        The calibrated decision threshold in force.
    is_anomaly:
        ``score > threshold``.
    top_cluster / top_probability:
        The most likely cluster and its posterior probability -- the
        paper's "80% probability" style answer, reported even for
        anomalies (it names the nearest normal behaviour).
    """

    score: float
    threshold: float
    is_anomaly: bool
    top_cluster: int
    top_probability: float


class AnomalyDetector:
    """Score records against a mixture model with a calibrated threshold.

    Parameters
    ----------
    mixture:
        The model of *normal* behaviour (e.g. a remote site's current
        model or the coordinator's global mixture).
    reference:
        Normal records used to calibrate the threshold.
    false_positive_rate:
        Target fraction of normal records flagged.
    """

    def __init__(
        self,
        mixture: GaussianMixture,
        reference: np.ndarray,
        false_positive_rate: float = 0.01,
    ) -> None:
        self.mixture = mixture
        self.false_positive_rate = false_positive_rate
        self.threshold = calibrate_threshold(
            mixture, reference, false_positive_rate
        )
        self.flagged = 0
        self.scored = 0

    def score(self, record: np.ndarray) -> AnomalyVerdict:
        """Score a single record."""
        return self.score_batch(np.atleast_2d(np.asarray(record, dtype=float)))[0]

    def score_batch(self, records: np.ndarray) -> Sequence[AnomalyVerdict]:
        """Score a batch of records in one vectorized pass.

        One density evaluation produces every score, one posterior
        evaluation produces every top cluster -- no per-record model
        calls, and no full per-record membership sort (only the top
        entry is needed).  Semantics are identical to scoring each
        record through :meth:`score`.
        """
        records = np.atleast_2d(np.asarray(records, dtype=float))
        scores = anomaly_scores(self.mixture, records)
        if np.isnan(records).any():
            from repro.core.missing import marginal_posterior

            posterior = marginal_posterior(self.mixture, records)
        else:
            posterior = self.mixture.posterior(records)
        # Highest-probability cluster per row; ties resolve to the
        # highest index, matching membership_report's descending sort.
        k = posterior.shape[1]
        top_clusters = k - 1 - np.argmax(posterior[:, ::-1], axis=1)
        top_probabilities = posterior[np.arange(posterior.shape[0]), top_clusters]
        anomalous = scores > self.threshold
        self.scored += int(scores.size)
        self.flagged += int(np.count_nonzero(anomalous))
        return [
            AnomalyVerdict(
                score=float(score),
                threshold=self.threshold,
                is_anomaly=bool(flag),
                top_cluster=int(cluster),
                top_probability=float(probability),
            )
            for score, flag, cluster, probability in zip(
                scores, anomalous, top_clusters, top_probabilities
            )
        ]

    def recalibrate(self, mixture: GaussianMixture, reference: np.ndarray) -> None:
        """Swap in a refreshed model (e.g. after a site re-clusters)."""
        self.mixture = mixture
        self.threshold = calibrate_threshold(
            mixture, reference, self.false_positive_rate
        )
