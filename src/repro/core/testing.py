"""The fit test of the test-and-cluster strategy (section 5.1.2).

Before clustering an incoming chunk, the remote site *tests* it against
the current model by comparing average log likelihoods::

    J_fit = | AvgPr_n - AvgPr_0 |        (eq. 4)

where ``AvgPr_0`` is the reference likelihood recorded when the model
was trained and ``AvgPr_n`` is the likelihood of the new chunk under
that same model.  Theorem 2 guarantees that two same-distribution chunks
of Theorem 1 size differ by less than ``ε`` with high probability, so
``J_fit ≤ ε`` accepts the chunk and anything larger triggers EM.

Two likelihood variants are provided, mirroring the proof of Theorem 2:
the full mixture likelihood of Definition 1 and the "sharpened"
max-component form the proof argues for.

Adaptive threshold
------------------
Verbatim, the criterion ``J_fit ≤ ε`` is unstable: the sampling noise of
an average log likelihood over ``M`` records has standard deviation
``σ/√M`` where ``σ`` is the per-record log-density spread, and Theorem
1's ``M ∝ 1/ε`` does not drive that below ``ε`` (empirically ~45% of
same-distribution chunks fail at the paper's own defaults).  The paper
states the *intent* -- "δ controls the probability of the error" -- so
:func:`adaptive_threshold` realises it: the effective tolerance is::

    max(ε, z_δ · σ̂ · sqrt(2/M)),   z_δ = sqrt(2 ln(1/δ))

with ``σ̂`` estimated on the model's training chunk.  The ``sqrt(2/M)``
accounts for both sides of the comparison fluctuating; the sub-Gaussian
``z_δ`` caps the same-distribution failure probability near ``δ``.
Remote sites use the adaptive threshold by default
(``RemoteSiteConfig.adaptive_test``); setting it off reproduces the
verbatim criterion.  See DESIGN.md ("Faithful-intent corrections").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.mixture import GaussianMixture

__all__ = [
    "FitTestResult",
    "LikelihoodVariant",
    "adaptive_threshold",
    "average_log_likelihood",
    "fit_test",
    "log_density_spread",
]


class LikelihoodVariant(str, Enum):
    """Which per-record likelihood enters the average.

    ``MIXTURE`` is Definition 1 verbatim; ``MAX_COMPONENT`` replaces each
    record's mixture probability with its maximal weighted component
    probability, the sharpening used in the proof of Theorem 2.
    """

    MIXTURE = "mixture"
    MAX_COMPONENT = "max_component"


def average_log_likelihood(
    mixture: GaussianMixture,
    data: np.ndarray,
    variant: LikelihoodVariant = LikelihoodVariant.MIXTURE,
) -> float:
    """``AvgPr`` of ``data`` under ``mixture`` (Definition 1).

    Parameters
    ----------
    mixture:
        The candidate model.
    data:
        Chunk of shape ``(n, d)``.
    variant:
        Likelihood flavour; see :class:`LikelihoodVariant`.

    Notes
    -----
    Records with NaN attributes are handled transparently: the average
    switches to *marginal* densities (the observed sub-vectors), per
    :mod:`repro.core.missing`.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    if np.isnan(data).any():
        from repro.core.missing import marginal_log_values

        values = marginal_log_values(
            mixture, data, max_component=variant is LikelihoodVariant.MAX_COMPONENT
        )
        return float(np.mean(values))
    if variant is LikelihoodVariant.MIXTURE:
        return mixture.average_log_likelihood(data)
    return mixture.max_component_log_likelihood(data)


def log_density_spread(
    mixture: GaussianMixture,
    data: np.ndarray,
    variant: LikelihoodVariant = LikelihoodVariant.MIXTURE,
) -> float:
    """Per-record log-density standard deviation ``σ̂``.

    Estimated on the model's training chunk and stored alongside the
    reference likelihood; feeds :func:`adaptive_threshold`.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    if data.shape[0] < 2:
        raise ValueError("need at least two records to estimate a spread")
    if np.isnan(data).any():
        from repro.core.missing import marginal_log_values

        values = marginal_log_values(
            mixture,
            data,
            max_component=variant is LikelihoodVariant.MAX_COMPONENT,
        )
    elif variant is LikelihoodVariant.MIXTURE:
        values = mixture.log_pdf(data)
    else:
        weighted = mixture.weighted_log_pdf(data)
        values = np.max(weighted, axis=1)
    return float(np.std(values))


def adaptive_threshold(
    epsilon: float, delta: float, sigma: float, m: int, m_ref: int | None = None
) -> float:
    """Variance-aware tolerance for the fit test (see module docstring).

    Parameters
    ----------
    epsilon:
        The paper's ``ε`` -- a hard floor on the tolerance.
    delta:
        Target same-distribution failure probability.
    sigma:
        Per-record log-density spread of the reference model
        (:func:`log_density_spread`).
    m:
        Size of the tested chunk.
    m_ref:
        Size of the sample the reference likelihood was estimated on;
        defaults to ``m`` (both sides fluctuate equally, giving the
        ``sqrt(2/m)`` of the module docstring).
    """
    if epsilon <= 0.0:
        raise ValueError("epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie strictly between 0 and 1")
    if sigma < 0.0:
        raise ValueError("sigma must be non-negative")
    if m < 1:
        raise ValueError("m must be at least 1")
    m_ref = m if m_ref is None else m_ref
    if m_ref < 1:
        raise ValueError("m_ref must be at least 1")
    z = float(np.sqrt(2.0 * np.log(1.0 / delta)))
    spread = float(np.sqrt(1.0 / m + 1.0 / m_ref))
    return max(epsilon, z * sigma * spread)


@dataclass(frozen=True)
class FitTestResult:
    """Outcome of one ``J_fit`` evaluation.

    Attributes
    ----------
    fits:
        ``True`` when ``j_fit ≤ epsilon`` -- the chunk is explained by
        the model and no EM run is needed.
    j_fit:
        The statistic ``|AvgPr_n - AvgPr_0|``.
    chunk_likelihood:
        ``AvgPr_n`` of the tested chunk.
    reference_likelihood:
        ``AvgPr_0`` recorded for the model.
    epsilon:
        The threshold used.
    """

    fits: bool
    j_fit: float
    chunk_likelihood: float
    reference_likelihood: float
    epsilon: float


def fit_test(
    mixture: GaussianMixture,
    chunk: np.ndarray,
    reference_likelihood: float,
    epsilon: float,
    variant: LikelihoodVariant = LikelihoodVariant.MIXTURE,
) -> FitTestResult:
    """Run the test criterion of section 5.1.2 on one chunk.

    Parameters
    ----------
    mixture:
        Current model ``(w, μ, Σ)``.
    chunk:
        Incoming chunk of shape ``(M, d)``.
    reference_likelihood:
        ``AvgPr_0`` -- the average log likelihood the model achieved on
        the chunk it was trained on.
    epsilon:
        Error bound ``ε``; chunks within ``ε`` of the reference fit.
    variant:
        Likelihood flavour used for *both* sides of the comparison.

    Returns
    -------
    FitTestResult
    """
    if epsilon <= 0.0:
        raise ValueError("epsilon must be positive")
    if not np.isfinite(reference_likelihood):
        raise ValueError("reference likelihood must be finite")
    chunk_likelihood = average_log_likelihood(mixture, chunk, variant)
    j_fit = abs(chunk_likelihood - reference_likelihood)
    return FitTestResult(
        fits=j_fit <= epsilon,
        j_fit=j_fit,
        chunk_likelihood=chunk_likelihood,
        reference_likelihood=reference_likelihood,
        epsilon=epsilon,
    )
