"""EM for records with missing attributes.

The paper motivates the EM approach with "noisy or incomplete data
records" -- e.g. corrupted click streams in P2P networks or partial
sensor readings -- and cites Dempster et al.'s treatment of incomplete
data.  This module implements that promise properly: records may carry
``NaN`` for unobserved attributes, and the EM machinery handles them
*exactly* rather than by imputation hacks:

* **E-step** -- responsibilities come from the *marginal* density of
  each record's observed sub-vector (:func:`marginal_log_pdf`);
* **M-step** -- missing coordinates enter through their conditional
  expectations given the observed ones,
  ``x̂_mis = μ_mis + Σ_mo Σ_oo⁻¹ (x_obs − μ_obs)``, and the conditional
  covariance ``Σ_mm − Σ_mo Σ_oo⁻¹ Σ_om`` is added back to the second
  moment so the covariance estimate is unbiased (the classical
  missing-data EM of Dempster/Laird/Rubin).

Records are grouped by missingness *pattern* so each distinct pattern
costs one set of matrix factorisations, keeping the common cases (no
missing values, one hot attribute missing) fast.

The fit test extends naturally: :func:`average_marginal_log_likelihood`
is Definition 1 computed on marginal densities, so the test-and-cluster
strategy keeps working on incomplete streams
(``RemoteSiteConfig(handle_missing=True)``).

This trainer has **no incremental variant**: sufficient statistics over
conditional expectations are pattern-dependent and do not merge across
chunks, so the refit ladder (DESIGN §14) dispatches NaN-bearing chunks
straight to a cold :func:`fit_em_missing` -- an explicit decision in
``RemoteSite._refit_warm`` / ``_absorb_passing_chunk``, not a silent
fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.em import EMConfig, EMResult, kmeans_plus_plus_centers
from repro.core.gaussian import Gaussian
from repro.core.mixture import LOG_DENSITY_FLOOR, GaussianMixture

__all__ = [
    "average_marginal_log_likelihood",
    "fit_em_missing",
    "group_by_pattern",
    "has_missing",
    "marginal_log_pdf",
    "mean_impute",
]

#: Responsibility mass floor (matches the complete-data trainer).
MIN_COMPONENT_MASS = 1e-8


def has_missing(data: np.ndarray) -> bool:
    """Whether ``data`` contains any NaN entries."""
    return bool(np.isnan(np.asarray(data, dtype=float)).any())


@dataclass(frozen=True)
class PatternGroup:
    """Rows sharing one missingness pattern.

    Attributes
    ----------
    observed:
        Boolean mask of observed attributes, shape ``(d,)``.
    indices:
        Row indices (into the original data) in this group.
    rows:
        The group's records, shape ``(len(indices), d)`` (NaNs intact).
    """

    observed: np.ndarray
    indices: np.ndarray
    rows: np.ndarray

    @property
    def n_observed(self) -> int:
        return int(self.observed.sum())


def group_by_pattern(data: np.ndarray) -> list[PatternGroup]:
    """Partition rows by their missingness pattern.

    Rows with *no* observed attribute are rejected -- they carry no
    information and would make responsibilities undefined.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    observed = ~np.isnan(data)
    if not observed.any(axis=1).all():
        raise ValueError("records with every attribute missing are not allowed")
    # Group via row-wise byte keys of the boolean mask.
    raw_keys = [mask.tobytes() for mask in observed]
    groups: dict[bytes, list[int]] = {}
    for index, key in enumerate(raw_keys):
        groups.setdefault(key, []).append(index)
    result = []
    for key, indices in groups.items():
        index_array = np.asarray(indices, dtype=int)
        result.append(
            PatternGroup(
                observed=observed[index_array[0]].copy(),
                indices=index_array,
                rows=data[index_array],
            )
        )
    return result


def mean_impute(data: np.ndarray) -> np.ndarray:
    """Replace NaNs by per-attribute observed means (seeding only).

    An attribute that is missing everywhere imputes to zero.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float)).copy()
    mask = np.isnan(data)
    counts = (~mask).sum(axis=0)
    sums = np.where(mask, 0.0, data).sum(axis=0)
    means = np.divide(
        sums, counts, out=np.zeros_like(sums), where=counts > 0
    )
    data[mask] = np.broadcast_to(means, data.shape)[mask]
    return data


def _marginal_parameters(
    gaussian: Gaussian, observed: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Marginal ``(μ_obs, Σ_oo)`` of a Gaussian on the observed attrs."""
    mean = gaussian.mean[observed]
    cov = gaussian.covariance[np.ix_(observed, observed)]
    return mean, cov


def marginal_log_pdf(gaussian: Gaussian, data: np.ndarray) -> np.ndarray:
    """Per-row log density of each record's *observed* sub-vector.

    Rows without missing values reduce to the ordinary
    :meth:`Gaussian.log_pdf`.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    out = np.empty(data.shape[0])
    for group in group_by_pattern(data):
        mean, cov = _marginal_parameters(gaussian, group.observed)
        sub = Gaussian(mean, cov)
        out[group.indices] = sub.log_pdf(group.rows[:, group.observed])
    return out


def _mixture_marginal_weighted(
    mixture: GaussianMixture, data: np.ndarray
) -> np.ndarray:
    """Matrix of ``log(w_j) + log p(x_obs | j)``, shape ``(n, K)``."""
    with np.errstate(divide="ignore"):
        log_weights = np.log(mixture.weights)
    columns = [
        marginal_log_pdf(component, data) + log_weights[j]
        for j, component in enumerate(mixture.components)
    ]
    return np.column_stack(columns)


def marginal_log_values(
    mixture: GaussianMixture, data: np.ndarray, max_component: bool = False
) -> np.ndarray:
    """Per-record marginal log densities (NaNs marginalised out).

    ``max_component=True`` returns the Theorem 2 "sharpened" per-record
    statistic ``max_j log(w_j p(x_obs|j))`` instead of the full mixture
    log density.
    """
    weighted = _mixture_marginal_weighted(mixture, data)
    if max_component:
        return np.maximum(np.max(weighted, axis=1), LOG_DENSITY_FLOOR)
    peak = np.max(weighted, axis=1)
    safe_peak = np.where(np.isfinite(peak), peak, 0.0)
    log_density = safe_peak + np.log(
        np.sum(np.exp(weighted - safe_peak[:, None]), axis=1)
    )
    return np.maximum(log_density, LOG_DENSITY_FLOOR)


def average_marginal_log_likelihood(
    mixture: GaussianMixture, data: np.ndarray
) -> float:
    """Definition 1 on marginal densities (NaNs marginalised out)."""
    return float(np.mean(marginal_log_values(mixture, data)))


def marginal_posterior(
    mixture: GaussianMixture, data: np.ndarray
) -> np.ndarray:
    """Posterior ``Pr(j | x_obs)`` from marginal densities."""
    weighted = _mixture_marginal_weighted(mixture, data)
    peak = np.max(weighted, axis=1, keepdims=True)
    probs = np.exp(weighted - np.where(np.isfinite(peak), peak, 0.0))
    totals = probs.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore"):
        posterior = probs / totals
    bad = ~np.isfinite(peak).ravel()
    if bad.any():
        posterior[bad] = mixture.weights[None, :]
    return posterior


def _m_step_missing(
    data_groups: list[PatternGroup],
    n_records: int,
    dim: int,
    responsibilities: np.ndarray,
    mixture: GaussianMixture,
    config: EMConfig,
) -> GaussianMixture:
    """Exact missing-data M-step over pattern groups."""
    k = mixture.n_components
    masses = responsibilities.sum(axis=0)
    weights = np.maximum(masses, MIN_COMPONENT_MASS) / n_records
    components: list[Gaussian] = []

    # Per component, accumulate completed moments over pattern groups.
    for j, component in enumerate(mixture.components):
        mass = masses[j]
        if mass <= MIN_COMPONENT_MASS * n_records:
            components.append(component)  # starving: keep as is
            continue
        linear = np.zeros(dim)
        outer = np.zeros((dim, dim))
        for group in data_groups:
            obs = group.observed
            mis = ~obs
            resp = responsibilities[group.indices, j]
            x_obs = group.rows[:, obs]
            mu_obs, cov_oo = _marginal_parameters(component, obs)
            completed = np.empty((group.rows.shape[0], dim))
            completed[:, obs] = x_obs
            if mis.any():
                cov_mo = component.covariance[np.ix_(mis, obs)]
                gain = cov_mo @ np.linalg.solve(
                    cov_oo + 1e-12 * np.eye(cov_oo.shape[0]),
                    np.eye(cov_oo.shape[0]),
                )
                mu_mis = component.mean[mis]
                completed[:, mis] = (
                    mu_mis[None, :]
                    + (x_obs - mu_obs[None, :]) @ gain.T
                )
                # Conditional covariance of the missing block.
                cond_cov = (
                    component.covariance[np.ix_(mis, mis)]
                    - gain @ component.covariance[np.ix_(obs, mis)]
                )
            else:
                cond_cov = None
            linear += resp @ completed
            outer += np.einsum("n,ni,nj->ij", resp, completed, completed)
            if cond_cov is not None:
                correction = np.zeros((dim, dim))
                correction[np.ix_(mis, mis)] = cond_cov
                outer += float(resp.sum()) * correction
        mean = linear / mass
        cov = outer / mass - np.outer(mean, mean)
        cov = cov + config.covariance_ridge * np.eye(dim)
        if config.diagonal:
            cov = np.diag(np.diag(cov))
        components.append(Gaussian(mean, cov, diagonal=config.diagonal))
    return GaussianMixture(np.asarray(weights), tuple(components))


def fit_em_missing(
    data: np.ndarray,
    config: EMConfig | None = None,
    rng: np.random.Generator | None = None,
    initial: GaussianMixture | None = None,
) -> EMResult:
    """Fit a Gaussian mixture to data that may contain NaN attributes.

    Mirrors :func:`repro.core.em.fit_em`: seeding happens on
    mean-imputed data (k-means++ with a shared spherical covariance),
    then exact missing-data E/M iterations run until the average
    *marginal* log likelihood stabilises.

    Parameters
    ----------
    data:
        Records of shape ``(n, d)``; NaN marks a missing attribute.
        Fully missing records are rejected.
    config / rng / initial:
        As in :func:`repro.core.em.fit_em` (``initial`` replaces the
        cold seed rather than racing against restarts -- missing-data
        iterations are costlier, so we keep a single candidate).

    Returns
    -------
    EMResult
    """
    config = config or EMConfig()
    rng = rng if rng is not None else np.random.default_rng()
    data = np.atleast_2d(np.asarray(data, dtype=float))
    if data.shape[0] < config.n_components:
        raise ValueError(
            f"need at least n_components={config.n_components} records"
        )
    if np.isinf(data).any():
        raise ValueError("data contains infinite values")
    groups = group_by_pattern(data)
    dim = data.shape[1]

    if initial is not None:
        if initial.dim != dim:
            raise ValueError("warm-start mixture dimension mismatch")
        mixture = initial
    else:
        imputed = mean_impute(data)
        k = min(config.n_components, data.shape[0])
        centers = kmeans_plus_plus_centers(imputed, k, rng)
        variance = max(float(np.mean(np.var(imputed, axis=0))) / k, 1e-6)
        mixture = GaussianMixture(
            np.full(k, 1.0 / k),
            tuple(
                Gaussian.spherical(center, variance, diagonal=config.diagonal)
                for center in centers
            ),
        )

    history: list[float] = []
    previous = -np.inf
    converged = False
    iterations = 0
    for iterations in range(1, config.max_iter + 1):
        responsibilities = marginal_posterior(mixture, data)
        mixture = _m_step_missing(
            groups, data.shape[0], dim, responsibilities, mixture, config
        )
        current = average_marginal_log_likelihood(mixture, data)
        history.append(current)
        if np.isfinite(previous) and abs(current - previous) <= config.tol:
            converged = True
            break
        previous = current
    return EMResult(
        mixture=mixture,
        log_likelihood=history[-1],
        n_iter=iterations,
        converged=converged,
        history=tuple(history),
    )
