"""Remote-site processing: the test-and-cluster strategy (Algorithm 1).

A :class:`RemoteSite` consumes its local stream record by record,
buffers Theorem 1-sized chunks and runs Algorithm 1 on each full chunk:

1. the very first chunk is clustered with EM, establishing the current
   model and its reference likelihood ``AvgPr_0``;
2. every later chunk is *tested* first (``J_fit ≤ ε``).  A fitting chunk
   just bumps the current model's counter -- no EM, no communication;
3. with the multi-test strategy (``c_max > 1``) a chunk that fails the
   current model is tested against up to ``c_max - 1`` archived models;
   matching one *reactivates* it (cheap ``WeightUpdateMessage``);
4. only when every test fails does the site archive the current model,
   append an event-table entry and run EM, emitting a full
   ``ModelUpdateMessage``.

The site also keeps the per-model counters, the event table driving the
section 7 evolving analysis, and cost statistics (tests vs clusterings,
buffered bytes, Theorem 3 memory accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.chunking import chunk_size
from repro.core.em import EMConfig, absorb_chunk, fit_em, incremental_em
from repro.core.events import EventTable
from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.core.suffstats import SufficientStats
from repro.core.protocol import (
    DeletionMessage,
    Message,
    ModelUpdateMessage,
    WeightUpdateMessage,
)
from repro.core.testing import (
    LikelihoodVariant,
    adaptive_threshold,
    average_log_likelihood,
    fit_test,
    log_density_spread,
)
from repro.obs.observer import Observer, ensure_observer

__all__ = ["ModelEntry", "RemoteSite", "RemoteSiteConfig", "SiteStatistics"]


@dataclass(frozen=True, kw_only=True)
class RemoteSiteConfig:
    """Parameters of one remote site.

    Defaults follow the paper's experimental setting (section 6):
    ``ε = 0.02``, ``δ = 0.01``, ``d = 4``, ``K = 5``, ``c_max = 4``.

    Parameters
    ----------
    dim:
        Record dimensionality ``d``.
    epsilon:
        Error bound ``ε`` of the fit test (and chunk-size formula).
    delta:
        Probability error ``δ`` of Theorem 1.
    c_max:
        Maximal number of model tests per chunk (current model plus up
        to ``c_max - 1`` archived models).  ``c_max = 1`` is the paper's
        single-test strategy.
    em:
        EM trainer configuration (``K`` lives here).
    variant:
        Likelihood flavour of the fit test.
    warm_start:
        Additionally refine EM from the failing current model (an extra
        candidate next to the cold restarts).  Off by default: the
        k-means++ cold start consistently matches or beats the warm
        refinement (see ``bench_ablation_warm_start``), so the extra EM
        run is pure cost; the knob remains for ablation.
    adaptive_test:
        Use the variance-aware tolerance of
        :func:`repro.core.testing.adaptive_threshold` (default).  Off
        reproduces the paper's verbatim ``J_fit ≤ ε`` criterion.
    handle_missing:
        Accept records with NaN (missing) attributes: EM runs the exact
        missing-data variant (:mod:`repro.core.missing`) and the fit
        test evaluates marginal likelihoods.  Off (default), NaN records
        are rejected.
    auto_k:
        Inclusive ``(k_min, k_max)`` range for automatic component
        selection: each clustering sweeps the range and installs the
        BIC winner (:func:`repro.core.selection.select_k`), so the model
        size adapts to the data instead of being fixed at
        ``em.n_components``.  ``None`` (default) keeps the paper's fixed
        ``K``.  Not combinable with ``handle_missing`` or
        ``warm_start``.
    reference_holdout:
        Fraction of each training chunk held out to estimate the
        reference statistics ``AvgPr_0`` / ``σ̂`` out of sample.
        Measuring them on the records EM just fitted makes the
        reference optimistically biased by roughly
        ``#params / 2M``, which mis-fires the test on hard data; the
        held-out estimate removes the bias (see DESIGN.md,
        faithful-intent corrections).  ``0.0`` reproduces the paper's
        in-sample reference.
    reactivate_limit:
        Cap on archived candidates evaluated per failing chunk, on top
        of the ``c_max - 1`` budget (most-recent-first).  Each
        candidate costs a full ``J_fit`` evaluation, so deep archives
        under churny drift turn the multi-test into its own spike;
        ``None`` (default) keeps the paper's ``c_max``-only bound.
    archive_limit:
        Retention bound on the archived-model list.  The archive is
        kept in recency-of-use order (reactivating a model moves it to
        the tail), so the bound evicts least-recently-used models
        first and the reactivate ladder -- which scans the most recent
        ``c_max - 1`` entries -- keeps seeing exactly the models it
        would have tested anyway.  Evictions are counted in
        ``SiteStatistics.archive_evictions``.  ``None`` (default)
        keeps every archived model, the paper's unbounded model list.
    event_limit:
        Retention bound on the event table (see
        :class:`~repro.core.events.EventTable`); ``None`` (default)
        keeps every entry.
    chunk_override:
        Explicit chunk size ``M``; when ``None`` Theorem 1's formula is
        used.

    Incremental mode (``em.incremental = True``) replaces the
    fail-path cold restart with the DESIGN.md section 14 refit ladder
    (reactivate → warm-start stepwise E-M → cold refit) and absorbs
    passing chunks through sufficient statistics; with it off the site
    is byte-identical to the pre-ladder behaviour.
    """

    dim: int = 4
    epsilon: float = 0.02
    delta: float = 0.01
    c_max: int = 4
    em: EMConfig = field(default_factory=EMConfig)
    variant: LikelihoodVariant = LikelihoodVariant.MIXTURE
    warm_start: bool = False
    adaptive_test: bool = True
    handle_missing: bool = False
    auto_k: tuple[int, int] | None = None
    reference_holdout: float = 0.25
    reactivate_limit: int | None = None
    archive_limit: int | None = None
    event_limit: int | None = None
    chunk_override: int | None = None

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError("dim must be at least 1")
        if self.c_max < 1:
            raise ValueError("c_max must be at least 1")
        if self.reactivate_limit is not None and self.reactivate_limit < 0:
            raise ValueError("reactivate_limit must be non-negative")
        if self.archive_limit is not None and self.archive_limit < 1:
            raise ValueError(
                f"archive_limit must be at least 1, got {self.archive_limit}"
            )
        if self.event_limit is not None and self.event_limit < 1:
            raise ValueError(
                f"event_limit must be at least 1, got {self.event_limit}"
            )
        if self.chunk_override is not None and self.chunk_override < 1:
            raise ValueError("chunk_override must be at least 1")
        if not 0.0 <= self.reference_holdout < 1.0:
            raise ValueError("reference_holdout must lie in [0, 1)")
        if self.auto_k is not None:
            k_min, k_max = self.auto_k
            if k_min < 1 or k_max < k_min:
                raise ValueError("auto_k must satisfy 1 <= k_min <= k_max")
            if self.handle_missing:
                raise ValueError("auto_k is not supported with handle_missing")
            if self.warm_start:
                raise ValueError("auto_k is not supported with warm_start")

    @property
    def chunk(self) -> int:
        """Chunk size ``M`` (Theorem 1 unless overridden)."""
        if self.chunk_override is not None:
            return self.chunk_override
        return chunk_size(self.dim, self.epsilon, self.delta)


@dataclass
class ModelEntry:
    """A model in the site's model list with its bookkeeping.

    Attributes
    ----------
    model_id:
        Site-local identifier (monotonically increasing).
    mixture:
        The fitted mixture parameters.
    reference_likelihood:
        ``AvgPr_0`` recorded when the model was trained.
    reference_std:
        Per-record log-density spread ``σ̂`` of the reference sample
        (drives the adaptive test threshold).
    reference_size:
        Number of records the reference statistics were estimated on.
    count:
        Counter ``c``: number of records currently attributed to the
        model.
    trained_at:
        Stream position (records) when the model was trained.
    stats:
        Running sufficient statistics behind the mixture (incremental
        mode only; ``None`` on the classic path).  They let passing
        chunks be absorbed in one pass and warm refits resume exactly
        where the model's evidence left off.
    """

    model_id: int
    mixture: GaussianMixture
    reference_likelihood: float
    reference_std: float
    reference_size: int
    count: int
    trained_at: int
    stats: SufficientStats | None = None


@dataclass
class SiteStatistics:
    """Cost counters backing Theorems 3-4 and the scalability figures.

    ``n_tests`` counts fit-test evaluations (cost ``λC`` each in the
    paper's model); ``n_clusterings`` counts model installs after a
    full test failure (cost ``C`` when cold; warm refits are cheaper
    and counted again in ``n_warm_refits``); ``n_tests_passed`` counts
    the evaluations whose chunk fitted, so ``n_tests -
    n_tests_passed`` is the fail count; ``n_archived`` counts
    current-model retirements into the model list.

    The last three counters exist only in incremental mode
    (``n_absorbed`` one-pass absorptions of passing chunks,
    ``n_warm_refits`` / ``n_cold_refits`` ladder outcomes); they stay
    zero -- and out of checkpoints -- on the classic path.
    ``archive_evictions`` counts models dropped by the
    ``archive_limit`` retention bound and likewise stays zero (and out
    of checkpoints) while the bound is off.
    """

    records_seen: int = 0
    chunks_processed: int = 0
    n_tests: int = 0
    n_tests_passed: int = 0
    n_clusterings: int = 0
    n_reactivations: int = 0
    n_archived: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    n_absorbed: int = 0
    n_warm_refits: int = 0
    n_cold_refits: int = 0
    archive_evictions: int = 0

    def register_message(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.payload_bytes()


class RemoteSite:
    """One remote site running Algorithm 1 over its local stream.

    Parameters
    ----------
    site_id:
        Identifier used in outgoing messages.
    config:
        Site parameters.
    rng:
        Randomness for EM seeding (kept site-local so distributed runs
        are reproducible per site).
    emit:
        Optional callback invoked with every outgoing
        :class:`~repro.core.protocol.Message`; the simulation layer
        plugs the network channel in here.  Messages are also returned
        by :meth:`process_record` / :meth:`process_chunk` so the site is
        usable without any simulation harness.
    observer:
        Optional :class:`~repro.obs.observer.Observer` receiving the
        site's trace events (``site.chunk_test``, ``site.cluster``,
        ``site.reactivate``, ``site.archive``, ``site.expire``) and
        metrics.  Defaults to the disabled observer, which keeps
        behaviour byte-identical.
    history:
        Optional :class:`~repro.obs.history.ModelHistory` recording a
        pyramidally-retained snapshot of the site's state at every
        chunk boundary (tick = stream position in records).  ``None``
        (default) records nothing and keeps state byte-identical.
    """

    def __init__(
        self,
        site_id: int,
        config: RemoteSiteConfig | None = None,
        rng: np.random.Generator | None = None,
        emit: Callable[[Message], None] | None = None,
        observer: Observer | None = None,
        history=None,
    ) -> None:
        self.site_id = site_id
        self.config = config or RemoteSiteConfig()
        self._rng = rng if rng is not None else np.random.default_rng(site_id)
        self._emit = emit
        self._obs = ensure_observer(observer)
        self._buffer: list[np.ndarray] = []
        self._current: ModelEntry | None = None
        self._archive: list[ModelEntry] = []
        self._next_model_id = 0
        #: Records consumed through completed chunks (buffer excluded).
        self._position = 0
        #: Stream index where the current model's reign began.
        self._current_started_at = 0
        #: Iterations of the most recent EM fit (refit-span telemetry).
        self._last_fit_iterations = 0
        self.events = EventTable(max_events=self.config.event_limit)
        self.stats = SiteStatistics()
        self.history = history
        if history is not None:
            if history.scope is None:
                history.scope = f"site:{site_id}"
            if history.observer is None:
                history.observer = self._obs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def chunk(self) -> int:
        """Chunk size ``M`` in records."""
        return self.config.chunk

    @property
    def position(self) -> int:
        """Records fully consumed through chunks so far."""
        return self._position

    @property
    def current_model(self) -> ModelEntry | None:
        """The model currently explaining the stream (``None`` initially)."""
        return self._current

    @property
    def current_started_at(self) -> int:
        """Stream index where the current model's reign began."""
        return self._current_started_at

    @property
    def model_list(self) -> Sequence[ModelEntry]:
        """Archived models, oldest first (the paper's model list)."""
        return tuple(self._archive)

    @property
    def all_models(self) -> Sequence[ModelEntry]:
        """Archived models plus the current one, in training order."""
        models = list(self._archive)
        if self._current is not None:
            models.append(self._current)
        return tuple(sorted(models, key=lambda entry: entry.model_id))

    def memory_bytes(self) -> int:
        """Theorem 3 memory accounting for this site, in bytes.

        Buffer of at most ``M`` ``d``-dimensional records plus the
        parameters of every stored mixture (and its counter).
        """
        buffer_bytes = 8 * self.config.dim * self.chunk
        model_bytes = sum(
            entry.mixture.payload_bytes() + 8 for entry in self.all_models
        )
        return buffer_bytes + model_bytes

    def find_model(self, model_id: int) -> ModelEntry | None:
        """Look up any stored model (archived or current) by id."""
        for entry in self.all_models:
            if entry.model_id == model_id:
                return entry
        return None

    # ------------------------------------------------------------------
    # Record / chunk ingestion
    # ------------------------------------------------------------------
    def process_record(self, record: np.ndarray) -> list[Message]:
        """Ingest one record; runs Algorithm 1 when a chunk completes.

        Returns the messages emitted by this record (usually empty --
        at most one chunk boundary can fall on a single record).
        """
        record = np.asarray(record, dtype=float).ravel()
        if record.size != self.config.dim:
            raise ValueError(
                f"record has dimension {record.size}, site expects "
                f"{self.config.dim}"
            )
        if np.isnan(record).any() and not self.config.handle_missing:
            raise ValueError(
                "record has missing attributes; enable "
                "RemoteSiteConfig(handle_missing=True) to accept them"
            )
        self._buffer.append(record)
        self.stats.records_seen += 1
        if len(self._buffer) < self.chunk:
            return []
        chunk = np.stack(self._buffer)
        self._buffer = []
        self._position += chunk.shape[0]
        return self._handle_chunk(chunk)

    def process_stream(self, records: Iterable[np.ndarray]) -> list[Message]:
        """Ingest many records; returns all messages emitted."""
        messages: list[Message] = []
        for record in records:
            messages.extend(self.process_record(record))
        return messages

    def process_chunk(self, chunk: np.ndarray) -> list[Message]:
        """Run Algorithm 1 on a whole chunk at once.

        Batch entry point for replays and benchmarks; the chunk may have
        any length ≥ ``K``.  Record accounting is kept consistent with
        the record-by-record path.
        """
        chunk = np.atleast_2d(np.asarray(chunk, dtype=float))
        if self._buffer:
            raise RuntimeError(
                "process_chunk cannot be mixed with a partially filled "
                "record buffer"
            )
        self.stats.records_seen += chunk.shape[0]
        self._position += chunk.shape[0]
        return self._handle_chunk(chunk)

    # ------------------------------------------------------------------
    # Sliding-window support (section 7)
    # ------------------------------------------------------------------
    def expire(self, model_id: int, expired_records: int) -> list[Message]:
        """Delete ``expired_records`` worth of weight from a stored model.

        Implements the section 7 deletion protocol: the weight is
        subtracted locally and a :class:`DeletionMessage` (model ID with
        negative weight) is emitted for the coordinator.  The model is
        dropped from the archive when its count becomes non-positive.
        """
        if expired_records <= 0:
            raise ValueError("expired_records must be positive")
        entry = self.find_model(model_id)
        if entry is None:
            raise KeyError(f"site {self.site_id} has no model {model_id}")
        entry.count -= expired_records
        if entry.count <= 0 and entry is not self._current:
            self._archive = [e for e in self._archive if e is not entry]
        if self._obs.enabled:
            self._obs.event(
                "site.expire",
                site=self.site_id,
                model=model_id,
                expired=expired_records,
                remaining=max(entry.count, 0),
            )
        message = DeletionMessage(
            site_id=self.site_id,
            model_id=model_id,
            time=self._position,
            count_delta=expired_records,
        )
        return self._send([message])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _handle_chunk(self, chunk: np.ndarray) -> list[Message]:
        """Algorithm 1 body; ``chunk`` is already counted in ``_position``."""
        if chunk.shape[1] != self.config.dim:
            raise ValueError(
                f"chunk has dimension {chunk.shape[1]}, site expects "
                f"{self.config.dim}"
            )
        self.stats.chunks_processed += 1
        self._obs.inc("site.chunks", site=self.site_id)
        # The root span of this chunk's trace: everything downstream --
        # the EM fit, the synopsis's transport delivery, the
        # coordinator-side update/merge/split -- causally links back to
        # it through propagated span contexts.
        with self._obs.span(
            "site.chunk_test", site=self.site_id, records=int(chunk.shape[0])
        ):
            messages = self._run_algorithm(chunk)
        if self.history is not None:
            from repro.obs.history import site_history_payload

            self.history.observe(self._position, site_history_payload(self))
        return messages

    def _run_algorithm(self, chunk: np.ndarray) -> list[Message]:
        if self._current is None:
            return self._cluster_chunk(chunk, warm=None)

        # Test 1: the current model (section 5.1.2).
        result = self._fit_test(self._current, chunk, target="current")
        if result.fits:
            if self.config.em.incremental:
                return self._absorb_passing_chunk(chunk)
            self._current.count += chunk.shape[0]
            return []

        # The chunk failed the current model: climb the refit ladder.
        return self._refit(chunk)

    def _refit(self, chunk: np.ndarray) -> list[Message]:
        """The refit ladder (DESIGN.md section 14).

        Rungs, cheapest first:

        1. *reactivate* -- tests 2..c_max against archived models, most
           recent first (the paper's multi-test strategy);
        2. *warm* -- stepwise E-M from the failing current model over
           its sufficient statistics (incremental mode only), accepted
           when the updated model passes the ε gate of
           :meth:`_warm_acceptable`;
        3. *cold* -- archive the current model and refit from scratch.

        The classic (non-incremental) path takes rungs 1 and 3 only --
        exactly the pre-ladder behaviour.  The enclosing ``site.refit``
        span records which rung won and its EM effort; wall time is the
        span's own ``start``/``end`` (stamped from the observer's time
        source, so deterministic traces stay deterministic).
        """
        with self._obs.span(
            "site.refit", site=self.site_id, records=int(chunk.shape[0])
        ) as span:
            # Rung 1 (tests 2..c_max): archived models, most recent
            # first (multi-test strategy, section 5.1.2).
            reactivated = self._try_reactivate(chunk)
            if reactivated is not None:
                return self._note_refit(
                    span, "reactivated", 0, reactivated
                )

            if self.config.em.incremental:
                # Rung 2: warm-start stepwise E-M over the suffstats.
                warm_messages, n_steps = self._refit_warm(chunk)
                if warm_messages is not None:
                    self.stats.n_warm_refits += 1
                    return self._note_refit(
                        span, "warm", n_steps, warm_messages
                    )

            # Rung 3: archive the current model and re-cluster cold.
            warm = self._current.mixture if self.config.warm_start else None
            self._retire_current(chunk.shape[0])
            messages = self._cluster_chunk(chunk, warm=warm)
            if self.config.em.incremental:
                self.stats.n_cold_refits += 1
            return self._note_refit(
                span, "cold", self._last_fit_iterations, messages
            )

    def _note_refit(
        self, span, outcome: str, n_iter: int, messages
    ) -> list[Message]:
        """Stamp the refit span/counters with the winning rung.

        No wall-clock here: trace events must stay pure functions of
        the seed (the lossy-determinism pin), so latency lives in the
        ``site.refit`` span's time-source-stamped ``start``/``end``.
        """
        if span is not None:
            span.attributes["outcome"] = outcome
            span.attributes["n_iter"] = n_iter
        if self._obs.enabled:
            self._obs.inc("site.refits", site=self.site_id, outcome=outcome)
            self._obs.event(
                "site.refit",
                site=self.site_id,
                outcome=outcome,
                n_iter=n_iter,
            )
        return messages

    def _absorb_passing_chunk(self, chunk: np.ndarray) -> list[Message]:
        """Incremental pass branch: fold the chunk into the suffstats.

        One posterior evaluation, zero EM iterations; the reference
        statistics move with the model so the next fit test judges the
        *updated* parameters.  Chunks with missing attributes fall back
        to the classic counter bump (the suffstat E-step has no
        marginal-likelihood variant).
        """
        current = self._current
        assert current is not None
        n = int(chunk.shape[0])
        if np.isnan(chunk).any():
            current.count += n
            return []
        result = absorb_chunk(
            chunk,
            current.mixture,
            self.config.em,
            stats=current.stats,
            observer=self._obs,
        )
        current.mixture = result.mixture
        current.stats = result.stats
        current.reference_likelihood = average_log_likelihood(
            result.mixture, chunk, self.config.variant
        )
        current.reference_std = log_density_spread(
            result.mixture, chunk, self.config.variant
        )
        current.reference_size = n
        current.count += n
        self.stats.n_absorbed += 1
        if self._obs.enabled:
            self._obs.inc("site.absorbs", site=self.site_id)
            self._obs.event(
                "site.absorb",
                site=self.site_id,
                model=current.model_id,
                records=n,
                log_likelihood=result.log_likelihood,
            )
        return []

    def _refit_warm(
        self, chunk: np.ndarray
    ) -> tuple[list[Message] | None, int]:
        """Rung 2: stepwise E-M from the failing current model.

        Returns ``(messages, n_steps)`` when the warm fit clears the ε
        gate, ``(None, steps_tried)`` when the ladder must escalate to
        a cold refit.  Chunks with missing attributes always escalate
        (:mod:`repro.core.missing` is a cold-only trainer; the dispatch
        is deliberately explicit here rather than inside it).
        """
        if np.isnan(chunk).any():
            return None, 0
        current = self._current
        assert current is not None
        train, validation = self._split_reference(chunk)
        try:
            result = incremental_em(
                train,
                current.mixture,
                self.config.em,
                stats=current.stats,
                observer=self._obs,
            )
        except ValueError:
            # Starved component mid-update or degenerate chunk: the
            # warm rung has nothing usable, escalate.
            return None, 0
        if not self._warm_acceptable(result.log_likelihood, train):
            return None, result.n_steps
        self._retire_current(chunk.shape[0])
        messages = self._install_model(
            chunk_len=chunk.shape[0],
            mixture=result.mixture,
            validation=validation,
            log_likelihood=result.log_likelihood,
            n_iter=result.n_steps,
            converged=True,
            stats=result.stats,
        )
        return messages, result.n_steps

    def _warm_acceptable(
        self, warm_likelihood: float, train: np.ndarray
    ) -> bool:
        """The ladder's ε gate on a warm fit.

        The updated mixture must explain the chunk at least as well as
        a moment-matched single Gaussian, within the site's ε::

            AvgPr_warm ≥ AvgPr_baseline − ε

        A warm start stuck in a stale basin (abrupt drift) scores far
        below even the unimodal baseline and escalates to a cold refit;
        a warm start that genuinely tracked the drift matches or beats
        it.
        """
        if train.shape[0] < 2:
            return False
        try:
            baseline = Gaussian.from_samples(
                train, diagonal=self.config.em.diagonal
            )
            baseline_likelihood = float(np.mean(baseline.log_pdf(train)))
        except (ValueError, np.linalg.LinAlgError):
            return False
        return bool(
            warm_likelihood >= baseline_likelihood - self.config.epsilon
        )

    def _cluster_chunk(
        self, chunk: np.ndarray, warm: GaussianMixture | None
    ) -> list[Message]:
        """EM on the chunk; installs and announces the new current model.

        A slice of the chunk is held out (``reference_holdout``) so the
        reference ``AvgPr_0`` / ``σ̂`` are estimated out of sample.
        """
        train, validation = self._split_reference(chunk)
        with self._obs.span(
            "site.cluster", site=self.site_id, records=int(chunk.shape[0])
        ):
            if self.config.handle_missing and np.isnan(train).any():
                # Explicit cold dispatch: the missing-data trainer has
                # no incremental variant (see repro.core.missing).
                from repro.core.missing import fit_em_missing

                result = fit_em_missing(
                    train, self.config.em, self._rng, initial=warm
                )
            elif self.config.auto_k is not None:
                from repro.core.selection import select_k

                result = select_k(
                    train,
                    self.config.auto_k,
                    self.config.em,
                    self._rng,
                    initial=warm,
                ).best
            else:
                result = fit_em(
                    train,
                    self.config.em,
                    self._rng,
                    initial=warm,
                    observer=self._obs,
                )
        self._last_fit_iterations = result.n_iter
        stats = None
        if self.config.em.incremental and not np.isnan(train).any():
            stats = SufficientStats.from_mixture(
                result.mixture,
                float(train.shape[0]),
                diagonal=self.config.em.diagonal,
            )
        return self._install_model(
            chunk_len=chunk.shape[0],
            mixture=result.mixture,
            validation=validation,
            log_likelihood=result.log_likelihood,
            n_iter=result.n_iter,
            converged=result.converged,
            stats=stats,
        )

    def _install_model(
        self,
        *,
        chunk_len: int,
        mixture: GaussianMixture,
        validation: np.ndarray,
        log_likelihood: float,
        n_iter: int,
        converged: bool,
        stats: SufficientStats | None = None,
    ) -> list[Message]:
        """Install a freshly trained model and announce it.

        Shared tail of the cold (:meth:`_cluster_chunk`) and warm
        (:meth:`_refit_warm`) rungs: reference statistics on the
        held-out slice, model-list bookkeeping, the ``site.cluster``
        trace event and the full ``ModelUpdateMessage``.
        """
        self.stats.n_clusterings += 1
        reference = average_log_likelihood(
            mixture, validation, self.config.variant
        )
        self._current = ModelEntry(
            model_id=self._allocate_model_id(),
            mixture=mixture,
            reference_likelihood=reference,
            reference_std=log_density_spread(
                mixture, validation, self.config.variant
            ),
            reference_size=validation.shape[0],
            count=chunk_len,
            trained_at=self._position,
            stats=stats,
        )
        self._current_started_at = self._position - chunk_len
        if self._obs.enabled:
            self._obs.inc("site.clusterings", site=self.site_id)
            self._obs.event(
                "site.cluster",
                site=self.site_id,
                model=self._current.model_id,
                records=chunk_len,
                log_likelihood=log_likelihood,
                n_iter=n_iter,
                converged=converged,
            )
        message = ModelUpdateMessage(
            site_id=self.site_id,
            model_id=self._current.model_id,
            time=self._position,
            mixture=mixture,
            count=self._current.count,
            reference_likelihood=log_likelihood,
        )
        return self._send([message])

    def _try_reactivate(self, chunk: np.ndarray) -> list[Message] | None:
        """Multi-test: match the chunk against archived models.

        Returns the emitted messages on a match, ``None`` when no
        archived model fits (or ``c_max`` allows no extra tests).

        Archived mixtures are immutable, so the Cholesky/``L⁻¹``
        factors and stacked batch kernels behind each ``fit_test``
        density evaluation are computed once per model and reused
        across every chunk tested against it (measured by the
        ``chunk_test_cached`` bench scenario and pinned by a
        factorization-count regression test).

        Candidate evaluation is bounded: at most ``c_max - 1`` models,
        further capped by ``reactivate_limit``, scanned most recent
        first -- each candidate costs a full ``J_fit`` pass over the
        chunk, so an unbounded scan of a deep archive would turn the
        multi-test into its own latency spike.
        """
        budget = self.config.c_max - 1
        if self.config.reactivate_limit is not None:
            budget = min(budget, self.config.reactivate_limit)
        if budget <= 0 or not self._archive:
            return None
        for entry in reversed(self._archive[-budget:]):
            result = self._fit_test(entry, chunk, target="archive")
            if not result.fits:
                continue
            # The archived model explains the chunk: swap it back in.
            # Remove the entry *before* retiring the current model --
            # otherwise a full archive's retention bound could evict
            # the very model being reactivated and count it as lost.
            self._archive = [e for e in self._archive if e is not entry]
            self._retire_current(chunk.shape[0])
            entry.count += chunk.shape[0]
            self._current = entry
            self._current_started_at = self._position - chunk.shape[0]
            self.stats.n_reactivations += 1
            if self._obs.enabled:
                self._obs.inc("site.reactivations", site=self.site_id)
                self._obs.event(
                    "site.reactivate",
                    site=self.site_id,
                    model=entry.model_id,
                    count_delta=int(chunk.shape[0]),
                )
            message = WeightUpdateMessage(
                site_id=self.site_id,
                model_id=entry.model_id,
                time=self._position,
                count_delta=chunk.shape[0],
            )
            return self._send([message])
        return None

    def _retire_current(self, failing_chunk_len: int) -> None:
        """Archive the current model and close its event-table entry.

        The chunk that failed the test belongs to the *next* model, so
        the closed span ends where that chunk began.
        """
        assert self._current is not None
        end = self._position - failing_chunk_len
        span_recorded = end > self._current_started_at
        if span_recorded:
            self.events.append(
                start=self._current_started_at,
                end=end,
                model_id=self._current.model_id,
            )
        self._archive.append(self._current)
        self.stats.n_archived += 1
        if self._obs.enabled:
            self._obs.inc("site.archives", site=self.site_id)
            self._obs.event(
                "site.archive",
                site=self.site_id,
                model=self._current.model_id,
                start=self._current_started_at,
                end=end,
                span_recorded=span_recorded,
            )
        limit = self.config.archive_limit
        if limit is not None and len(self._archive) > limit:
            # LRU-by-reactivation: reactivation re-appends a model at
            # the tail, so the head is the least recently *used* model
            # and the recent entries the ladder scans survive.
            evicted = self._archive.pop(0)
            self.stats.archive_evictions += 1
            if self._obs.enabled:
                self._obs.inc("site.archive_evictions", site=self.site_id)
                self._obs.event(
                    "site.archive_evict",
                    site=self.site_id,
                    model=evicted.model_id,
                    archive_size=len(self._archive),
                )
        self._current = None

    def _fit_test(self, entry: ModelEntry, chunk: np.ndarray, target: str):
        """One counted, traced ``J_fit`` evaluation against ``entry``."""
        self.stats.n_tests += 1
        result = fit_test(
            entry.mixture,
            chunk,
            entry.reference_likelihood,
            self._threshold(entry, chunk.shape[0]),
            self.config.variant,
        )
        if result.fits:
            self.stats.n_tests_passed += 1
        obs = self._obs
        if obs.enabled:
            obs.inc(
                "site.chunk_tests",
                site=self.site_id,
                result="pass" if result.fits else "fail",
            )
            obs.event(
                "site.chunk_test",
                site=self.site_id,
                model=entry.model_id,
                target=target,
                passed=result.fits,
                j_fit=result.j_fit,
                threshold=result.epsilon,
                chunk=int(chunk.shape[0]),
            )
        return result

    def _threshold(self, entry: ModelEntry, chunk_len: int) -> float:
        """Effective fit-test tolerance for one model/chunk pair."""
        if not self.config.adaptive_test:
            return self.config.epsilon
        return adaptive_threshold(
            self.config.epsilon,
            self.config.delta,
            entry.reference_std,
            chunk_len,
            m_ref=entry.reference_size,
        )

    def _split_reference(
        self, chunk: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split a chunk into (train, validation) for the reference.

        Falls back to using the whole chunk for both when the holdout
        is disabled or the chunk is too small to spare records.
        """
        fraction = self.config.reference_holdout
        n = chunk.shape[0]
        n_val = int(n * fraction)
        n_components = self.config.em.n_components
        if fraction <= 0.0 or n_val < 8 or n - n_val < 2 * n_components:
            return chunk, chunk
        permutation = self._rng.permutation(n)
        validation = chunk[permutation[:n_val]]
        train = chunk[permutation[n_val:]]
        return train, validation

    def _allocate_model_id(self) -> int:
        model_id = self._next_model_id
        self._next_model_id += 1
        return model_id

    def _send(self, messages: list[Message]) -> list[Message]:
        for message in messages:
            self.stats.register_message(message)
            if self._obs.enabled:
                self._obs.inc(
                    "site.messages",
                    site=self.site_id,
                    kind=type(message).__name__,
                )
                self._obs.inc(
                    "site.payload_bytes",
                    message.payload_bytes(),
                    site=self.site_id,
                )
            if self._emit is not None:
                self._emit(message)
        return messages

    def __repr__(self) -> str:
        return (
            f"RemoteSite(id={self.site_id}, chunk={self.chunk}, "
            f"models={len(self.all_models)}, "
            f"records={self.stats.records_seen})"
        )
