"""Pyramidal-time-frame snapshots (the CluStream strategy of §7).

Section 7 contrasts CluDistream's event-driven model maintenance with
CluStream's *static* strategy: "When a pyramid time arrives, a snapshot
of current cluster model (micro-clusters) is stored.  This strategy may
introduce redundant records, while missing some important events."

To let a benchmark measure that claim, this module implements the
classic pyramidal time frame of Aggarwal et al.:

* a snapshot taken at tick ``t`` has *order* ``i`` when ``t`` is
  divisible by ``α^i`` (the largest such ``i`` wins);
* at most ``α^l + 1`` snapshots are retained per order (``l`` is the
  ``capacity`` knob), older ones of the same order are discarded.

Stored payloads are opaque to the store; the comparison benchmark
stores the site's current model id at each chunk boundary and answers
"which model was active at time t?" from the closest retained snapshot,
scoring it against the event table's exact answer.  The
:class:`~repro.obs.history.ModelHistory` time-travel layer builds on
the same store, which is why eviction accounting, targeted eviction
(:meth:`PyramidalSnapshotStore.pop_oldest`) and checkpoint round-trips
(:meth:`PyramidalSnapshotStore.to_dict`) live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

__all__ = ["PyramidalSnapshotStore", "Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """One retained snapshot: a tick, its pyramid order and a payload."""

    tick: int
    order: int
    payload: object


class PyramidalSnapshotStore:
    """The pyramidal time frame of CluStream.

    Parameters
    ----------
    alpha:
        Pyramid base (≥ 2).  Snapshot order ``i`` covers ticks divisible
        by ``alpha**i``.
    capacity:
        Retention exponent ``l``: at most ``alpha**l + 1`` snapshots are
        kept per order.
    """

    def __init__(self, alpha: int = 2, capacity: int = 1) -> None:
        if alpha < 2:
            raise ValueError("alpha must be at least 2")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.alpha = alpha
        self.capacity = capacity
        self._per_order_limit = alpha**capacity + 1
        self._orders: dict[int, list[Snapshot]] = {}
        self.offered = 0
        self.stored_total = 0
        #: Snapshots discarded by the per-order retention cap.
        self.evicted = 0

    def order_of(self, tick: int) -> int:
        """Highest ``i`` with ``alpha**i`` dividing ``tick`` (0 otherwise)."""
        if tick <= 0:
            return 0
        order = 0
        while tick % self.alpha == 0:
            tick //= self.alpha
            order += 1
        return order

    def offer(self, tick: int, payload: object) -> bool:
        """Present the state at ``tick``; returns ``True`` when stored.

        Every positive tick is stored (at its natural order); retention
        then evicts the oldest snapshot of that order beyond the
        per-order limit -- exactly the CluStream scheme.
        """
        if tick < 0:
            raise ValueError("ticks must be non-negative")
        self.offered += 1
        if tick == 0:
            return False
        order = self.order_of(tick)
        bucket = self._orders.setdefault(order, [])
        bucket.append(Snapshot(tick=tick, order=order, payload=payload))
        self.stored_total += 1
        if len(bucket) > self._per_order_limit:
            bucket.pop(0)
            self.evicted += 1
        return True

    def pop_oldest(self) -> Snapshot | None:
        """Discard and return the globally oldest retained snapshot.

        Targeted eviction for callers enforcing a bound the per-order
        caps cannot express (e.g. a byte budget); ``None`` when empty.
        """
        oldest_order: int | None = None
        for order, bucket in self._orders.items():
            if not bucket:
                continue
            if (
                oldest_order is None
                or bucket[0].tick < self._orders[oldest_order][0].tick
            ):
                oldest_order = order
        if oldest_order is None:
            return None
        snapshot = self._orders[oldest_order].pop(0)
        if not self._orders[oldest_order]:
            del self._orders[oldest_order]
        self.evicted += 1
        return snapshot

    def snapshots(self) -> list[Snapshot]:
        """All retained snapshots, sorted by tick."""
        everything = [
            snapshot
            for bucket in self._orders.values()
            for snapshot in bucket
        ]
        everything.sort(key=lambda snapshot: snapshot.tick)
        return everything

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._orders.values())

    def __iter__(self) -> Iterator[Snapshot]:
        return iter(self.snapshots())

    def closest(self, tick: int) -> Snapshot:
        """The retained snapshot whose tick is nearest to ``tick``.

        Raises
        ------
        ValueError
            If nothing has been stored yet.
        """
        retained = self.snapshots()
        if not retained:
            raise ValueError("no snapshots retained")
        return min(retained, key=lambda snapshot: abs(snapshot.tick - tick))

    def at_or_before(self, tick: int) -> Snapshot | None:
        """The newest retained snapshot with ``snapshot.tick <= tick``.

        Time-travel queries prefer this over :meth:`closest`: a later
        snapshot reflects state the queried moment had not reached yet.
        Returns ``None`` when every retained snapshot is newer.
        """
        best: Snapshot | None = None
        for bucket in self._orders.values():
            for snapshot in bucket:
                if snapshot.tick <= tick and (
                    best is None or snapshot.tick > best.tick
                ):
                    best = snapshot
        return best

    def ticks(self) -> list[int]:
        """Retained ticks, ascending."""
        return [snapshot.tick for snapshot in self.snapshots()]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe state; payloads must themselves be JSON-safe."""
        return {
            "alpha": self.alpha,
            "capacity": self.capacity,
            "offered": self.offered,
            "stored_total": self.stored_total,
            "evicted": self.evicted,
            "snapshots": [
                [snapshot.tick, snapshot.payload]
                for snapshot in self.snapshots()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PyramidalSnapshotStore":
        """Inverse of :meth:`to_dict`: the exact retained set, counters
        included, is reinstated without re-running retention."""
        store = cls(
            alpha=int(payload["alpha"]), capacity=int(payload["capacity"])
        )
        for tick, item in payload["snapshots"]:
            tick = int(tick)
            order = store.order_of(tick)
            store._orders.setdefault(order, []).append(
                Snapshot(tick=tick, order=order, payload=item)
            )
        store.offered = int(payload.get("offered", 0))
        store.stored_total = int(payload.get("stored_total", 0))
        store.evicted = int(payload.get("evicted", 0))
        return store
