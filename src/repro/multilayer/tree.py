"""Tree-structured hierarchical CluDistream (paper section 7).

The flat star topology generalises to a communication tree: stream
sources sit at the leaves, every internal node runs the coordinator
logic over its children, and an internal node uploads its summary to
*its* parent only when its locally-observed global mixture changes --
the same stability property that keeps the flat protocol quiet, applied
recursively.

Node ids double as message ``site_id`` values on each hop, so the
standard :mod:`repro.core.protocol` vocabulary and byte accounting work
unchanged on every level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coordinator import Coordinator, CoordinatorConfig
from repro.core.mixture import GaussianMixture
from repro.core.protocol import Message, ModelUpdateMessage
from repro.core.remote import RemoteSite, RemoteSiteConfig

__all__ = ["InternalNode", "LeafNode", "TreeNetwork", "mixture_change"]


def mixture_change(old: GaussianMixture | None, new: GaussianMixture) -> float:
    """A cheap change score between two mixtures.

    Component counts differing scores ``inf`` (a structural change
    always uploads).  Otherwise components are greedily matched by mean
    distance and the score is the largest matched symmetric Mahalanobis
    distance plus the total weight shift -- zero for identical models.
    """
    if old is None or old.n_components != new.n_components:
        return float("inf")
    remaining = list(range(new.n_components))
    worst = 0.0
    weight_shift = 0.0
    for i, old_component in enumerate(old.components):
        best_j = min(
            remaining,
            key=lambda j: float(
                np.linalg.norm(old_component.mean - new.components[j].mean)
            ),
        )
        remaining.remove(best_j)
        worst = max(
            worst,
            old_component.symmetric_mahalanobis_sq(new.components[best_j]),
        )
        weight_shift += abs(old.weights[i] - new.weights[best_j])
    return worst + weight_shift


@dataclass
class LeafNode:
    """A leaf of the tree: one remote site observing a stream."""

    node_id: int
    site: RemoteSite
    parent_id: int | None = None

    def process_record(self, record: np.ndarray) -> list[Message]:
        return self.site.process_record(record)


@dataclass
class InternalNode:
    """An internal node: coordinator over children, site toward parent.

    Attributes
    ----------
    node_id:
        Used as the ``site_id`` on messages sent up to the parent.
    coordinator:
        Aggregates the children's synopses.
    upload_threshold:
        Minimal :func:`mixture_change` score that triggers an upload;
        ``0.0`` uploads on every observable change.
    """

    node_id: int
    coordinator: Coordinator
    parent_id: int | None = None
    upload_threshold: float = 0.05
    _last_uploaded: GaussianMixture | None = field(default=None, repr=False)
    _next_model_id: int = 0
    messages_up: int = 0
    bytes_up: int = 0

    def handle_child_message(self, message: Message) -> list[Message]:
        """Absorb a child's message; maybe emit an upload to the parent."""
        self.coordinator.handle_message(message)
        try:
            summary = self.coordinator.global_mixture()
        except ValueError:
            return []
        if mixture_change(self._last_uploaded, summary) < self.upload_threshold:
            return []
        self._last_uploaded = summary
        upload = ModelUpdateMessage(
            site_id=self.node_id,
            model_id=self._allocate_model_id(),
            time=message.time,
            mixture=summary,
            count=max(1, round(sum(c.weight for c in self.coordinator.clusters))),
            reference_likelihood=0.0,
        )
        self.messages_up += 1
        self.bytes_up += upload.payload_bytes()
        return [upload]

    def _allocate_model_id(self) -> int:
        model_id = self._next_model_id
        self._next_model_id += 1
        return model_id


class TreeNetwork:
    """A communication tree running CluDistream on every level.

    Build the topology with :meth:`add_internal` / :meth:`add_leaf`
    (parents must exist before their children), then feed leaf streams
    through :meth:`feed`.  Messages propagate synchronously up the tree.

    Parameters
    ----------
    site_config / coordinator_config:
        Templates applied to every leaf site and internal coordinator.
    seed:
        Base seed for per-node randomness.
    """

    def __init__(
        self,
        site_config: RemoteSiteConfig | None = None,
        coordinator_config: CoordinatorConfig | None = None,
        seed: int = 0,
    ) -> None:
        self._site_config = site_config or RemoteSiteConfig()
        self._coordinator_config = coordinator_config or CoordinatorConfig()
        self._seed = seed
        self._internals: dict[int, InternalNode] = {}
        self._leaves: dict[int, LeafNode] = {}
        self._root_id: int | None = None

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_internal(
        self,
        node_id: int,
        parent_id: int | None = None,
        upload_threshold: float = 0.05,
    ) -> InternalNode:
        """Add an internal (coordinator) node; ``parent_id=None`` = root.

        ``upload_threshold`` sets how much the node's global mixture must
        change (per :func:`mixture_change`) before it uploads to its
        parent -- larger values trade upward freshness for bandwidth.
        """
        self._check_new_id(node_id)
        if parent_id is None:
            if self._root_id is not None:
                raise ValueError("tree already has a root")
            self._root_id = node_id
        else:
            self._require_internal(parent_id)
        node = InternalNode(
            node_id=node_id,
            coordinator=Coordinator(
                self._coordinator_config,
                rng=np.random.default_rng(self._seed + 50_000 + node_id),
            ),
            parent_id=parent_id,
            upload_threshold=upload_threshold,
        )
        self._internals[node_id] = node
        return node

    def add_leaf(self, node_id: int, parent_id: int) -> LeafNode:
        """Add a leaf (stream-observing) node under an internal node."""
        self._check_new_id(node_id)
        self._require_internal(parent_id)
        node = LeafNode(
            node_id=node_id,
            site=RemoteSite(
                site_id=node_id,
                config=self._site_config,
                rng=np.random.default_rng(self._seed + node_id),
            ),
            parent_id=parent_id,
        )
        self._leaves[node_id] = node
        return node

    @property
    def root(self) -> InternalNode:
        if self._root_id is None:
            raise ValueError("tree has no root")
        return self._internals[self._root_id]

    @property
    def leaves(self) -> tuple[LeafNode, ...]:
        return tuple(self._leaves.values())

    @property
    def internals(self) -> tuple[InternalNode, ...]:
        return tuple(self._internals.values())

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------
    def feed(self, leaf_id: int, record: np.ndarray) -> None:
        """Deliver one record to a leaf; propagate messages to the root."""
        if leaf_id not in self._leaves:
            raise KeyError(f"unknown leaf {leaf_id}")
        leaf = self._leaves[leaf_id]
        messages = leaf.process_record(record)
        self._propagate(leaf.parent_id, messages)

    def _propagate(
        self, node_id: int | None, messages: list[Message]
    ) -> None:
        while node_id is not None and messages:
            node = self._internals[node_id]
            uploads: list[Message] = []
            for message in messages:
                uploads.extend(node.handle_child_message(message))
            messages = uploads
            node_id = node.parent_id

    def global_mixture(self) -> GaussianMixture:
        """The root's view of the union of all leaf streams."""
        return self.root.coordinator.global_mixture()

    def total_uplink_bytes(self) -> int:
        """Bytes crossing all tree edges (leaf uplinks + internal uplinks)."""
        leaf_bytes = sum(
            leaf.site.stats.bytes_sent for leaf in self._leaves.values()
        )
        internal_bytes = sum(
            node.bytes_up for node in self._internals.values()
        )
        return leaf_bytes + internal_bytes

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_new_id(self, node_id: int) -> None:
        if node_id in self._internals or node_id in self._leaves:
            raise ValueError(f"node id {node_id} already used")

    def _require_internal(self, node_id: int) -> None:
        if node_id not in self._internals:
            raise ValueError(f"parent {node_id} is not an internal node")
