"""Multi-layer (tree-structured) network extension (paper section 7).

"A more complex and general distributed streams scenario is the
tree-structured hierarchy of the communication network.  By running the
CluDistream between each internal node and its children, we can compute
the Gaussian mixture model over the union of streams on the leaf nodes."

:mod:`repro.multilayer.tree` implements exactly that: leaf nodes run
:class:`~repro.core.remote.RemoteSite`, internal nodes run a
:class:`~repro.core.coordinator.Coordinator` over their children and
forward their summary upward only when their locally-observed global
mixture changes.
"""

from repro.multilayer.tree import InternalNode, LeafNode, TreeNetwork, mixture_change

__all__ = ["InternalNode", "LeafNode", "TreeNetwork", "mixture_change"]
