"""Numerical support routines for the CluDistream reproduction.

The paper leans on three pieces of numerical machinery that do not belong
to the clustering logic itself:

* robust covariance linear algebra (inverses and log-determinants of
  near-singular matrices produced by small EM responsibilities),
* the downhill-simplex (Nelder-Mead) minimiser of [19] used to fit merged
  mixture components on the coordinator, and
* numerical integration of the L1 accuracy-loss ``l(x)`` between mixture
  densities.

Everything here is implemented from scratch on top of ``numpy`` so that
the rest of the library has no hidden dependencies on SciPy internals.
"""

from repro.numerics.integrate import (
    l1_density_distance,
    monte_carlo_l1,
    trapezoid_grid,
)
from repro.numerics.linalg import (
    LOG_2PI,
    SPDFactors,
    batch_log_pdf,
    batch_mahalanobis_sq,
    ensure_spd,
    log_det_spd,
    logsumexp,
    mahalanobis_sq,
    regularize_covariance,
    safe_inverse,
    spd_factorize,
)
from repro.numerics.simplex import NelderMeadResult, nelder_mead

__all__ = [
    "LOG_2PI",
    "NelderMeadResult",
    "SPDFactors",
    "batch_log_pdf",
    "batch_mahalanobis_sq",
    "ensure_spd",
    "l1_density_distance",
    "log_det_spd",
    "logsumexp",
    "mahalanobis_sq",
    "monte_carlo_l1",
    "nelder_mead",
    "regularize_covariance",
    "safe_inverse",
    "spd_factorize",
    "trapezoid_grid",
]
