"""Robust linear algebra for Gaussian covariance matrices.

EM on small data chunks routinely produces covariance estimates that are
ill-conditioned or (through responsibilities collapsing onto a handful of
records) outright singular.  The paper sidesteps the issue with a
footnote -- "we can exclude these situations from consideration" -- but a
production library cannot, so every covariance that enters a density
computation passes through :func:`regularize_covariance` and is factored
once by :func:`spd_factorize`.  All downstream quantities (inverse,
log-determinant, squared Mahalanobis distances) are derived from the
Cholesky factor, which is both faster and far more numerically stable
than forming explicit inverses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SPDFactors",
    "ensure_spd",
    "log_det_spd",
    "mahalanobis_sq",
    "regularize_covariance",
    "safe_inverse",
    "spd_factorize",
]

#: Default ridge added (relative to the mean diagonal) when a covariance
#: matrix fails its Cholesky factorisation.
DEFAULT_RIDGE = 1e-6

#: Hard floor on covariance diagonal entries.  Prevents zero-variance
#: attributes (the degenerate case the paper's footnote excludes) from
#: producing infinite densities.
VARIANCE_FLOOR = 1e-10


def ensure_spd(matrix: np.ndarray) -> np.ndarray:
    """Return a symmetric copy of ``matrix`` with floored diagonal.

    Parameters
    ----------
    matrix:
        Square array, expected to be approximately symmetric (as produced
        by an EM M-step).

    Raises
    ------
    ValueError
        If ``matrix`` is not square or contains non-finite entries.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"covariance must be square, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("covariance contains non-finite entries")
    sym = (arr + arr.T) / 2.0
    diag = np.diag(sym).copy()
    np.fill_diagonal(sym, np.maximum(diag, VARIANCE_FLOOR))
    return sym


def regularize_covariance(
    matrix: np.ndarray,
    ridge: float = DEFAULT_RIDGE,
    max_attempts: int = 12,
) -> np.ndarray:
    """Make ``matrix`` positive definite by adding an escalating ridge.

    The ridge starts at ``ridge * mean(diag)`` and grows by a factor of
    ten until ``numpy.linalg.cholesky`` succeeds.  With ``max_attempts``
    of 12 the final ridge exceeds the matrix scale itself, so failure is
    only possible for pathological (non-finite) input, which
    :func:`ensure_spd` rejects first.
    """
    sym = ensure_spd(matrix)
    # Scale by the full matrix magnitude, not just the diagonal: a
    # floored diagonal with dominant off-diagonal entries needs a ridge
    # comparable to those entries to become positive definite.
    scale = max(float(np.mean(np.diag(sym))), float(np.max(np.abs(sym))))
    if scale <= 0.0:
        scale = 1.0
    bump = ridge * scale
    candidate = sym
    # Cholesky can numerically succeed on an exactly singular matrix, so
    # a successful factorisation must also keep its pivots well clear of
    # zero before we accept the candidate.
    pivot_floor = 1e-6 * np.sqrt(scale)
    for _ in range(max_attempts):
        try:
            factor = np.linalg.cholesky(candidate)
            if float(np.min(np.diag(factor))) > pivot_floor:
                return candidate
        except np.linalg.LinAlgError:
            pass
        candidate = sym + bump * np.eye(sym.shape[0])
        bump *= 10.0
    raise np.linalg.LinAlgError(
        "could not regularize covariance into positive definiteness"
    )


@dataclass(frozen=True)
class SPDFactors:
    """Cached Cholesky factorisation of a covariance matrix.

    Attributes
    ----------
    covariance:
        The (regularised) symmetric positive-definite matrix.
    cholesky:
        Lower-triangular ``L`` with ``L @ L.T == covariance``.
    log_det:
        ``log |covariance|`` computed from the factor diagonal.
    """

    covariance: np.ndarray
    cholesky: np.ndarray
    log_det: float
    _inverse: list = field(default_factory=list, repr=False, compare=False)

    @property
    def dim(self) -> int:
        """Dimensionality ``d`` of the underlying Gaussian."""
        return self.covariance.shape[0]

    def inverse(self) -> np.ndarray:
        """Explicit inverse, computed lazily and cached.

        Only the coordinator's merge/split criteria need an explicit
        ``Σ⁻¹`` (to form ``Σ_i⁻¹ + Σ_j⁻¹``); density evaluation goes
        through triangular solves instead.
        """
        if not self._inverse:
            identity = np.eye(self.dim)
            half = np.linalg.solve(self.cholesky, identity)
            self._inverse.append(half.T @ half)
        return self._inverse[0]

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``covariance @ x = rhs`` via two triangular solves."""
        from scipy.linalg import solve_triangular

        half = solve_triangular(self.cholesky, rhs, lower=True)
        return solve_triangular(self.cholesky.T, half, lower=False)

    def whiten(self, centered: np.ndarray) -> np.ndarray:
        """Map centred rows ``x - μ`` to whitened coordinates ``L⁻¹(x-μ)ᵀ``.

        Parameters
        ----------
        centered:
            Array of shape ``(n, d)`` of already-centred records.

        Returns
        -------
        numpy.ndarray
            Shape ``(d, n)`` whitened coordinates; squared column norms
            are the squared Mahalanobis distances.
        """
        from scipy.linalg import solve_triangular

        return solve_triangular(self.cholesky, centered.T, lower=True)


def spd_factorize(matrix: np.ndarray, ridge: float = DEFAULT_RIDGE) -> SPDFactors:
    """Regularise ``matrix`` and return its cached Cholesky factors."""
    cov = regularize_covariance(matrix, ridge=ridge)
    chol = np.linalg.cholesky(cov)
    log_det = 2.0 * float(np.sum(np.log(np.diag(chol))))
    return SPDFactors(covariance=cov, cholesky=chol, log_det=log_det)


def log_det_spd(matrix: np.ndarray) -> float:
    """``log |matrix|`` for a (regularisable) SPD matrix."""
    return spd_factorize(matrix).log_det


def safe_inverse(matrix: np.ndarray, ridge: float = DEFAULT_RIDGE) -> np.ndarray:
    """Numerically safe inverse of a covariance matrix.

    Equivalent to ``numpy.linalg.inv`` after :func:`regularize_covariance`
    but computed from the Cholesky factor.
    """
    return spd_factorize(matrix, ridge=ridge).inverse()


def mahalanobis_sq(
    points: np.ndarray,
    mean: np.ndarray,
    covariance: np.ndarray | SPDFactors,
) -> np.ndarray:
    """Squared Mahalanobis distance of each row of ``points`` from ``mean``.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` or ``(d,)``.
    mean:
        Gaussian mean of shape ``(d,)``.
    covariance:
        Either a raw ``(d, d)`` covariance or pre-computed
        :class:`SPDFactors`.

    Returns
    -------
    numpy.ndarray
        Shape ``(n,)`` distances (a scalar array for 1-d input).
    """
    factors = (
        covariance
        if isinstance(covariance, SPDFactors)
        else spd_factorize(covariance)
    )
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    centered = pts - np.asarray(mean, dtype=float)[None, :]
    whitened = factors.whiten(centered)
    return np.sum(whitened * whitened, axis=0)
