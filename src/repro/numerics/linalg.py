"""Robust linear algebra for Gaussian covariance matrices.

EM on small data chunks routinely produces covariance estimates that are
ill-conditioned or (through responsibilities collapsing onto a handful of
records) outright singular.  The paper sidesteps the issue with a
footnote -- "we can exclude these situations from consideration" -- but a
production library cannot, so every covariance that enters a density
computation passes through :func:`regularize_covariance` and is factored
once by :func:`spd_factorize`.  All downstream quantities (inverse,
log-determinant, squared Mahalanobis distances) are derived from the
Cholesky factor, which is both faster and far more numerically stable
than forming explicit inverses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "LOG_2PI",
    "SPDFactors",
    "batch_log_pdf",
    "batch_mahalanobis_sq",
    "ensure_spd",
    "log_det_spd",
    "logsumexp",
    "mahalanobis_sq",
    "regularize_covariance",
    "safe_inverse",
    "spd_factorize",
]

LOG_2PI = float(np.log(2.0 * np.pi))

#: Default ridge added (relative to the mean diagonal) when a covariance
#: matrix fails its Cholesky factorisation.
DEFAULT_RIDGE = 1e-6

#: Hard floor on covariance diagonal entries.  Prevents zero-variance
#: attributes (the degenerate case the paper's footnote excludes) from
#: producing infinite densities.
VARIANCE_FLOOR = 1e-10


def ensure_spd(matrix: np.ndarray) -> np.ndarray:
    """Return a symmetric copy of ``matrix`` with floored diagonal.

    Parameters
    ----------
    matrix:
        Square array, expected to be approximately symmetric (as produced
        by an EM M-step).

    Raises
    ------
    ValueError
        If ``matrix`` is not square or contains non-finite entries.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"covariance must be square, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("covariance contains non-finite entries")
    sym = (arr + arr.T) / 2.0
    diag = np.diag(sym).copy()
    np.fill_diagonal(sym, np.maximum(diag, VARIANCE_FLOOR))
    return sym


def regularize_covariance(
    matrix: np.ndarray,
    ridge: float = DEFAULT_RIDGE,
    max_attempts: int = 12,
) -> np.ndarray:
    """Make ``matrix`` positive definite by adding an escalating ridge.

    The ridge starts at ``ridge * mean(diag)`` and grows by a factor of
    ten until ``numpy.linalg.cholesky`` succeeds.  With ``max_attempts``
    of 12 the final ridge exceeds the matrix scale itself, so failure is
    only possible for pathological (non-finite) input, which
    :func:`ensure_spd` rejects first.
    """
    sym = ensure_spd(matrix)
    # Scale by the full matrix magnitude, not just the diagonal: a
    # floored diagonal with dominant off-diagonal entries needs a ridge
    # comparable to those entries to become positive definite.
    scale = max(float(np.mean(np.diag(sym))), float(np.max(np.abs(sym))))
    if scale <= 0.0:
        scale = 1.0
    bump = ridge * scale
    candidate = sym
    # Cholesky can numerically succeed on an exactly singular matrix, so
    # a successful factorisation must also keep its pivots well clear of
    # zero before we accept the candidate.
    pivot_floor = 1e-6 * np.sqrt(scale)
    for _ in range(max_attempts):
        try:
            factor = np.linalg.cholesky(candidate)
            if float(np.min(np.diag(factor))) > pivot_floor:
                return candidate
        except np.linalg.LinAlgError:
            pass
        candidate = sym + bump * np.eye(sym.shape[0])
        bump *= 10.0
    raise np.linalg.LinAlgError(
        "could not regularize covariance into positive definiteness"
    )


@dataclass(frozen=True)
class SPDFactors:
    """Cached Cholesky factorisation of a covariance matrix.

    Attributes
    ----------
    covariance:
        The (regularised) symmetric positive-definite matrix.
    cholesky:
        Lower-triangular ``L`` with ``L @ L.T == covariance``.
    log_det:
        ``log |covariance|`` computed from the factor diagonal.
    """

    covariance: np.ndarray
    cholesky: np.ndarray
    log_det: float
    _inverse: list = field(default_factory=list, repr=False, compare=False)
    _inverse_cholesky: list = field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def dim(self) -> int:
        """Dimensionality ``d`` of the underlying Gaussian."""
        return self.covariance.shape[0]

    def inverse(self) -> np.ndarray:
        """Explicit inverse, computed lazily and cached.

        Only the coordinator's merge/split criteria need an explicit
        ``Σ⁻¹`` (to form ``Σ_i⁻¹ + Σ_j⁻¹``); density evaluation goes
        through triangular solves instead.
        """
        if not self._inverse:
            identity = np.eye(self.dim)
            half = np.linalg.solve(self.cholesky, identity)
            self._inverse.append(half.T @ half)
        return self._inverse[0]

    def inverse_cholesky(self) -> np.ndarray:
        """Lower-triangular ``L⁻¹``, computed lazily and cached.

        This is the whitening matrix of the batched density kernels
        (:func:`batch_log_pdf`): stacking each component's ``L⁻¹`` lets
        one ``einsum`` evaluate every component's Mahalanobis distance
        at once, and the cache means repeated chunk tests against the
        same archived model never re-factorise anything.
        """
        if not self._inverse_cholesky:
            from scipy.linalg import solve_triangular

            inv = solve_triangular(
                self.cholesky, np.eye(self.dim), lower=True
            )
            inv.setflags(write=False)
            self._inverse_cholesky.append(inv)
        return self._inverse_cholesky[0]

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``covariance @ x = rhs`` via two triangular solves."""
        from scipy.linalg import solve_triangular

        half = solve_triangular(self.cholesky, rhs, lower=True)
        return solve_triangular(self.cholesky.T, half, lower=False)

    def whiten(self, centered: np.ndarray) -> np.ndarray:
        """Map centred rows ``x - μ`` to whitened coordinates ``L⁻¹(x-μ)ᵀ``.

        Parameters
        ----------
        centered:
            Array of shape ``(n, d)`` of already-centred records.

        Returns
        -------
        numpy.ndarray
            Shape ``(d, n)`` whitened coordinates; squared column norms
            are the squared Mahalanobis distances.
        """
        from scipy.linalg import solve_triangular

        return solve_triangular(self.cholesky, centered.T, lower=True)


def spd_factorize(matrix: np.ndarray, ridge: float = DEFAULT_RIDGE) -> SPDFactors:
    """Regularise ``matrix`` and return its cached Cholesky factors."""
    cov = regularize_covariance(matrix, ridge=ridge)
    chol = np.linalg.cholesky(cov)
    log_det = 2.0 * float(np.sum(np.log(np.diag(chol))))
    return SPDFactors(covariance=cov, cholesky=chol, log_det=log_det)


def log_det_spd(matrix: np.ndarray) -> float:
    """``log |matrix|`` for a (regularisable) SPD matrix."""
    return spd_factorize(matrix).log_det


def safe_inverse(matrix: np.ndarray, ridge: float = DEFAULT_RIDGE) -> np.ndarray:
    """Numerically safe inverse of a covariance matrix.

    Equivalent to ``numpy.linalg.inv`` after :func:`regularize_covariance`
    but computed from the Cholesky factor.
    """
    return spd_factorize(matrix, ridge=ridge).inverse()


def mahalanobis_sq(
    points: np.ndarray,
    mean: np.ndarray,
    covariance: np.ndarray | SPDFactors,
) -> np.ndarray:
    """Squared Mahalanobis distance of each row of ``points`` from ``mean``.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` or ``(d,)``.
    mean:
        Gaussian mean of shape ``(d,)``.
    covariance:
        Either a raw ``(d, d)`` covariance or pre-computed
        :class:`SPDFactors`.

    Returns
    -------
    numpy.ndarray
        Shape ``(n,)`` distances (a scalar array for 1-d input).
    """
    factors = (
        covariance
        if isinstance(covariance, SPDFactors)
        else spd_factorize(covariance)
    )
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    centered = pts - np.asarray(mean, dtype=float)[None, :]
    whitened = factors.whiten(centered)
    return np.sum(whitened * whitened, axis=0)


# ----------------------------------------------------------------------
# Batched density kernels (all components at once)
# ----------------------------------------------------------------------
def logsumexp(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable ``log Σ exp`` along ``axis``.

    Rows whose every entry is ``-inf`` reduce to ``-inf`` (instead of
    the ``nan`` a naive ``max`` subtraction would produce); ``+inf``
    inputs are rejected by the callers (densities are finite).
    """
    values = np.asarray(values, dtype=float)
    peak = np.max(values, axis=axis, keepdims=True)
    safe_peak = np.where(np.isfinite(peak), peak, 0.0)
    summed = np.sum(np.exp(values - safe_peak), axis=axis)
    out = np.squeeze(safe_peak, axis=axis) + np.log(summed)
    finite = np.squeeze(np.isfinite(peak), axis=axis)
    return np.where(finite, out, -np.inf)


def batch_mahalanobis_sq(
    points: np.ndarray,
    means: np.ndarray,
    inverse_choleskys: np.ndarray,
) -> np.ndarray:
    """Squared Mahalanobis distances to ``k`` Gaussians in one pass.

    Parameters
    ----------
    points:
        Records of shape ``(n, d)``.
    means:
        Component means, shape ``(k, d)``.
    inverse_choleskys:
        Stacked whitening matrices ``L_j⁻¹``, shape ``(k, d, d)``
        (see :meth:`SPDFactors.inverse_cholesky`).

    Returns
    -------
    numpy.ndarray
        Shape ``(n, k)``: entry ``[i, j]`` is the squared Mahalanobis
        distance of record ``i`` from component ``j``.

    Notes
    -----
    The whitened coordinates are ``L_j⁻¹ x - L_j⁻¹ μ_j``; the shift
    ``L_j⁻¹ μ_j`` is formed once per component, and the records are
    whitened against *all* components by one ``(n, d) @ (d, k·d)``
    matrix product (a single BLAS GEMM) instead of ``k`` triangular
    solves.  This is the E-step kernel: one call replaces the per-
    component ``Gaussian.log_pdf`` loop.
    """
    points = np.asarray(points, dtype=float)
    inverse_choleskys = np.asarray(inverse_choleskys, dtype=float)
    k, d = inverse_choleskys.shape[0], inverse_choleskys.shape[1]
    shift = np.einsum("kde,ke->kd", inverse_choleskys, means)
    stacked = np.ascontiguousarray(inverse_choleskys.reshape(k * d, d))
    whitened = (points @ stacked.T).reshape(points.shape[0], k, d)
    whitened -= shift[None, :, :]
    return np.einsum("nkd,nkd->nk", whitened, whitened)


def batch_log_pdf(
    points: np.ndarray,
    means: np.ndarray,
    inverse_choleskys: np.ndarray,
    log_dets: np.ndarray,
) -> np.ndarray:
    """Matrix of per-component log densities, shape ``(n, k)``.

    The batched equivalent of stacking ``k`` ``Gaussian.log_pdf`` calls:
    ``-0.5 (d log 2π + log |Σ_j| + maha²(x, j))`` for every record and
    component at once.  ``log_dets`` has shape ``(k,)``.
    """
    dim = np.asarray(points).shape[-1]
    dist_sq = batch_mahalanobis_sq(points, means, inverse_choleskys)
    return -0.5 * (dim * LOG_2PI + np.asarray(log_dets)[None, :] + dist_sq)
