"""Downhill simplex (Nelder-Mead) minimisation, implemented from scratch.

The coordinator fits a merged Gaussian component by minimising the L1
accuracy loss ``l(x)`` (paper section 5.2.1).  Because the derivatives of
``l(x)`` are unknown, the paper uses the derivative-free downhill simplex
method of Nelder and Mead [19].  This module implements the classic
algorithm with the standard reflection / expansion / contraction /
shrink coefficients and an adaptive initial simplex.

The implementation intentionally mirrors the original 1965 formulation
rather than SciPy's variant so the library carries no behavioural
dependency on SciPy's optimiser internals; a regression test compares
the two on standard test functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["NelderMeadResult", "nelder_mead"]

#: Standard Nelder-Mead coefficients: reflection, expansion, contraction,
#: shrink.
ALPHA = 1.0
GAMMA = 2.0
RHO = 0.5
SIGMA = 0.5


@dataclass(frozen=True)
class NelderMeadResult:
    """Outcome of a downhill-simplex run.

    Attributes
    ----------
    x:
        Best parameter vector found.
    fun:
        Objective value at :attr:`x`.
    iterations:
        Number of simplex iterations performed.
    evaluations:
        Number of objective evaluations.
    converged:
        ``True`` if the spread criterion was met before ``max_iter``.
    """

    x: np.ndarray
    fun: float
    iterations: int
    evaluations: int
    converged: bool


def _initial_simplex(x0: np.ndarray, step: float) -> np.ndarray:
    """Build the ``(n+1, n)`` starting simplex around ``x0``.

    Each vertex perturbs one coordinate by ``step`` relative to its
    magnitude (absolute ``step`` for zero coordinates), the scheme used
    by most practical implementations.
    """
    n = x0.size
    simplex = np.tile(x0, (n + 1, 1))
    for i in range(n):
        if simplex[i + 1, i] != 0.0:
            simplex[i + 1, i] *= 1.0 + step
        else:
            simplex[i + 1, i] = step
    return simplex


def nelder_mead(
    objective: Callable[[np.ndarray], float],
    x0: np.ndarray,
    max_iter: int = 500,
    xtol: float = 1e-6,
    ftol: float = 1e-8,
    initial_step: float = 0.05,
) -> NelderMeadResult:
    """Minimise ``objective`` starting from ``x0``.

    Parameters
    ----------
    objective:
        Callable mapping a parameter vector to a finite float.  Values
        that come back non-finite are treated as ``+inf`` so the simplex
        retreats from invalid regions (e.g. negative variances during a
        merge fit).
    x0:
        Initial guess, shape ``(n,)``.
    max_iter:
        Iteration budget.
    xtol / ftol:
        Convergence thresholds on the simplex spread in parameter space
        and objective value respectively; both must hold.
    initial_step:
        Relative perturbation used to seed the simplex.

    Returns
    -------
    NelderMeadResult
    """
    x0 = np.asarray(x0, dtype=float).ravel()
    if x0.size == 0:
        raise ValueError("cannot optimise a zero-dimensional parameter vector")

    def safe_eval(x: np.ndarray) -> float:
        value = float(objective(x))
        return value if np.isfinite(value) else np.inf

    simplex = _initial_simplex(x0, initial_step)
    values = np.array([safe_eval(vertex) for vertex in simplex])
    evaluations = values.size

    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        order = np.argsort(values, kind="stable")
        simplex = simplex[order]
        values = values[order]

        x_spread = float(np.max(np.abs(simplex[1:] - simplex[0])))
        f_spread = float(np.abs(values[-1] - values[0]))
        if x_spread <= xtol and f_spread <= ftol:
            converged = True
            break

        centroid = np.mean(simplex[:-1], axis=0)
        worst = simplex[-1]

        reflected = centroid + ALPHA * (centroid - worst)
        f_reflected = safe_eval(reflected)
        evaluations += 1

        if values[0] <= f_reflected < values[-2]:
            simplex[-1] = reflected
            values[-1] = f_reflected
            continue

        if f_reflected < values[0]:
            expanded = centroid + GAMMA * (reflected - centroid)
            f_expanded = safe_eval(expanded)
            evaluations += 1
            if f_expanded < f_reflected:
                simplex[-1] = expanded
                values[-1] = f_expanded
            else:
                simplex[-1] = reflected
                values[-1] = f_reflected
            continue

        # Contraction: outside if the reflection improved on the worst
        # vertex, inside otherwise.
        if f_reflected < values[-1]:
            contracted = centroid + RHO * (reflected - centroid)
        else:
            contracted = centroid + RHO * (worst - centroid)
        f_contracted = safe_eval(contracted)
        evaluations += 1
        if f_contracted < min(f_reflected, values[-1]):
            simplex[-1] = contracted
            values[-1] = f_contracted
            continue

        # Shrink every vertex toward the best one.
        best = simplex[0]
        for i in range(1, simplex.shape[0]):
            simplex[i] = best + SIGMA * (simplex[i] - best)
            values[i] = safe_eval(simplex[i])
            evaluations += 1

    best_index = int(np.argmin(values))
    return NelderMeadResult(
        x=simplex[best_index].copy(),
        fun=float(values[best_index]),
        iterations=iterations,
        evaluations=evaluations,
        converged=converged,
    )
