"""A small KD-tree for nearest-component queries.

The paper's future-work section proposes "constructing index structure
to accelerate merge and split based on the mixture models".  This
module provides that index: a classic median-split KD-tree over
component *means* supporting k-nearest-neighbour queries.

Euclidean distance between means is not the algorithm's criterion (that
is the symmetrised Mahalanobis form), so the tree is used as a
*candidate pruner*: fetch the ``k`` nearest components by mean, then
score only those exactly.  For well-conditioned covariances the true
best pair is almost always among the Euclidean near-neighbours; the
coordinator validates the shortcut with a configurable candidate count.

Implemented from scratch (no scipy.spatial) with an iterative query to
keep recursion depth independent of tree size.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["KDTree"]


@dataclass
class _Node:
    axis: int
    point: np.ndarray
    payload: object
    left: "_Node | None"
    right: "_Node | None"


class KDTree:
    """Static KD-tree over points with attached payloads.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    payloads:
        One payload object per point (e.g. a cluster id).

    Notes
    -----
    The tree is immutable; the coordinator rebuilds it when its cluster
    set changes, which is cheap at the scales involved (``O(n log n)``
    with small constants) and keeps the structure trivially consistent.
    """

    def __init__(self, points: np.ndarray, payloads: list) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[0] != len(payloads):
            raise ValueError("one payload required per point")
        if points.shape[0] == 0:
            raise ValueError("cannot index zero points")
        self.size = points.shape[0]
        self.dim = points.shape[1]
        order = list(range(self.size))
        self._root = self._build(points, payloads, order, depth=0)

    def _build(
        self,
        points: np.ndarray,
        payloads: list,
        indices: list[int],
        depth: int,
    ) -> _Node | None:
        if not indices:
            return None
        axis = depth % self.dim
        indices.sort(key=lambda i: points[i, axis])
        middle = len(indices) // 2
        index = indices[middle]
        return _Node(
            axis=axis,
            point=points[index],
            payload=payloads[index],
            left=self._build(points, payloads, indices[:middle], depth + 1),
            right=self._build(
                points, payloads, indices[middle + 1 :], depth + 1
            ),
        )

    def nearest(self, query: np.ndarray, k: int = 1) -> list[tuple[float, object]]:
        """The ``k`` nearest points to ``query``.

        Returns ``(distance, payload)`` pairs sorted by ascending
        Euclidean distance.  Fewer than ``k`` pairs come back when the
        tree is smaller than ``k``.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        query = np.asarray(query, dtype=float).ravel()
        if query.size != self.dim:
            raise ValueError(
                f"query has dimension {query.size}, tree holds {self.dim}"
            )
        # Max-heap (by negative distance) of the best k seen so far.
        best: list[tuple[float, int, object]] = []
        counter = 0
        # Stack entries carry the squared distance from the query to the
        # splitting plane that separates it from this subtree (0 for the
        # side the query lies on).
        stack: list[tuple[_Node | None, float]] = [(self._root, 0.0)]
        while stack:
            node, plane_gap_sq = stack.pop()
            if node is None:
                continue
            if len(best) == k and plane_gap_sq > -best[0][0]:
                continue  # the subtree cannot hold anything closer
            distance = float(np.sum((query - node.point) ** 2))
            counter += 1
            if len(best) < k:
                heapq.heappush(best, (-distance, counter, node.payload))
            elif distance < -best[0][0]:
                heapq.heapreplace(best, (-distance, counter, node.payload))
            gap = query[node.axis] - node.point[node.axis]
            near_first = gap <= 0.0
            near = node.left if near_first else node.right
            far = node.right if near_first else node.left
            # LIFO stack: push far side first so the near side explores
            # first and tightens the pruning radius early.
            stack.append((far, gap * gap))
            stack.append((near, 0.0))
        results = [
            (float(np.sqrt(-neg)), payload) for neg, _, payload in best
        ]
        results.sort(key=lambda pair: pair[0])
        return results

    def __len__(self) -> int:
        return self.size
