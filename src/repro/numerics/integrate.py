"""Numerical estimation of the L1 distance between mixture densities.

The merge step on the coordinator scores candidate merged components by
the accuracy-loss functional of section 5.2.1::

    l(x) = ∫ | w_i p(x|i) + w_j p(x|j) - (w_i + w_j) p(x|i') | dx

The integral has no closed form for Gaussians, so we estimate it two
ways:

* :func:`trapezoid_grid` -- deterministic tensor-grid quadrature,
  accurate in low dimension (d ≤ 3) and used by tests as ground truth;
* :func:`monte_carlo_l1` -- importance-sampled Monte Carlo that scales
  to the paper's default ``d = 4`` and beyond; this is what the merge
  fitter uses in production.

Both accept arbitrary density callables so they are reusable for the
split criterion ablations.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["l1_density_distance", "monte_carlo_l1", "trapezoid_grid"]

Density = Callable[[np.ndarray], np.ndarray]


def trapezoid_grid(
    density_a: Density,
    density_b: Density,
    lower: Sequence[float],
    upper: Sequence[float],
    points_per_dim: int = 101,
) -> float:
    """Tensor-grid trapezoid estimate of ``∫ |a(x) - b(x)| dx``.

    Parameters
    ----------
    density_a / density_b:
        Vectorised densities mapping ``(n, d)`` arrays to ``(n,)``
        values.
    lower / upper:
        Integration box; it should cover the effective support of both
        densities (roughly ``μ ± 6σ``).
    points_per_dim:
        Grid resolution per axis.  The total cost is
        ``points_per_dim ** d`` -- keep ``d`` small.

    Returns
    -------
    float
        The estimated L1 distance, a value in ``[0, 2]`` for normalised
        densities.
    """
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if lower.shape != upper.shape:
        raise ValueError("integration bounds must have matching shapes")
    if np.any(upper <= lower):
        raise ValueError("upper bounds must exceed lower bounds")
    dim = lower.size
    if points_per_dim**dim > 5_000_000:
        raise ValueError(
            "grid too large; use monte_carlo_l1 for dimension "
            f"{dim} at {points_per_dim} points per axis"
        )

    axes = [
        np.linspace(lower[i], upper[i], points_per_dim) for i in range(dim)
    ]
    mesh = np.meshgrid(*axes, indexing="ij")
    grid = np.stack([m.ravel() for m in mesh], axis=1)
    gap = np.abs(density_a(grid) - density_b(grid)).reshape(
        [points_per_dim] * dim
    )
    for axis in reversed(range(dim)):
        gap = np.trapezoid(gap, axes[axis], axis=axis)
    return float(gap)


def monte_carlo_l1(
    density_a: Density,
    density_b: Density,
    sampler: Callable[[int, np.random.Generator], np.ndarray],
    proposal_density: Density,
    n_samples: int = 4096,
    rng: np.random.Generator | None = None,
) -> float:
    """Importance-sampled estimate of ``∫ |a(x) - b(x)| dx``.

    Parameters
    ----------
    sampler:
        Draws ``n`` proposal samples: ``sampler(n, rng) -> (n, d)``.
        For merge fitting the proposal is the equal-weight mixture of
        the two components being merged, which covers the support of
        both integrand terms.
    proposal_density:
        Density of the proposal distribution (must be positive wherever
        either integrand density is non-negligible).
    n_samples:
        Monte Carlo budget.
    rng:
        Source of randomness; a fresh default generator when omitted.

    Returns
    -------
    float
        Unbiased estimate of the L1 distance.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    samples = sampler(n_samples, rng)
    weights = proposal_density(samples)
    if np.any(weights <= 0.0):
        raise ValueError("proposal density must be positive at its samples")
    integrand = np.abs(density_a(samples) - density_b(samples))
    return float(np.mean(integrand / weights))


def l1_density_distance(
    density_a: Density,
    density_b: Density,
    lower: Sequence[float],
    upper: Sequence[float],
    points_per_dim: int = 101,
) -> float:
    """Convenience alias of :func:`trapezoid_grid` with the same contract."""
    return trapezoid_grid(
        density_a, density_b, lower, upper, points_per_dim=points_per_dim
    )
