"""Incomplete-record stream wrapper.

The paper's motivating scenarios -- unreliable P2P collection paths,
obstructed sensors -- produce records with *missing* attributes.
:class:`MissingValueStream` wraps any record stream and knocks out each
attribute independently with probability ``rate`` (marking it NaN),
always leaving at least one attribute observed so the record still
carries information.  Downstream, :mod:`repro.core.missing` handles the
NaNs exactly.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["MissingValueStream"]


class MissingValueStream:
    """Wrap a stream, erasing attributes at random.

    Parameters
    ----------
    source:
        The complete-record stream.
    rate:
        Per-attribute missingness probability in ``[0, 1)``.
    rng:
        Randomness source (independent of the source's).

    Attributes
    ----------
    emitted:
        Records emitted so far.
    erased:
        Total attribute values erased so far.
    """

    def __init__(
        self,
        source: Iterable[np.ndarray],
        rate: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("missingness rate must lie in [0, 1)")
        self._source = iter(source)
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng(404)
        self.emitted = 0
        self.erased = 0

    def __iter__(self) -> Iterator[np.ndarray]:
        return self

    def __next__(self) -> np.ndarray:
        record = np.asarray(next(self._source), dtype=float).copy()
        self.emitted += 1
        if self.rate <= 0.0:
            return record
        mask = self._rng.random(record.size) < self.rate
        if mask.all():
            # Keep one attribute observed; a fully missing record is
            # information-free and rejected downstream.
            keep = int(self._rng.integers(record.size))
            mask[keep] = False
        record[mask] = np.nan
        self.erased += int(mask.sum())
        return record
