"""Shared stream plumbing.

A *stream* in this library is simply an iterator of ``(d,)`` numpy
record vectors -- cheap to compose, trivially consumable by
:class:`~repro.core.remote.RemoteSite` and the baselines.  This module
adds the small vocabulary everything else shares: segment descriptors
(which ground-truth distribution generated which span), labelled
streams for quality evaluation, and gather/scatter helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.mixture import GaussianMixture

__all__ = [
    "LabeledStream",
    "StreamSegment",
    "collect",
    "interleave",
    "take",
]


@dataclass(frozen=True)
class StreamSegment:
    """Ground truth for one span of a generated stream.

    Attributes
    ----------
    start / end:
        Record indices (half-open) the segment covers.
    mixture:
        The generating mixture for the span.
    segment_id:
        Index of the *distinct* distribution (consecutive segments that
        re-used the previous distribution share an id).
    """

    start: int
    end: int
    mixture: GaussianMixture
    segment_id: int

    @property
    def length(self) -> int:
        return self.end - self.start


class LabeledStream:
    """A record iterator that remembers its ground-truth segments.

    Generators yield records through this wrapper so evaluation code can
    later ask "which distribution was active at record ``t``?" without
    the algorithms under test ever seeing the labels.
    """

    def __init__(self, records: Iterator[np.ndarray]) -> None:
        self._records = records
        self._segments: list[StreamSegment] = []

    def __iter__(self) -> Iterator[np.ndarray]:
        return self._records

    def __next__(self) -> np.ndarray:
        return next(self._records)

    def _note_segment(self, segment: StreamSegment) -> None:
        self._segments.append(segment)

    @property
    def segments(self) -> Sequence[StreamSegment]:
        """Segments generated *so far* (grows as the stream is consumed)."""
        return tuple(self._segments)

    def segment_at(self, index: int) -> StreamSegment | None:
        """Ground-truth segment covering record ``index``, if generated."""
        for segment in self._segments:
            if segment.start <= index < segment.end:
                return segment
        return None

    def n_distributions(self) -> int:
        """Distinct generating distributions seen so far."""
        return len({segment.segment_id for segment in self._segments})


def take(stream: Iterable[np.ndarray], n: int) -> np.ndarray:
    """Materialise the next ``n`` records as an ``(n, d)`` array.

    Raises
    ------
    ValueError
        If the stream ends before ``n`` records are drawn.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rows = []
    iterator = iter(stream)
    for _ in range(n):
        record = next(iterator, None)
        if record is None:
            raise ValueError(
                f"stream exhausted after {len(rows)} of {n} records"
            )
        rows.append(np.asarray(record, dtype=float))
    return np.stack(rows)


def collect(stream: Iterable[np.ndarray]) -> np.ndarray:
    """Materialise an entire finite stream as an ``(n, d)`` array."""
    rows = [np.asarray(record, dtype=float) for record in stream]
    if not rows:
        raise ValueError("stream produced no records")
    return np.stack(rows)


def interleave(
    streams: Sequence[Iterable[np.ndarray]],
) -> Iterator[np.ndarray]:
    """Round-robin merge of several streams (stops at the shortest).

    Models a centralised observer seeing the union stream
    ``S = S_1 ∪ ... ∪ S_r`` in arrival order -- what the centralised SEM
    comparison of Figure 7 consumes.
    """
    iterators = [iter(stream) for stream in streams]
    if not iterators:
        raise ValueError("need at least one stream")
    while True:
        for iterator in iterators:
            record = next(iterator, None)
            if record is None:
                return
            yield record
