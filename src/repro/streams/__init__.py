"""Stream generators and stream utilities.

The paper evaluates on two kinds of data:

* **synthetic streams** whose records follow a series of Gaussian
  mixtures, with a new mixture drawn every 2 000 points with probability
  ``P_d`` (:mod:`repro.streams.synthetic`), optionally corrupted with
  noise (:mod:`repro.streams.noise`), plus the 1-d visual stream behind
  Figures 3-4 (:mod:`repro.streams.visual`);
* the **NFD net-flow data set** from Shanghai Telecom -- proprietary, so
  :mod:`repro.streams.netflow` generates a synthetic equivalent with the
  same six-attribute schema, heavy tails and regime switches (see
  DESIGN.md, Substitutions).

:mod:`repro.streams.base` holds the shared stream plumbing.
"""

from repro.streams.drift import DriftConfig, DriftingGaussianStream
from repro.streams.base import (
    LabeledStream,
    StreamSegment,
    collect,
    interleave,
    take,
)
from repro.streams.missing import MissingValueStream
from repro.streams.netflow import NetflowConfig, NetflowStreamGenerator
from repro.streams.noise import NoiseConfig, NoisyStream
from repro.streams.synthetic import (
    EvolvingStreamConfig,
    EvolvingGaussianStream,
    random_mixture,
)
from repro.streams.visual import VisualStreamPhases, one_dimensional_phases

__all__ = [
    "DriftConfig",
    "DriftingGaussianStream",
    "EvolvingGaussianStream",
    "EvolvingStreamConfig",
    "LabeledStream",
    "MissingValueStream",
    "NetflowConfig",
    "NetflowStreamGenerator",
    "NoiseConfig",
    "NoisyStream",
    "StreamSegment",
    "VisualStreamPhases",
    "collect",
    "interleave",
    "one_dimensional_phases",
    "random_mixture",
    "take",
]
