"""Synthetic NFD-like net-flow stream (substitute for the real data set).

The paper's real workload, NFD, is net-flow data from Shanghai Telecom
with six attributes: source host, destination host, source TCP port,
destination TCP port, packet count and number of data bytes.  The data
set is proprietary, so this module generates a synthetic stand-in that
preserves the properties the paper's experiments exercise:

* the exact six-attribute schema and dimensionality;
* *service structure*: traffic concentrates on a small set of popular
  server hosts and well-known ports, with ephemeral client ports --
  this is what gives the data its cluster structure;
* *heavy tails*: packet counts and byte volumes are log-normal, with
  bytes correlated to packets through a per-packet size;
* *evolution*: the traffic mix shifts between regimes (e.g. web-heavy
  versus transfer-heavy periods, occasional scan bursts), producing the
  distribution changes CluDistream's event table must track;
* *normalisation*: like the paper, every attribute is normalised (to
  ``[0, 1]`` ranges) "to reduce the data range effect".

Records are emitted as 6-d float vectors in schema order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["FlowRegime", "NetflowConfig", "NetflowStreamGenerator"]

#: Attribute order of every record.
SCHEMA = (
    "src_host",
    "dst_host",
    "src_port",
    "dst_port",
    "packet_count",
    "data_bytes",
)

#: Normalisation constants: host ids, 16-bit ports, and log-scale caps
#: for packets (~e^8 ≈ 3k packets) and bytes (~e^16 ≈ 8.9 MB).
HOST_SPACE = 4096
PORT_SPACE = 65535
LOG_PACKET_CAP = 8.0
LOG_BYTES_CAP = 16.0

#: Well-known service ports the destination-port attribute clusters on.
SERVICE_PORTS = (80, 443, 25, 53, 21, 110, 8080, 3306)


@dataclass(frozen=True)
class FlowRegime:
    """One traffic regime: a weighted set of service profiles.

    Each profile is a tuple ``(weight, server_host, service_port,
    log_packets_mean, log_packets_sigma, log_bytes_per_packet_mean)``
    describing one service's flows during the regime.
    """

    profiles: tuple[tuple[float, int, int, float, float, float], ...]

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError("a regime needs at least one service profile")
        if any(weight <= 0.0 for weight, *_ in self.profiles):
            raise ValueError("profile weights must be positive")

    @property
    def weights(self) -> np.ndarray:
        raw = np.array([weight for weight, *_ in self.profiles])
        return raw / raw.sum()


@dataclass(frozen=True, kw_only=True)
class NetflowConfig:
    """Generator parameters.

    Parameters
    ----------
    n_regimes:
        Size of the regime pool the stream switches between.
    services_per_regime:
        Service profiles per regime (the cluster count of the data).
    segment_length:
        Records per segment; a regime switch is considered at each
        segment boundary, mirroring the synthetic stream's evolution.
    p_switch:
        Probability of switching regimes at a boundary (the ``P_d``
        analogue).
    client_noise:
        Std-dev of the jitter applied to the normalised host/port
        attributes, modelling the many distinct client hosts and
        ephemeral ports behind one service.
    """

    n_regimes: int = 6
    services_per_regime: int = 5
    segment_length: int = 2000
    p_switch: float = 0.1
    client_noise: float = 0.03

    def __post_init__(self) -> None:
        if self.n_regimes < 1:
            raise ValueError("n_regimes must be at least 1")
        if self.services_per_regime < 1:
            raise ValueError("services_per_regime must be at least 1")
        if self.segment_length < 1:
            raise ValueError("segment_length must be at least 1")
        if not 0.0 <= self.p_switch <= 1.0:
            raise ValueError("p_switch must lie in [0, 1]")
        if self.client_noise <= 0.0:
            raise ValueError("client_noise must be positive")


class NetflowStreamGenerator:
    """Infinite stream of normalised 6-d net-flow records.

    Parameters
    ----------
    config:
        Generator parameters.
    rng:
        Randomness source; fixes both the regime pool and the record
        sequence, so runs are reproducible.

    Attributes
    ----------
    regimes:
        The sampled regime pool.
    regime_history:
        ``(segment_index, regime_index)`` pairs recorded as segments are
        generated -- the ground truth for change-detection evaluation.
    """

    def __init__(
        self,
        config: NetflowConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or NetflowConfig()
        self._rng = rng if rng is not None else np.random.default_rng(2007)
        self.regimes: tuple[FlowRegime, ...] = tuple(
            self._random_regime() for _ in range(self.config.n_regimes)
        )
        self.regime_history: list[tuple[int, int]] = []
        self._iterator = self._generate()

    @property
    def dim(self) -> int:
        """Record dimensionality (always 6, the NFD schema)."""
        return len(SCHEMA)

    def __iter__(self) -> Iterator[np.ndarray]:
        return self._iterator

    def __next__(self) -> np.ndarray:
        return next(self._iterator)

    # ------------------------------------------------------------------
    # Regime construction
    # ------------------------------------------------------------------
    def _random_regime(self) -> FlowRegime:
        profiles = []
        for _ in range(self.config.services_per_regime):
            weight = float(self._rng.uniform(0.5, 2.0))
            server = int(self._rng.integers(HOST_SPACE))
            port = int(self._rng.choice(SERVICE_PORTS))
            log_packets_mean = float(self._rng.uniform(1.0, 6.0))
            log_packets_sigma = float(self._rng.uniform(0.3, 0.8))
            log_bytes_per_packet = float(self._rng.uniform(4.0, 7.5))
            profiles.append(
                (
                    weight,
                    server,
                    port,
                    log_packets_mean,
                    log_packets_sigma,
                    log_bytes_per_packet,
                )
            )
        return FlowRegime(profiles=tuple(profiles))

    # ------------------------------------------------------------------
    # Record generation
    # ------------------------------------------------------------------
    def _sample_segment(self, regime: FlowRegime) -> np.ndarray:
        """Vectorised sampling of one segment under ``regime``."""
        cfg = self.config
        n = cfg.segment_length
        choice = self._rng.choice(
            len(regime.profiles), size=n, p=regime.weights
        )
        records = np.empty((n, len(SCHEMA)))
        for idx, profile in enumerate(regime.profiles):
            mask = choice == idx
            count = int(mask.sum())
            if not count:
                continue
            (_, server, port, lp_mean, lp_sigma, lbpp_mean) = profile
            # Clients come from anywhere; servers are fixed per service.
            src_host = self._rng.integers(HOST_SPACE, size=count) / HOST_SPACE
            dst_host = np.full(count, server / HOST_SPACE)
            src_port = (
                self._rng.integers(32768, PORT_SPACE, size=count) / PORT_SPACE
            )
            dst_port = np.full(count, port / PORT_SPACE)
            log_packets = self._rng.normal(lp_mean, lp_sigma, size=count)
            log_packets = np.clip(log_packets, 0.0, LOG_PACKET_CAP)
            log_bytes = log_packets + self._rng.normal(
                lbpp_mean, 0.3, size=count
            )
            log_bytes = np.clip(log_bytes, 0.0, LOG_BYTES_CAP)
            segment = np.column_stack(
                [
                    src_host,
                    dst_host,
                    dst_port,  # placeholder order fixed below
                    src_port,
                    log_packets / LOG_PACKET_CAP,
                    log_bytes / LOG_BYTES_CAP,
                ]
            )
            # Schema order: src_host, dst_host, src_port, dst_port, ...
            segment[:, [2, 3]] = segment[:, [3, 2]]
            records[mask] = segment
        # Jitter the categorical-derived coordinates so each service is
        # a genuine Gaussian-like cluster instead of a point mass.
        jitter = self._rng.normal(0.0, cfg.client_noise, size=records.shape)
        jitter[:, 0] *= 3.0  # client hosts are genuinely dispersed
        records = np.clip(records + jitter, 0.0, 1.0)
        return records

    def _generate(self) -> Iterator[np.ndarray]:
        regime_index = int(self._rng.integers(len(self.regimes)))
        segment_index = 0
        while True:
            if segment_index > 0 and self._rng.random() < self.config.p_switch:
                others = [
                    i for i in range(len(self.regimes)) if i != regime_index
                ]
                if others:
                    regime_index = int(self._rng.choice(others))
            self.regime_history.append((segment_index, regime_index))
            segment = self._sample_segment(self.regimes[regime_index])
            for row in segment:
                yield row
            segment_index += 1

    def snapshot(self, n: int) -> np.ndarray:
        """Materialise the next ``n`` records as an ``(n, 6)`` array."""
        rows = [next(self._iterator) for _ in range(n)]
        return np.stack(rows)


def normalize_block(records: np.ndarray) -> np.ndarray:
    """Per-attribute min-max normalisation of a record block.

    Provided for users feeding *real* flow data through the same
    pipeline; the synthetic generator already emits normalised records.
    """
    records = np.atleast_2d(np.asarray(records, dtype=float))
    lows = records.min(axis=0)
    spans = records.max(axis=0) - lows
    spans[spans <= 0.0] = 1.0
    return (records - lows) / spans
