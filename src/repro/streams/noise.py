"""Noise and corruption wrappers for streams.

The paper motivates the EM approach with "noisy or incomplete data
records" and validates robustness by adding "5% random noise" to the
synthetic stream (Figure 4(d)).  :class:`NoisyStream` wraps any record
stream and corrupts a configurable fraction of records:

* ``outlier`` -- replace the record with a uniform draw over an
  inflated bounding box (the paper's random noise);
* ``attribute`` -- replace a random subset of attributes with uniform
  junk, modelling partially corrupted records from an unreliable
  collection path (the "incomplete data" motivation; a soft-clustering
  model should absorb these without hard mis-assignments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

__all__ = ["NoiseConfig", "NoisyStream"]


@dataclass(frozen=True, kw_only=True)
class NoiseConfig:
    """Noise injection parameters.

    Parameters
    ----------
    fraction:
        Probability that any given record is corrupted (the paper uses
        0.05).
    kind:
        ``"outlier"`` or ``"attribute"``; see module docstring.
    low / high:
        Bounding box used to draw corrupted values.
    attribute_fraction:
        For ``kind="attribute"``: fraction of attributes corrupted in a
        hit record (at least one).
    """

    fraction: float = 0.05
    kind: str = "outlier"
    low: float = -15.0
    high: float = 15.0
    attribute_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("noise fraction must lie in [0, 1]")
        if self.kind not in ("outlier", "attribute"):
            raise ValueError(f"unknown noise kind {self.kind!r}")
        if self.high <= self.low:
            raise ValueError("noise box must have high > low")
        if not 0.0 < self.attribute_fraction <= 1.0:
            raise ValueError("attribute_fraction must lie in (0, 1]")


class NoisyStream:
    """Wrap a stream, corrupting a fraction of its records.

    Parameters
    ----------
    source:
        The clean stream.
    config:
        Corruption parameters.
    rng:
        Randomness (independent of the source's so the clean stream is
        unchanged under a fixed seed).

    Attributes
    ----------
    corrupted:
        Number of records corrupted so far.
    emitted:
        Total records emitted so far.
    """

    def __init__(
        self,
        source: Iterable[np.ndarray],
        config: NoiseConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._source = iter(source)
        self.config = config or NoiseConfig()
        self._rng = rng if rng is not None else np.random.default_rng(99)
        self.corrupted = 0
        self.emitted = 0

    def __iter__(self) -> Iterator[np.ndarray]:
        return self

    def __next__(self) -> np.ndarray:
        record = np.asarray(next(self._source), dtype=float).copy()
        self.emitted += 1
        if self._rng.random() >= self.config.fraction:
            return record
        self.corrupted += 1
        if self.config.kind == "outlier":
            return self._rng.uniform(
                self.config.low, self.config.high, size=record.shape
            )
        n_hit = max(1, round(self.config.attribute_fraction * record.size))
        indices = self._rng.choice(record.size, size=n_hit, replace=False)
        record[indices] = self._rng.uniform(
            self.config.low, self.config.high, size=n_hit
        )
        return record
