"""Evolving synthetic Gaussian streams (paper section 6).

"The data records in each synthetic data set follow a series of Gaussian
distributions.  To reflect the evolution of the stream data over time,
we generate new Gaussian distribution for every 2K points by probability
``P_d``."

:class:`EvolvingGaussianStream` implements exactly that: the stream is a
sequence of 2 000-record segments; at each segment boundary a fresh
mixture is drawn with probability ``P_d``, otherwise the previous one
continues.  Ground truth is recorded as
:class:`~repro.streams.base.StreamSegment` entries for evaluation.

Mixture sampling (:func:`random_mixture`) draws well-separated means in
a box with random (full or diagonal) covariances and Dirichlet weights,
giving clusterable data whose difficulty is controlled by the
``separation`` knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.streams.base import LabeledStream, StreamSegment

__all__ = [
    "EvolvingGaussianStream",
    "EvolvingStreamConfig",
    "random_mixture",
]


def random_mixture(
    dim: int,
    n_components: int,
    rng: np.random.Generator,
    box: float = 10.0,
    scale: float = 0.5,
    separation: float = 3.0,
    diagonal: bool = False,
) -> GaussianMixture:
    """Draw a random, reasonably separated Gaussian mixture.

    Parameters
    ----------
    dim:
        Dimensionality ``d``.
    n_components:
        Number of clusters ``K``.
    rng:
        Randomness source.
    box:
        Means are drawn uniformly in ``[-box, box]^d`` (rejection keeps
        them ``separation * scale`` apart where feasible).
    scale:
        Typical cluster standard deviation.
    separation:
        Minimal pairwise mean distance in units of ``scale``.
    diagonal:
        Restrict covariances to diagonal matrices.

    Returns
    -------
    GaussianMixture
    """
    if n_components < 1:
        raise ValueError("n_components must be at least 1")
    if box <= 0.0 or scale <= 0.0:
        raise ValueError("box and scale must be positive")
    min_gap = separation * scale
    means: list[np.ndarray] = []
    attempts = 0
    while len(means) < n_components:
        candidate = rng.uniform(-box, box, size=dim)
        attempts += 1
        if attempts > 200 * n_components:
            # Box too crowded for the requested separation: accept as is.
            means.append(candidate)
            continue
        if all(np.linalg.norm(candidate - m) >= min_gap for m in means):
            means.append(candidate)

    components = []
    for mean in means:
        sigmas = scale * rng.uniform(0.5, 1.5, size=dim)
        if diagonal:
            cov = np.diag(sigmas**2)
        else:
            # Random rotation of an axis-aligned covariance keeps the
            # spectrum controlled while exercising full-matrix code.
            raw = rng.standard_normal((dim, dim))
            q, _ = np.linalg.qr(raw)
            cov = q @ np.diag(sigmas**2) @ q.T
        components.append(Gaussian(mean, cov, diagonal=diagonal))
    weights = rng.dirichlet(np.full(n_components, 5.0))
    return GaussianMixture(weights, tuple(components))


@dataclass(frozen=True, kw_only=True)
class EvolvingStreamConfig:
    """Knobs of the evolving synthetic stream.

    Defaults follow the paper: segments of 2 000 records, change
    probability ``P_d = 0.1``, ``d = 4``, ``K = 5``.
    """

    dim: int = 4
    n_components: int = 5
    segment_length: int = 2000
    p_new_distribution: float = 0.1
    box: float = 10.0
    scale: float = 0.5
    separation: float = 3.0
    diagonal: bool = False

    def __post_init__(self) -> None:
        if self.segment_length < 1:
            raise ValueError("segment_length must be at least 1")
        if not 0.0 <= self.p_new_distribution <= 1.0:
            raise ValueError("p_new_distribution must lie in [0, 1]")


class EvolvingGaussianStream(LabeledStream):
    """Infinite stream of records from an evolving series of mixtures.

    Parameters
    ----------
    config:
        Stream parameters (``P_d`` etc.).
    rng:
        Randomness source; drives both the mixture evolution and the
        record sampling, so a seeded generator reproduces the stream
        exactly.

    Notes
    -----
    The first segment always draws a fresh mixture.  Each subsequent
    segment keeps the current mixture with probability ``1 - P_d``.
    Ground truth segments are appended lazily as the stream is consumed;
    ``stream.segments`` reflects only what has been generated.
    """

    def __init__(
        self,
        config: EvolvingStreamConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or EvolvingStreamConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.current_mixture: GaussianMixture | None = None
        self._segment_count = 0
        self._distribution_count = 0
        super().__init__(self._generate())

    def _fresh_mixture(self) -> GaussianMixture:
        self._distribution_count += 1
        return random_mixture(
            dim=self.config.dim,
            n_components=self.config.n_components,
            rng=self._rng,
            box=self.config.box,
            scale=self.config.scale,
            separation=self.config.separation,
            diagonal=self.config.diagonal,
        )

    def _generate(self) -> Iterator[np.ndarray]:
        position = 0
        while True:
            if self.current_mixture is None:
                self.current_mixture = self._fresh_mixture()
            elif self._rng.random() < self.config.p_new_distribution:
                self.current_mixture = self._fresh_mixture()
            segment = StreamSegment(
                start=position,
                end=position + self.config.segment_length,
                mixture=self.current_mixture,
                segment_id=self._distribution_count - 1,
            )
            self._note_segment(segment)
            self._segment_count += 1
            points, _ = self.current_mixture.sample(
                self.config.segment_length, self._rng
            )
            for row in points:
                yield row
            position = segment.end
