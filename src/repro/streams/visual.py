"""The one-dimensional visual stream behind Figures 3-4.

"To simplify the visualization of clustering, we use one dimensional
synthetic data.  Figures 3(a), (b) and (c) show the histogram of the
data set in horizon H = 2k at three different time points."

:func:`one_dimensional_phases` builds that experiment: three distinct
1-d mixtures, each active for one horizon of 2 000 records, streamed
back to back.  The benchmark harness histograms each phase (Figure 3),
runs CluDistream over the concatenated stream, and compares the models
it recovers per phase against the ground truth (Figure 4), optionally
with 5% noise (Figure 4(d)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture

__all__ = ["VisualStreamPhases", "one_dimensional_phases"]

#: The three ground-truth phase mixtures.  Chosen to echo the paper's
#: histograms: phase changes move modes and reshape weights.
_PHASES = (
    ((0.5, -4.0, 0.6), (0.3, 0.0, 0.5), (0.2, 4.0, 0.8)),
    ((0.25, -5.0, 0.5), (0.45, -1.0, 0.7), (0.30, 3.0, 0.6)),
    ((0.4, -2.5, 0.9), (0.2, 1.5, 0.4), (0.4, 5.5, 0.5)),
)


@dataclass(frozen=True)
class VisualStreamPhases:
    """The Figures 3-4 experiment data.

    Attributes
    ----------
    mixtures:
        The three ground-truth 1-d mixtures, in phase order.
    horizon:
        Records per phase (the paper's ``H = 2k``).
    """

    mixtures: tuple[GaussianMixture, ...]
    horizon: int

    @property
    def n_phases(self) -> int:
        return len(self.mixtures)

    @property
    def total_records(self) -> int:
        return self.horizon * self.n_phases

    def phase_data(
        self, phase: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample one phase's horizon of records, shape ``(H, 1)``."""
        if not 0 <= phase < self.n_phases:
            raise IndexError(f"phase {phase} out of range")
        points, _ = self.mixtures[phase].sample(self.horizon, rng)
        return points

    def stream(self, rng: np.random.Generator) -> Iterator[np.ndarray]:
        """The concatenated three-phase stream, record by record."""
        for phase in range(self.n_phases):
            for row in self.phase_data(phase, rng):
                yield row

    def phase_of(self, index: int) -> int:
        """Ground-truth phase of record ``index``."""
        if not 0 <= index < self.total_records:
            raise IndexError(f"record {index} outside the stream")
        return index // self.horizon


def one_dimensional_phases(
    horizon: int = 2000, repeats: int = 1
) -> VisualStreamPhases:
    """Build the three-phase 1-d stream of Figures 3-4.

    Parameters
    ----------
    horizon:
        Records per phase (the paper's 2 000).
    repeats:
        Repeat the three-phase cycle this many times (useful for the
        multi-test / reactivation benchmarks where distributions
        alternate).
    """
    if horizon < 1:
        raise ValueError("horizon must be at least 1")
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    mixtures = []
    for _ in range(repeats):
        for spec in _PHASES:
            weights = np.array([w for w, _, _ in spec])
            components = tuple(
                Gaussian(np.array([mu]), np.array([[sigma**2]]))
                for _, mu, sigma in spec
            )
            mixtures.append(GaussianMixture(weights, components))
    return VisualStreamPhases(mixtures=tuple(mixtures), horizon=horizon)
