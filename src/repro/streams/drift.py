"""Gradually drifting streams.

The paper's synthetic workloads switch distributions *abruptly* (a new
mixture every 2k points with probability ``P_d``).  Real streams also
*drift*: cluster centres move continuously.  Drift exercises a
different part of CluDistream -- chunks keep failing the fit test by a
little, and warm-started EM (refining the previous model) shines over
cold restarts.

:class:`DriftingGaussianStream` moves every component mean along a
fixed random direction at ``drift_per_record`` units per record, while
weights and covariances stay put.  Ground truth is queryable at any
record index via :meth:`mixture_at`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.streams.synthetic import random_mixture

__all__ = ["DriftConfig", "DriftingGaussianStream"]


@dataclass(frozen=True, kw_only=True)
class DriftConfig:
    """Drift stream parameters.

    Parameters
    ----------
    dim / n_components:
        Shape of the underlying mixture.
    drift_per_record:
        Distance each component mean travels per record.
    step:
        Records generated per ground-truth refresh (the mixture is
        piecewise constant over ``step`` records; smaller = smoother
        drift, more bookkeeping).
    separation / scale / box:
        Passed through to the initial random mixture.
    """

    dim: int = 4
    n_components: int = 5
    drift_per_record: float = 0.002
    step: int = 100
    separation: float = 4.0
    scale: float = 0.5
    box: float = 10.0

    def __post_init__(self) -> None:
        if self.drift_per_record < 0.0:
            raise ValueError("drift_per_record must be non-negative")
        if self.step < 1:
            raise ValueError("step must be at least 1")


class DriftingGaussianStream:
    """Infinite stream whose cluster centres move continuously.

    Parameters
    ----------
    config:
        Drift parameters.
    rng:
        Randomness for the initial mixture, the drift directions and
        the record sampling.
    """

    def __init__(
        self,
        config: DriftConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or DriftConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.initial = random_mixture(
            self.config.dim,
            self.config.n_components,
            self._rng,
            box=self.config.box,
            scale=self.config.scale,
            separation=self.config.separation,
        )
        directions = self._rng.standard_normal(
            (self.config.n_components, self.config.dim)
        )
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        self._directions = directions / np.maximum(norms, 1e-12)
        self.records_generated = 0
        self._iterator = self._generate()

    def mixture_at(self, record_index: int) -> GaussianMixture:
        """Ground-truth mixture when record ``record_index`` is emitted."""
        if record_index < 0:
            raise ValueError("record index must be non-negative")
        offset = record_index * self.config.drift_per_record
        components = tuple(
            Gaussian(
                component.mean + offset * direction,
                component.covariance,
                diagonal=component.diagonal,
            )
            for component, direction in zip(
                self.initial.components, self._directions
            )
        )
        return GaussianMixture(self.initial.weights, components)

    def __iter__(self) -> Iterator[np.ndarray]:
        return self._iterator

    def __next__(self) -> np.ndarray:
        return next(self._iterator)

    def _generate(self) -> Iterator[np.ndarray]:
        while True:
            mixture = self.mixture_at(self.records_generated)
            block, _ = mixture.sample(self.config.step, self._rng)
            for row in block:
                self.records_generated += 1
                yield row
