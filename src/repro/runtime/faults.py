"""Seeded fault injection behind the :class:`~repro.runtime.Channel` interface.

One :class:`ChannelFaults` spec configures drop / duplicate / reorder
faults for *any* runtime channel, so an experiment can flip backends
without re-describing its adversary:

* the **direct** and **simulated** channels inject at message
  granularity via :class:`MessageFaultInjector` -- given the same seed
  and the same message sequence, both make bit-identical fault
  decisions, so a faulty direct run and a faulty simulated run converge
  to the same coordinator state;
* the **transport** channel maps the same spec onto a
  :class:`~repro.transport.lossy.LossyTransport` wrapping the backend,
  where faults hit *datagrams* and the ARQ layer heals them -- the
  coordinator converges to the loss-free state instead.

Semantics are documented rather than hidden: without a reliability
layer a dropped message is gone (pair with
``CoordinatorConfig(tolerate_loss=True)``), a duplicate is applied
twice (harmless for idempotent model updates), and a reordered message
arrives after its successor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.protocol import Message
from repro.obs.observer import Observer, ensure_observer
from repro.runtime.accounting import DeliveryAccounting

__all__ = ["ChannelFaults", "MessageFaultInjector"]


@dataclass(frozen=True)
class ChannelFaults:
    """Backend-agnostic fault spec shared by all three channels.

    Parameters
    ----------
    drop_rate / duplicate_rate / reorder_rate:
        Independent per-message (per-datagram on the transport channel)
        probabilities in ``[0, 1)``.
    seed:
        Seed of the injector's private generator; the fault schedule is
        a pure function of ``(seed, message sequence)``.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must lie in [0, 1)")

    @property
    def any_enabled(self) -> bool:
        return (
            self.drop_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.reorder_rate > 0.0
        )


class MessageFaultInjector:
    """Message-level adversary between a channel and the coordinator.

    Sits at the delivery boundary: every message the channel would hand
    to the coordinator passes through :meth:`offer`, which may drop it,
    deliver it twice, or hold it back so its successor overtakes it.
    The random draws mirror :class:`~repro.transport.lossy.LossyTransport`
    (one uniform per enabled fault class per message), so the same seed
    and rates yield the same schedule on every message-level backend.

    Parameters
    ----------
    config:
        Fault rates and seed.
    deliver:
        The downstream sink (normally ``coordinator.handle_message``).
    accounting:
        The channel's :class:`~repro.runtime.accounting.DeliveryAccounting`;
        ``dropped`` / ``duplicated`` / ``reordered`` are counted here.
    observer:
        Optional observer; each injected fault emits the same
        ``fault.drop`` / ``fault.duplicate`` / ``fault.reorder`` trace
        events as the datagram-level injector, labelled
        ``direction="message"``.
    """

    def __init__(
        self,
        config: ChannelFaults,
        deliver: Callable[[Message], None],
        accounting: DeliveryAccounting,
        observer: Observer | None = None,
    ) -> None:
        self.config = config
        self._deliver = deliver
        self._accounting = accounting
        self._obs = ensure_observer(observer)
        self._rng = np.random.default_rng(config.seed)
        #: Held-back message plus the span context active when it was
        #: offered, so its eventual delivery re-joins the originating
        #: trace instead of whichever message released it.
        self._held: tuple[Message, object | None] | None = None

    def offer(self, message: Message) -> None:
        """Apply the fault model to one message on its way down."""
        config = self.config
        obs = self._obs
        if (
            config.drop_rate > 0.0
            and self._rng.random() < config.drop_rate
        ):
            self._accounting.dropped += 1
            if obs.enabled:
                obs.inc("fault.drops", direction="message")
                obs.event("fault.drop", direction="message")
            return
        copies = 1
        if (
            config.duplicate_rate > 0.0
            and self._rng.random() < config.duplicate_rate
        ):
            copies = 2
            self._accounting.duplicated += 1
            if obs.enabled:
                obs.inc("fault.duplicates", direction="message")
                obs.event("fault.duplicate", direction="message")
        if (
            config.reorder_rate > 0.0
            and self._rng.random() < config.reorder_rate
            and self._held is None
        ):
            # Hold the first copy back; it is released after the next
            # message goes through (or at flush time).
            self._accounting.reordered += 1
            if obs.enabled:
                obs.inc("fault.reorders", direction="message")
                obs.event("fault.reorder", direction="message")
            self._held = (message, obs.span_context())
            for _ in range(copies - 1):
                self._deliver(message)
            return
        held, self._held = self._held, None
        for _ in range(copies):
            self._deliver(message)
        if held is not None:
            self._deliver_held(held)

    def flush(self) -> None:
        """Release any held-back message (end of run)."""
        held, self._held = self._held, None
        if held is not None:
            self._deliver_held(held)

    def _deliver_held(self, held: tuple[Message, object | None]) -> None:
        message, context = held
        with self._obs.remote_parent(context):
            self._deliver(message)
