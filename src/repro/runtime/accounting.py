"""The one delivery-accounting model every delivery stack reports in.

Historically each execution path kept its own counters with subtly
different semantics: the simulated star network's ``ChannelStats``
counted *attempted* sends (``messages`` / ``bytes``), while the
transport stack's ``DeliveryReport`` distinguished *sent* from
*delivered* and *payload* from *wire* bytes.  :class:`DeliveryAccounting`
reconciles them into a single documented model:

``attempted``
    Application messages the sites offered for transmission.  This is
    what the sender pays for -- a message counts here even if the link
    then drops it.
``delivered``
    Messages actually applied at the coordinator.  On a loss-free or
    reliable (ARQ) channel ``delivered == attempted`` after a full
    drain; on an unreliable channel without retransmission the
    difference is exactly the messages lost.  A duplicated message that
    is applied twice counts twice (the direct and simulated channels
    deliver duplicates; the ARQ receiver suppresses them).
``payload_bytes``
    Serialised synopsis bytes of the *attempted* messages -- the
    paper's communication-cost meter.  Dropped messages are included
    (the sender paid for them); framing and retransmission are not.
``wire_bytes``
    Bytes actually offered to the medium: envelopes, retransmissions,
    heartbeats and DONE markers included.  Equal to ``payload_bytes``
    on the direct and simulated channels (messages travel unframed);
    strictly larger on the ARQ transport channel.
``ack_bytes``
    Downlink bytes spent on acknowledgements (ARQ only).
``dropped`` / ``duplicated`` / ``reordered``
    What the channel's fault injector did to the traffic.  On the ARQ
    channel these count *datagrams* (a single application message can
    be dropped several times and still be delivered once); on the
    direct and simulated channels they count application messages.
``retransmissions`` / ``duplicates_suppressed``
    The work the reliability layer performed to turn the faulty link
    back into exactly-once delivery (zero on the other channels).

The invariants every channel maintains (asserted by the runtime test
suite, so a new backend cannot silently double-count):

* ``payload_bytes <= wire_bytes`` (framing never shrinks a message);
* ``delivered <= attempted + duplicated`` (nothing is invented);
* with no faults and no reliability layer,
  ``attempted == delivered`` and ``payload_bytes == wire_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["DeliveryAccounting"]


@dataclass
class DeliveryAccounting:
    """Unified delivery counters; see the module docstring for the
    meaning of each field and the cross-channel invariants."""

    attempted: int = 0
    delivered: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    ack_bytes: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    retransmissions: int = 0
    duplicates_suppressed: int = 0

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def overhead_ratio(self) -> float:
        """Wire bytes per application payload byte (>= 1)."""
        if self.payload_bytes == 0:
            return float("inf") if self.wire_bytes else 1.0
        return self.wire_bytes / self.payload_bytes

    @property
    def delivered_exactly_once(self) -> bool:
        """Every attempted message was applied exactly once."""
        return self.attempted == self.delivered

    @property
    def lost(self) -> int:
        """Messages attempted but never applied (cannot be negative on
        a quiesced channel)."""
        return max(0, self.attempted - self.delivered)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "DeliveryAccounting") -> "DeliveryAccounting":
        """Add ``other``'s counters into this accounting (in place)."""
        for spec in fields(DeliveryAccounting):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return self

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for reports, traces and JSON export)."""
        return {
            spec.name: getattr(self, spec.name)
            for spec in fields(DeliveryAccounting)
        }
