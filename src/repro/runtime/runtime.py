"""The unified execution loop: one runtime, three channels, checkpoints.

:class:`Runtime` owns the remote sites and the coordinator and drives
them over any :class:`~repro.runtime.channel.Channel`.  The loop is the
same whatever the backend: records are fed round-robin (one record per
site per round), the channel decides how the resulting messages travel,
and the runtime handles cross-cutting concerns -- fault injection
configuration, unified accounting, trace events, and the
checkpoint/resume lifecycle built on :mod:`repro.io.checkpoint`:

* :meth:`Runtime.checkpoint` quiesces the channel (everything in
  flight lands), then snapshots every site, the coordinator and a
  manifest recording the stream position;
* :meth:`Runtime.resume` rebuilds a runtime from such a directory; its
  next :meth:`run` call skips the records already consumed, so a site
  crash mid-stream converges to coordinator state *identical* to an
  uninterrupted run (the crash/resume suite asserts byte-identical
  snapshots on all three channel backends).

``CluDistream.feed`` / ``run_simulation`` / ``run_over_transport`` are
thin façades over this loop; new execution modes (sharding, async
batching, alternative wire formats) plug in as new channels without
touching the drivers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.coordinator import Coordinator
from repro.core.protocol import Message
from repro.core.remote import RemoteSite
from repro.obs.observer import Observer, ensure_observer
from repro.runtime.accounting import DeliveryAccounting
from repro.runtime.channel import Channel

__all__ = ["MANIFEST_NAME", "RunReport", "Runtime"]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1


@dataclass(frozen=True)
class RunReport:
    """Outcome of one :meth:`Runtime.run` call.

    Attributes
    ----------
    records:
        Records delivered to sites *by this call* (records skipped while
        resuming are not counted).
    rounds:
        Total stream rounds consumed so far, including rounds replayed
        from a checkpoint manifest.
    duration:
        Channel time elapsed, in (virtual where applicable) seconds.
    accounting:
        The channel's delivery accounting at the end of the run.
    checkpoints:
        Paths of the checkpoint directories written during the run.
    """

    records: int
    rounds: int
    duration: float
    accounting: DeliveryAccounting
    checkpoints: tuple[Path, ...]


class Runtime:
    """Sites + coordinator driven over one pluggable channel.

    Parameters
    ----------
    sites / coordinator:
        The system to drive.  :meth:`repro.core.cludistream.CluDistream.runtime`
        builds a runtime from an assembled system.
    channel:
        Delivery backend; see :mod:`repro.runtime.channel`.
    observer:
        Optional :class:`~repro.obs.observer.Observer`; the runtime
        emits ``runtime.run`` / ``runtime.checkpoint`` /
        ``runtime.resume`` trace events and shares the observer with
        the channel.
    checkpoint_dir:
        Directory for :meth:`checkpoint` snapshots.  When set, a
        completed :meth:`run` writes a final checkpoint automatically.
    checkpoint_every:
        Optional period, in rounds, of automatic mid-run checkpoints.
    """

    def __init__(
        self,
        sites: Sequence[RemoteSite],
        coordinator: Coordinator,
        channel: Channel,
        observer: Observer | None = None,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int | None = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        self.sites = list(sites)
        self.coordinator = coordinator
        self.channel = channel
        self.observer = ensure_observer(observer)
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self._by_id = {site.site_id: site for site in self.sites}
        #: Live endpoint descriptors (``{"telemetry": {"host", "port",
        #: "url"}, ...}``) recorded verbatim in the checkpoint manifest
        #: so tooling can find the actually bound ports of a run --
        #: callers fill this in after binding (port 0 resolves late).
        self.endpoints: dict[str, dict] = {}
        #: Stream rounds already consumed (> 0 after a resume).
        self._round = 0
        self._opened = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rounds_completed(self) -> int:
        """Stream rounds consumed so far (one record per site each)."""
        return self._round

    def accounting(self) -> DeliveryAccounting:
        """The channel's current delivery accounting."""
        return self.channel.accounting()

    def _site(self, site_id: int) -> RemoteSite:
        try:
            return self._by_id[site_id]
        except KeyError:
            raise KeyError(f"unknown site {site_id}") from None

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def _ensure_open(self, sites: Sequence[RemoteSite] | None = None) -> None:
        if not self._opened:
            self.channel.open(
                self.sites if sites is None else sites,
                self.coordinator,
                self.observer,
            )
            self._opened = True

    def step(self, site_id: int, record: np.ndarray) -> list[Message]:
        """Feed a single record through the channel (keeps it open).

        The single-record sibling of :meth:`run`, backing
        ``CluDistream.feed``; returns the messages the site emitted.
        """
        self._ensure_open()
        return self.channel.submit(self._site(site_id), record)

    def run(
        self,
        streams: Mapping[int, Iterable[np.ndarray]],
        max_records_per_site: int,
        stop_after_round: int | None = None,
    ) -> RunReport:
        """Drive every stream through the channel, round-robin.

        Parameters
        ----------
        streams:
            ``site_id -> record iterable``.  After a resume, the streams
            must replay the same records as the original run; the first
            :attr:`rounds_completed` records of each are skipped.
        max_records_per_site:
            Records consumed from each stream (including any skipped
            while resuming).
        stop_after_round:
            Abandon the run once this many rounds have been consumed --
            the crash-simulation hook used by the resume test suite.  An
            abandoned run skips ``channel.finish()`` (no end-of-stream
            markers, no final checkpoint) but still closes the channel.

        Returns
        -------
        RunReport
        """
        if max_records_per_site < 1:
            raise ValueError("max_records_per_site must be positive")
        obs = self.observer
        iterators: dict[int, Iterator[np.ndarray]] = {
            site_id: iter(stream) for site_id, stream in streams.items()
        }
        sites = {site_id: self._site(site_id) for site_id in iterators}
        # Only the sites with a stream get wired; idle sites stay
        # untouched (exactly what the pre-runtime drivers did).
        self._ensure_open(list(sites.values()))
        checkpoints: list[Path] = []
        last_checkpoint_round = -1
        delivered = 0
        stopped = False
        # Detached on purpose: the run span brackets the whole loop in
        # the timeline without becoming the parent of per-chunk spans,
        # so every site chunk-test span stays the root of its own trace.
        run_span = obs.start_span("runtime.run", channel=self.channel.name)
        try:
            for site_id, iterator in iterators.items():
                for _ in range(min(self._round, max_records_per_site)):
                    next(iterator, None)
            for _ in range(self._round, max_records_per_site):
                for site_id, iterator in iterators.items():
                    record = next(iterator, None)
                    if record is None:
                        continue
                    self.channel.submit(sites[site_id], record)
                    delivered += 1
                self._round += 1
                if (
                    self.checkpoint_every is not None
                    and self.checkpoint_dir is not None
                    and self._round % self.checkpoint_every == 0
                ):
                    checkpoints.append(self.checkpoint())
                    last_checkpoint_round = self._round
                if stop_after_round is not None and self._round >= stop_after_round:
                    stopped = True
                    break
            if not stopped:
                self.channel.finish()
                if (
                    self.checkpoint_dir is not None
                    and last_checkpoint_round != self._round
                ):
                    checkpoints.append(self.checkpoint())
        finally:
            self.channel.close()
            self._opened = False
        if obs.enabled:
            obs.span_event_on(
                run_span, "finished", records=delivered, rounds=self._round
            )
            obs.finish_span(run_span, "stopped" if stopped else "ok")
            obs.inc("runtime.records", delivered)
            obs.event(
                "runtime.run",
                channel=self.channel.name,
                records=delivered,
                rounds=self._round,
                stopped=stopped,
            )
        return RunReport(
            records=delivered,
            rounds=self._round,
            duration=self.channel.duration,
            accounting=self.channel.accounting(),
            checkpoints=tuple(checkpoints),
        )

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str | Path | None = None) -> Path:
        """Quiesce the channel and snapshot the whole system.

        Writes one JSON checkpoint per site, one for the coordinator,
        and a ``manifest.json`` recording the stream position; the
        manifest is written last, so a directory containing one is
        always a complete, loadable checkpoint.

        Parameters
        ----------
        directory:
            Target directory (created if missing); defaults to the
            runtime's ``checkpoint_dir``.

        Returns
        -------
        Path
            The checkpoint directory.
        """
        from repro.io.checkpoint import save_coordinator, save_site

        target = Path(directory) if directory is not None else self.checkpoint_dir
        if target is None:
            raise ValueError("no checkpoint directory configured")
        obs = self.observer
        # Detached for the same reason as the run span: checkpoints
        # must not adopt (or be adopted by) per-chunk traces.
        span = obs.start_span("runtime.checkpoint", round=self._round)
        with obs.timer("profile.checkpoint"):
            target.mkdir(parents=True, exist_ok=True)
            if self._opened:
                self.channel.quiesce()
            for site in self.sites:
                save_site(site, target / f"site-{site.site_id}.json")
            save_coordinator(self.coordinator, target / "coordinator.json")
            manifest = {
                "format": MANIFEST_FORMAT,
                "kind": "runtime",
                "round": self._round,
                "site_ids": [site.site_id for site in self.sites],
            }
            if self.endpoints:
                manifest["endpoints"] = self.endpoints
            if self.coordinator.history is not None or any(
                site.history is not None for site in self.sites
            ):
                # Marker only: the history state itself rides inside
                # the site/coordinator snapshots.
                manifest["history"] = True
            (target / MANIFEST_NAME).write_text(json.dumps(manifest))
        obs.finish_span(span)
        if obs.enabled:
            obs.inc("runtime.checkpoints")
            obs.event(
                "runtime.checkpoint",
                round=self._round,
                sites=len(self.sites),
                path=str(target),
            )
        return target

    @classmethod
    def resume(
        cls,
        checkpoint_dir: str | Path,
        channel: Channel,
        observer: Observer | None = None,
        checkpoint_every: int | None = None,
    ) -> "Runtime":
        """Rebuild a runtime from a :meth:`checkpoint` directory.

        The restored runtime continues exactly where the checkpoint was
        taken: model ids, counters, event tables, rng states and the
        stream position are all preserved, so running it over the same
        streams converges to the same coordinator state as a run that
        never crashed.
        """
        from repro.io.checkpoint import load_coordinator, load_site

        directory = Path(checkpoint_dir)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"no runtime checkpoint manifest at {manifest_path}"
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("kind") != "runtime":
            raise ValueError("manifest is not a runtime checkpoint")
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"unsupported runtime checkpoint format {manifest.get('format')}"
            )
        observer = ensure_observer(observer)
        sites = [
            load_site(directory / f"site-{site_id}.json", observer=observer)
            for site_id in manifest["site_ids"]
        ]
        coordinator = load_coordinator(
            directory / "coordinator.json", observer=observer
        )
        runtime = cls(
            sites,
            coordinator,
            channel,
            observer=observer,
            checkpoint_dir=directory,
            checkpoint_every=checkpoint_every,
        )
        runtime._round = manifest["round"]
        if observer.enabled:
            observer.inc("runtime.resumes")
            observer.event(
                "runtime.resume",
                round=runtime._round,
                sites=len(sites),
                path=str(directory),
            )
        return runtime

    def __repr__(self) -> str:
        return (
            f"Runtime(sites={len(self.sites)}, channel={self.channel.name!r}, "
            f"rounds={self._round})"
        )
