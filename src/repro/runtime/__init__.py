"""The unified execution layer behind CluDistream's delivery stacks.

One :class:`Runtime` drives sites + coordinator over a pluggable
:class:`Channel`; the three backends (:class:`DirectChannel`,
:class:`SimulatedChannel`, :class:`TransportChannel`) wrap the direct,
discrete-event-simulated and ARQ-transport delivery paths behind the
same contract.  Fault injection (:class:`ChannelFaults`), accounting
(:class:`DeliveryAccounting`) and checkpoint/resume live here, once,
instead of three times.
"""

from repro.runtime.accounting import DeliveryAccounting
from repro.runtime.channel import (
    Channel,
    DirectChannel,
    SimulatedChannel,
    TransportChannel,
)
from repro.runtime.faults import ChannelFaults, MessageFaultInjector
from repro.runtime.runtime import MANIFEST_NAME, RunReport, Runtime

__all__ = [
    "Channel",
    "ChannelFaults",
    "DeliveryAccounting",
    "DirectChannel",
    "MANIFEST_NAME",
    "MessageFaultInjector",
    "RunReport",
    "Runtime",
    "SimulatedChannel",
    "TransportChannel",
]
