"""The pluggable ``Channel`` interface: one contract, three backends.

A :class:`Channel` owns everything between a
:class:`~repro.core.remote.RemoteSite`'s emitted messages and the
:class:`~repro.core.coordinator.Coordinator`: wiring, delivery timing,
fault injection and accounting.  The :class:`~repro.runtime.runtime.Runtime`
drives all three implementations through the same five calls --
``open``, ``submit`` (once per record), ``quiesce`` (force everything
in flight to land, e.g. before a checkpoint), ``finish`` and ``close``
-- so the delivery semantics live entirely behind this interface:

* :class:`DirectChannel` -- synchronous in-process delivery; messages
  reach the coordinator before ``submit`` returns;
* :class:`SimulatedChannel` -- the discrete-event star network with
  latency/bandwidth and the Figure 2 cost collector; ``submit``
  advances the virtual clock to each record's arrival time;
* :class:`TransportChannel` -- the full ARQ transport stack
  (:mod:`repro.transport`); ``submit`` drains the reliable outboxes
  after every record so delivery order equals emission order even
  under seeded faults.

Each backend honours the same :class:`~repro.runtime.faults.ChannelFaults`
spec and reports the same :class:`~repro.runtime.accounting.DeliveryAccounting`
model, which is what lets an experiment swap backends without touching
its driver or its metering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Sequence

from repro.core.coordinator import Coordinator
from repro.core.protocol import Message
from repro.core.remote import RemoteSite
from repro.obs.observer import Observer, ensure_observer
from repro.runtime.accounting import DeliveryAccounting
from repro.runtime.faults import ChannelFaults, MessageFaultInjector

__all__ = [
    "Channel",
    "DirectChannel",
    "SimulatedChannel",
    "TransportChannel",
]


class Channel(ABC):
    """What the runtime needs from a delivery backend.

    Lifecycle: ``open`` wires sites to the coordinator, ``submit`` is
    called once per record, ``quiesce`` forces every in-flight message
    to be applied (the runtime calls it before taking a checkpoint),
    ``finish`` flushes end-of-run state (cost series, DONE markers) and
    ``close`` releases all wiring.  ``close`` must be safe after a
    partial run -- it is the channel's crash path.
    """

    #: Human-readable backend name (used in traces and reports).
    name: str = "channel"

    @abstractmethod
    def open(
        self,
        sites: Sequence[RemoteSite],
        coordinator: Coordinator,
        observer: Observer | None = None,
    ) -> None:
        """Wire ``sites`` and ``coordinator`` to this backend."""

    @abstractmethod
    def submit(self, site: RemoteSite, record) -> list[Message]:
        """Feed one record to ``site``; returns the messages it emitted."""

    def quiesce(self) -> None:
        """Force every in-flight message to reach the coordinator."""

    def finish(self) -> None:
        """Flush end-of-run state (after the last record)."""

    def close(self) -> None:
        """Unwire sites and release backend resources."""

    @abstractmethod
    def accounting(self) -> DeliveryAccounting:
        """Current delivery accounting in the unified model."""

    @property
    def duration(self) -> float:
        """Elapsed channel time in seconds (virtual where applicable)."""
        return 0.0


class DirectChannel(Channel):
    """Synchronous delivery: the paper's idealised lossless uplink.

    Messages produced by ``submit`` are applied at the coordinator
    immediately (through the fault injector, if one is configured), so
    there is never anything in flight and ``quiesce`` is trivial.

    Parameters
    ----------
    faults:
        Optional seeded :class:`~repro.runtime.faults.ChannelFaults`;
        drops actually lose messages (pair with
        ``CoordinatorConfig(tolerate_loss=True)``).
    """

    name = "direct"

    def __init__(self, faults: ChannelFaults | None = None) -> None:
        self._faults = faults
        self._accounting = DeliveryAccounting()
        self._injector: MessageFaultInjector | None = None
        self._deliver = None
        self._obs = ensure_observer(None)
        self._sites: list[RemoteSite] = []

    def open(self, sites, coordinator, observer=None):
        observer = ensure_observer(observer)
        self._obs = observer

        def deliver(message: Message) -> None:
            self._accounting.delivered += 1
            coordinator.handle_message(message)

        self._deliver = deliver
        if self._faults is not None and self._faults.any_enabled:
            self._injector = MessageFaultInjector(
                self._faults, deliver, self._accounting, observer=observer
            )
            self._deliver = self._injector.offer
        # Delivery happens at emission time, while the site's chunk-test
        # span is still active -- which is exactly what makes
        # coordinator-side spans children of the originating site span
        # on the synchronous backend.
        self._sites = list(sites)
        for site in sites:
            site._emit = self._on_emit

    def _on_emit(self, message: Message) -> None:
        accounting = self._accounting
        payload = message.payload_bytes()
        accounting.attempted += 1
        accounting.payload_bytes += payload
        accounting.wire_bytes += payload
        self._deliver(message)

    def submit(self, site, record):
        return site.process_record(record)

    def quiesce(self):
        if self._injector is not None:
            self._injector.flush()

    def finish(self):
        self.quiesce()

    def close(self):
        for site in self._sites:
            site._emit = None

    def accounting(self):
        return replace(self._accounting)


class SimulatedChannel(Channel):
    """The discrete-event star network as a runtime backend.

    ``submit`` advances the simulation clock to the record's arrival
    time (record ``k`` of every site lands at ``k / rate`` virtual
    seconds) before feeding the site, so uplink messages are metered at
    the exact virtual second they are sent -- the Figure 2 cost series
    falls out unchanged.  Deliveries ride the engine's event queue with
    the configured latency/bandwidth; ``quiesce`` drains the queue,
    which is what makes a mid-stream checkpoint consistent.

    Parameters
    ----------
    rate:
        Stream rate per site in records per virtual second.
    latency / bandwidth / sample_interval:
        Star-network link model and cost-collector grid, as in
        :class:`~repro.simulation.network.StarNetwork`.
    faults:
        Optional message-level fault spec, applied at the delivery
        boundary (the sender still pays for dropped messages, matching
        the unified accounting model).
    """

    name = "simulated"

    def __init__(
        self,
        rate: float = 1000.0,
        latency: float = 0.01,
        bandwidth: float | None = None,
        sample_interval: float = 1.0,
        faults: ChannelFaults | None = None,
    ) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        self._rate = rate
        self._latency = latency
        self._bandwidth = bandwidth
        self._sample_interval = sample_interval
        self._faults = faults
        self._accounting = DeliveryAccounting()
        self._injector: MessageFaultInjector | None = None
        self._sites: list[RemoteSite] = []
        self._counts: dict[int, int] = {}
        self.engine = None
        self.network = None

    def open(self, sites, coordinator, observer=None):
        from repro.simulation.engine import SimulationEngine
        from repro.simulation.network import StarNetwork

        observer = ensure_observer(observer)

        def deliver(message: Message) -> None:
            self._accounting.delivered += 1
            coordinator.handle_message(message)

        sink = deliver
        if self._faults is not None and self._faults.any_enabled:
            self._injector = MessageFaultInjector(
                self._faults, deliver, self._accounting, observer=observer
            )
            sink = self._injector.offer
        self.engine = SimulationEngine(observer=observer)
        self.network = StarNetwork(
            self.engine,
            deliver=sink,
            latency=self._latency,
            bandwidth=self._bandwidth,
            sample_interval=self._sample_interval,
            observer=observer,
        )
        self._sites = list(sites)
        self._counts = {site.site_id: 0 for site in sites}
        for site in sites:
            site._emit = self.network.channel_for(site.site_id).send

    def submit(self, site, record):
        count = self._counts[site.site_id]
        self._counts[site.site_id] = count + 1
        self.engine.advance(count / self._rate)
        return site.process_record(record)

    def quiesce(self):
        self.engine.run()
        if self._injector is not None:
            self._injector.flush()

    def finish(self):
        self.quiesce()
        self.network.finalize()

    def close(self):
        for site in self._sites:
            site._emit = None

    def accounting(self):
        accounting = replace(self._accounting)
        if self.network is not None:
            accounting.merge(self.network.accounting())
        return accounting

    @property
    def duration(self):
        return self.engine.now if self.engine is not None else 0.0

    def cost_series(self) -> tuple[list[float], list[float]]:
        """The per-second cumulative communication cost (Figure 2)."""
        return self.network.cost.series()


class TransportChannel(Channel):
    """The fault-tolerant ARQ transport stack as a runtime backend.

    ``submit`` feeds the site and then drains the reliable outboxes (the
    manual clock is advanced until every payload is acknowledged), so
    delivery order equals emission order and the coordinator converges
    to the loss-free state whatever the fault pattern -- the property
    the transport convergence suite pins down.

    Parameters
    ----------
    transport:
        Any :class:`~repro.transport.base.DatagramTransport`.
    clock:
        The :class:`~repro.transport.clock.ManualClock` shared with the
        transport's timers.
    reliability:
        Optional :class:`~repro.transport.reliability.ReliabilityConfig`.
    drain_step / drain_limit:
        Clock step and safety bound of each post-record drain.
    seed:
        Base seed for per-site retransmission jitter.
    faults:
        Optional :class:`~repro.runtime.faults.ChannelFaults`; the spec
        is mapped onto a datagram-level
        :class:`~repro.transport.lossy.LossyTransport` wrapping
        ``transport``, and the ARQ layer heals every injected fault.
    wire_codec / codec_config:
        Wire codec for every edge (see
        :func:`repro.core.serde.get_codec`); the default keeps the CDS1
        byte accounting of previous releases.
    """

    name = "transport"

    def __init__(
        self,
        transport,
        clock,
        reliability=None,
        drain_step: float = 0.25,
        drain_limit: float = 600.0,
        seed: int = 0,
        faults: ChannelFaults | None = None,
        wire_codec: str = "cds1",
        codec_config=None,
    ) -> None:
        self._transport = transport
        self._clock = clock
        self._reliability = reliability
        self._drain_step = drain_step
        self._drain_limit = drain_limit
        self._seed = seed
        self._faults = faults
        self._wire_codec = wire_codec
        self._codec_config = codec_config
        self._lossy = None
        self._sites: list[RemoteSite] = []
        self.endpoints = []
        self.coordinator_endpoint = None

    def open(self, sites, coordinator, observer=None):
        from repro.transport.endpoint import connect_system
        from repro.transport.lossy import FaultConfig, LossyTransport

        observer = ensure_observer(observer)
        transport = self._transport
        if self._faults is not None and self._faults.any_enabled:
            self._lossy = LossyTransport(
                transport,
                self._clock,
                FaultConfig(
                    drop_rate=self._faults.drop_rate,
                    duplicate_rate=self._faults.duplicate_rate,
                    reorder_rate=self._faults.reorder_rate,
                ),
                seed=self._faults.seed,
                observer=observer,
            )
            transport = self._lossy
        self._sites = list(sites)
        self.endpoints, self.coordinator_endpoint = connect_system(
            sites,
            coordinator,
            transport,
            self._clock,
            config=self._reliability,
            seed=self._seed,
            observer=observer,
            wire_codec=self._wire_codec,
            codec_config=self._codec_config,
        )

    def submit(self, site, record):
        from repro.transport.endpoint import drain

        messages = site.process_record(record)
        drain(
            self._clock,
            self.endpoints,
            step=self._drain_step,
            limit=self._drain_limit,
        )
        return messages

    def quiesce(self):
        from repro.transport.endpoint import drain

        drain(
            self._clock,
            self.endpoints,
            step=self._drain_step,
            limit=self._drain_limit,
        )

    def finish(self):
        for endpoint in self.endpoints:
            endpoint.finish()

    def close(self):
        for site in self._sites:
            site._emit = None
        for endpoint in self.endpoints:
            endpoint.close()

    def accounting(self):
        accounting = DeliveryAccounting()
        for endpoint in self.endpoints:
            stats = endpoint.sender.stats
            accounting.attempted += stats.payloads_sent
            accounting.payload_bytes += stats.payload_bytes
            accounting.wire_bytes += stats.wire_bytes
            accounting.retransmissions += stats.retransmissions
        if self.coordinator_endpoint is not None:
            stats = self.coordinator_endpoint.receiver.stats
            accounting.delivered = stats.delivered
            accounting.ack_bytes = stats.ack_wire_bytes
            accounting.duplicates_suppressed = stats.duplicates_suppressed
        if self._lossy is not None:
            faults = self._lossy.faults
            accounting.dropped = faults.dropped + faults.partition_drops
            accounting.duplicated = faults.duplicated
            accounting.reordered = faults.reordered
        return accounting

    @property
    def duration(self):
        return self._clock.now
