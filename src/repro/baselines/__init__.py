"""Baseline algorithms the paper compares CluDistream against.

* :mod:`repro.baselines.sem` -- the Scalable EM (SEM) of Bradley, Reina
  and Fayyad, which compresses processed records into per-cluster
  sufficient statistics and maintains a single model over the whole
  stream;
* :mod:`repro.baselines.sampling` -- sampling-based EM: fit EM over a
  reservoir sample (the clearly-worst curve of Figure 6);
* :mod:`repro.baselines.periodic` -- the DBDC-style periodic-reporting
  strategy used for the Figure 2 communication comparison: every site
  runs SEM locally and ships its model to the coordinator on a fixed
  period, whether or not anything changed;
* :mod:`repro.baselines.kmeans` -- streaming divide-and-conquer
  k-means, the hard-partition approach the paper's introduction argues
  against.
"""

from repro.baselines.kmeans import StreamKMeans, StreamKMeansConfig, lloyd_kmeans
from repro.baselines.periodic import PeriodicReporter, PeriodicReporterConfig
from repro.baselines.sampling import ReservoirSampler, SamplingEM, SamplingEMConfig
from repro.baselines.sem import ScalableEM, SEMConfig, SufficientStatistics

__all__ = [
    "PeriodicReporter",
    "PeriodicReporterConfig",
    "ReservoirSampler",
    "SEMConfig",
    "SamplingEM",
    "SamplingEMConfig",
    "ScalableEM",
    "StreamKMeans",
    "StreamKMeansConfig",
    "lloyd_kmeans",
    "SufficientStatistics",
]
