"""Scalable EM (SEM) -- the paper's primary comparator.

SEM is the scalable mixture-model clustering framework of Bradley,
Reina and Fayyad ("Clustering very large databases using EM mixture
models", ICPR 2000, reference [6] of the paper).  The algorithm keeps a
*single* Gaussian mixture over everything seen so far and bounds memory
by compressing processed records:

1. records accumulate in a bounded buffer;
2. when the buffer fills, *extended EM* runs over the live records plus
   the per-cluster sufficient statistics of previously compressed data;
3. records confidently assigned to a cluster (small Mahalanobis
   distance to its mean) are folded into that cluster's sufficient
   statistics (the discard set) and evicted; uncertain records are
   retained up to the buffer budget.

Because one model must explain data from every distribution the stream
has gone through, quality degrades whenever the stream evolves -- which
is exactly the effect Figures 5-7 demonstrate and CluDistream's
test-and-cluster strategy avoids.

The implementation follows the common single-model simplification of
the framework (primary compression only; no secondary sub-cluster CS
sets), which preserves the compress-versus-refit behaviour the paper's
comparison exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.em import EMConfig, fit_em
from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture

__all__ = ["SEMConfig", "ScalableEM", "SufficientStatistics"]


@dataclass
class SufficientStatistics:
    """Compressed summary of a block of records (one cluster's discard set).

    Stores raw moments so blocks combine by addition:

    Attributes
    ----------
    n:
        Record count.
    linear_sum:
        ``Σ x`` over the block, shape ``(d,)``.
    outer_sum:
        ``Σ x xᵀ`` over the block, shape ``(d, d)``.
    """

    n: float
    linear_sum: np.ndarray
    outer_sum: np.ndarray

    @classmethod
    def empty(cls, dim: int) -> "SufficientStatistics":
        return cls(
            n=0.0,
            linear_sum=np.zeros(dim),
            outer_sum=np.zeros((dim, dim)),
        )

    @classmethod
    def from_records(cls, records: np.ndarray) -> "SufficientStatistics":
        records = np.atleast_2d(np.asarray(records, dtype=float))
        return cls(
            n=float(records.shape[0]),
            linear_sum=records.sum(axis=0),
            outer_sum=records.T @ records,
        )

    def absorb(self, records: np.ndarray) -> None:
        """Fold a block of records into this summary, in place."""
        records = np.atleast_2d(np.asarray(records, dtype=float))
        self.n += records.shape[0]
        self.linear_sum += records.sum(axis=0)
        self.outer_sum += records.T @ records

    @property
    def mean(self) -> np.ndarray:
        if self.n <= 0:
            raise ValueError("empty sufficient statistics have no mean")
        return self.linear_sum / self.n

    @property
    def scatter(self) -> np.ndarray:
        """Central second moment ``Σ (x-μ)(x-μ)ᵀ / n``."""
        mean = self.mean
        return self.outer_sum / self.n - np.outer(mean, mean)


@dataclass(frozen=True, kw_only=True)
class SEMConfig:
    """SEM parameters.

    Parameters
    ----------
    n_components:
        Mixture size ``K``.
    buffer_size:
        Live-record budget; extended EM runs when it fills.
    compression_radius:
        Squared-Mahalanobis radius inside which a record is folded into
        its cluster's discard set.  Smaller values retain more records
        (higher fidelity, more memory).
    em:
        Inner EM settings for model refits.
    """

    n_components: int = 5
    buffer_size: int = 2000
    compression_radius: float = 4.0
    em: EMConfig = field(default_factory=EMConfig)

    def __post_init__(self) -> None:
        if self.buffer_size < self.n_components:
            raise ValueError("buffer must hold at least n_components records")
        if self.compression_radius <= 0.0:
            raise ValueError("compression_radius must be positive")


class ScalableEM:
    """Streaming SEM clusterer maintaining one global mixture.

    Parameters
    ----------
    dim:
        Record dimensionality.
    config:
        SEM parameters (``K`` defaults to the paper's 5).
    rng:
        Randomness for EM restarts.
    """

    def __init__(
        self,
        dim: int,
        config: SEMConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError("dim must be at least 1")
        self.dim = dim
        self.config = config or SEMConfig()
        self._rng = rng if rng is not None else np.random.default_rng(17)
        self._buffer: list[np.ndarray] = []
        self._discard: list[SufficientStatistics] = []
        self._mixture: GaussianMixture | None = None
        self.records_seen = 0
        self.refits = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mixture(self) -> GaussianMixture | None:
        """The current global model (``None`` before the first refit)."""
        return self._mixture

    @property
    def retained(self) -> int:
        """Live records currently buffered."""
        return len(self._buffer)

    @property
    def compressed(self) -> float:
        """Records folded into discard-set sufficient statistics."""
        return float(sum(stats.n for stats in self._discard))

    def memory_bytes(self) -> int:
        """Buffer + sufficient statistics + model parameters, in bytes."""
        buffer_bytes = 8 * self.dim * len(self._buffer)
        stats_bytes = sum(
            8 * (1 + self.dim + self.dim * self.dim) for _ in self._discard
        )
        model_bytes = self._mixture.payload_bytes() if self._mixture else 0
        return buffer_bytes + stats_bytes + model_bytes

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def process_record(self, record: np.ndarray) -> None:
        """Buffer one record; refit + compress when the buffer fills."""
        record = np.asarray(record, dtype=float).ravel()
        if record.size != self.dim:
            raise ValueError(
                f"record has dimension {record.size}, SEM expects {self.dim}"
            )
        self._buffer.append(record)
        self.records_seen += 1
        if len(self._buffer) >= self.config.buffer_size:
            self.refit()

    def process_stream(self, records: Iterable[np.ndarray]) -> None:
        """Ingest many records."""
        for record in records:
            self.process_record(record)

    # ------------------------------------------------------------------
    # Extended EM + compression
    # ------------------------------------------------------------------
    def refit(self) -> GaussianMixture:
        """Run extended EM over live records + discard sets, then compress.

        Returns the refreshed mixture.  Safe to call with a partially
        filled buffer (used at stream end and by the periodic reporting
        baseline).
        """
        live = (
            np.stack(self._buffer)
            if self._buffer
            else np.empty((0, self.dim))
        )
        self._mixture = self._extended_em(live)
        self.refits += 1
        if live.shape[0]:
            self._compress(live)
        return self._mixture

    def _active_blocks(self) -> list[SufficientStatistics]:
        """Discard sets that actually hold records."""
        return [stats for stats in self._discard if stats.n > 0]

    def _surrogate_records(self) -> tuple[np.ndarray, np.ndarray]:
        """Discard sets as weighted surrogate records.

        Each sufficient-statistics block contributes its mean with mass
        ``n`` -- the block-assignment approximation of extended EM.  The
        block scatter is reintroduced in the M-step via
        :meth:`_m_step_with_blocks`.
        """
        blocks = self._active_blocks()
        if not blocks:
            return np.empty((0, self.dim)), np.empty(0)
        means = np.stack([stats.mean for stats in blocks])
        masses = np.array([stats.n for stats in blocks])
        return means, masses

    def _extended_em(self, live: np.ndarray) -> GaussianMixture:
        """EM over live records plus compressed blocks."""
        surrogate_means, surrogate_masses = self._surrogate_records()
        if live.shape[0] + surrogate_means.shape[0] < self.config.n_components:
            raise ValueError("not enough data to fit the SEM mixture")

        # Seed: previous model when available, else plain EM on live data.
        if self._mixture is None:
            return fit_em(live, self.config.em, self._rng).mixture

        mixture = self._mixture
        for _ in range(self.config.em.max_iter):
            new_mixture = self._m_step_with_blocks(
                mixture, live, surrogate_means, surrogate_masses
            )
            delta = self._model_shift(mixture, new_mixture)
            mixture = new_mixture
            if delta <= self.config.em.tol:
                break
        return mixture

    def _m_step_with_blocks(
        self,
        mixture: GaussianMixture,
        live: np.ndarray,
        block_means: np.ndarray,
        block_masses: np.ndarray,
    ) -> GaussianMixture:
        """One extended E+M step treating blocks as weighted points."""
        k = mixture.n_components
        dim = self.dim
        masses = np.zeros(k)
        linear = np.zeros((k, dim))
        outer = np.zeros((k, dim, dim))

        if live.shape[0]:
            resp = mixture.posterior(live)
            masses += resp.sum(axis=0)
            linear += resp.T @ live
            outer += np.einsum("nk,ni,nj->kij", resp, live, live)

        if block_means.shape[0]:
            resp_blocks = mixture.posterior(block_means)
            weighted = resp_blocks * block_masses[:, None]
            masses += weighted.sum(axis=0)
            # A block's posterior (evaluated at its mean) distributes its
            # whole raw moments across the clusters: n_b μ_b for the
            # linear term and Σ x xᵀ (which carries the block's internal
            # scatter) for the quadratic term.
            for b, stats in enumerate(self._active_blocks()):
                linear += np.outer(resp_blocks[b], stats.linear_sum)
                for j in range(k):
                    outer[j] += resp_blocks[b, j] * stats.outer_sum

        total = masses.sum()
        components = []
        weights = np.maximum(masses, 1e-12) / max(total, 1e-12)
        ridge = self.config.em.covariance_ridge
        for j in range(k):
            if masses[j] <= 1e-9:
                components.append(mixture.components[j])
                continue
            mean = linear[j] / masses[j]
            cov = outer[j] / masses[j] - np.outer(mean, mean)
            cov += ridge * np.eye(dim) + 1e-9 * np.eye(dim)
            components.append(
                Gaussian(mean, cov, diagonal=self.config.em.diagonal)
            )
        return GaussianMixture(weights, tuple(components))

    @staticmethod
    def _model_shift(old: GaussianMixture, new: GaussianMixture) -> float:
        """Max mean displacement between successive models."""
        shifts = [
            float(np.linalg.norm(a.mean - b.mean))
            for a, b in zip(old.components, new.components)
        ]
        return max(shifts) if shifts else 0.0

    def _compress(self, live: np.ndarray) -> None:
        """Primary compression: fold confident records into discard sets."""
        assert self._mixture is not None
        if not self._discard:
            self._discard = [
                SufficientStatistics.empty(self.dim)
                for _ in range(self.config.n_components)
            ]
        assignments = self._mixture.assign(live)
        keep: list[np.ndarray] = []
        for j, component in enumerate(self._mixture.components):
            members = live[assignments == j]
            if not members.shape[0]:
                continue
            distances = component.mahalanobis_sq(members)
            confident = distances <= self.config.compression_radius
            if np.any(confident):
                self._discard[j].absorb(members[confident])
            keep.extend(members[~confident])
        # Retain uncertain records, newest last, within half the buffer.
        budget = self.config.buffer_size // 2
        self._buffer = [np.asarray(row) for row in keep[-budget:]]

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def current_model(self) -> GaussianMixture:
        """The model, refitting first if data arrived since the last fit.

        Raises
        ------
        ValueError
            If no records have been seen at all.
        """
        if self._mixture is None or self._buffer:
            if self.records_seen == 0:
                raise ValueError("SEM has seen no records")
            if (
                self._mixture is None
                and len(self._buffer) < self.config.n_components
            ):
                raise ValueError("not enough records for an initial SEM fit")
            self.refit()
        assert self._mixture is not None
        return self._mixture

    def __repr__(self) -> str:
        return (
            f"ScalableEM(dim={self.dim}, seen={self.records_seen}, "
            f"retained={self.retained}, compressed={self.compressed:.0f})"
        )
