"""Sampling-based EM baseline (the weakest curve of Figure 6).

The simplest way to bound the cost of clustering a stream is to keep a
uniform sample and fit EM to it.  :class:`ReservoirSampler` implements
Vitter's reservoir sampling (algorithm R), which maintains a uniform
sample of everything seen so far in O(m) memory; :class:`SamplingEM`
refits a Gaussian mixture over the reservoir on a fixed cadence.

The paper's landmark-window comparison shows why this loses: the sample
thins out every distribution the stream has visited, so cluster detail
is averaged away -- "the sampling may lose a lot of valuable clustering
information".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.em import EMConfig, fit_em
from repro.core.mixture import GaussianMixture

__all__ = ["ReservoirSampler", "SamplingEM", "SamplingEMConfig"]


class ReservoirSampler:
    """Uniform reservoir sample of a stream (Vitter's algorithm R).

    Parameters
    ----------
    capacity:
        Sample size ``m``.
    rng:
        Randomness source.

    Notes
    -----
    After ``n ≥ m`` records every record seen has probability ``m / n``
    of being in the reservoir -- the property the tests verify.
    """

    def __init__(
        self, capacity: int, rng: np.random.Generator | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._rng = rng if rng is not None else np.random.default_rng(23)
        self._sample: list[np.ndarray] = []
        self.seen = 0

    def offer(self, record: np.ndarray) -> bool:
        """Present one record; returns ``True`` if it entered the sample."""
        record = np.asarray(record, dtype=float).ravel()
        self.seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(record)
            return True
        slot = int(self._rng.integers(self.seen))
        if slot < self.capacity:
            self._sample[slot] = record
            return True
        return False

    @property
    def sample(self) -> np.ndarray:
        """The current reservoir as an ``(m', d)`` array (``m' ≤ m``)."""
        if not self._sample:
            raise ValueError("reservoir is empty")
        return np.stack(self._sample)

    def __len__(self) -> int:
        return len(self._sample)


@dataclass(frozen=True, kw_only=True)
class SamplingEMConfig:
    """Sampling-EM parameters.

    Parameters
    ----------
    reservoir_size:
        Records kept in the uniform sample.
    refit_interval:
        Refit EM after this many new records (the model between refits
        is whatever the previous fit produced).
    em:
        Inner EM settings.
    """

    reservoir_size: int = 2000
    refit_interval: int = 2000
    em: EMConfig = field(default_factory=EMConfig)

    def __post_init__(self) -> None:
        if self.reservoir_size < self.em.n_components:
            raise ValueError("reservoir must hold at least K records")
        if self.refit_interval < 1:
            raise ValueError("refit_interval must be at least 1")


class SamplingEM:
    """EM over a reservoir sample, refitted on a fixed cadence."""

    def __init__(
        self,
        dim: int,
        config: SamplingEMConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError("dim must be at least 1")
        self.dim = dim
        self.config = config or SamplingEMConfig()
        self._rng = rng if rng is not None else np.random.default_rng(29)
        self.reservoir = ReservoirSampler(
            self.config.reservoir_size, rng=self._rng
        )
        self._mixture: GaussianMixture | None = None
        self._since_refit = 0
        self.records_seen = 0
        self.refits = 0

    @property
    def mixture(self) -> GaussianMixture | None:
        """Current model (``None`` before enough records arrive)."""
        return self._mixture

    def process_record(self, record: np.ndarray) -> None:
        """Offer the record to the reservoir; refit on cadence."""
        record = np.asarray(record, dtype=float).ravel()
        if record.size != self.dim:
            raise ValueError(
                f"record has dimension {record.size}, expected {self.dim}"
            )
        self.reservoir.offer(record)
        self.records_seen += 1
        self._since_refit += 1
        if (
            self._since_refit >= self.config.refit_interval
            and len(self.reservoir) >= self.config.em.n_components
        ):
            self.refit()

    def process_stream(self, records: Iterable[np.ndarray]) -> None:
        """Ingest many records."""
        for record in records:
            self.process_record(record)

    def refit(self) -> GaussianMixture:
        """Fit EM to the current reservoir contents."""
        result = fit_em(self.reservoir.sample, self.config.em, self._rng)
        self._mixture = result.mixture
        self._since_refit = 0
        self.refits += 1
        return self._mixture

    def current_model(self) -> GaussianMixture:
        """The model, fitting first if none exists yet."""
        if self._mixture is None or self._since_refit > 0:
            if len(self.reservoir) < self.config.em.n_components:
                raise ValueError("not enough sampled records to fit EM")
            self.refit()
        assert self._mixture is not None
        return self._mixture

    def memory_bytes(self) -> int:
        """Reservoir plus model parameters, in bytes."""
        sample_bytes = 8 * self.dim * len(self.reservoir)
        model_bytes = self._mixture.payload_bytes() if self._mixture else 0
        return sample_bytes + model_bytes
