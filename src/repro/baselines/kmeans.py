"""Streaming k-means baseline (the hard-partition strawman).

The paper's opening argument is that k-means-style stream clustering
(STREAM, CluStream, ...) assigns "each data record ... to exactly one
cluster" and therefore loses information when clusters overlap or
records are uncertain.  To let the benchmarks test that premise
directly, this module implements the STREAM-style divide-and-conquer
baseline:

* :func:`lloyd_kmeans` -- weighted Lloyd's algorithm with k-means++
  seeding (from scratch);
* :class:`StreamKMeans` -- buffer chunks of the stream, cluster each
  chunk, and maintain a bounded set of *weighted centroids* which is
  re-clustered (the divide-and-conquer step) whenever it grows too
  large -- the classic one-pass k-median/k-means scheme of Guha et al.
  [13, 14] the paper cites.

For quality comparison on the paper's likelihood scale, the hard model
converts to spherical Gaussians via :meth:`StreamKMeans.as_mixture`
(per-cluster mean, pooled within-cluster variance, weight = cluster
mass) -- the most charitable density reading of a k-means partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.em import kmeans_plus_plus_centers
from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture

__all__ = ["KMeansResult", "StreamKMeans", "StreamKMeansConfig", "lloyd_kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one Lloyd run.

    Attributes
    ----------
    centers:
        Cluster centres, shape ``(k, d)``.
    assignments:
        Hard assignment per input record.
    inertia:
        Weighted sum of squared distances to the assigned centres.
    n_iter:
        Lloyd iterations performed.
    """

    centers: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iter: int


def lloyd_kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> KMeansResult:
    """Weighted Lloyd's k-means with k-means++ seeding.

    Parameters
    ----------
    data:
        Records of shape ``(n, d)``.
    k:
        Number of clusters (``k <= n``).
    rng:
        Randomness for seeding.
    weights:
        Optional per-record masses (the divide-and-conquer step
        clusters weighted centroids); defaults to uniform.
    max_iter / tol:
        Stop when centres move less than ``tol`` or after ``max_iter``.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    n = data.shape[0]
    if k < 1 or k > n:
        raise ValueError(f"k must lie in [1, {n}], got {k}")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float).ravel()
        if weights.size != n or np.any(weights <= 0.0):
            raise ValueError("weights must be positive, one per record")

    centers = kmeans_plus_plus_centers(data, k, rng)
    assignments = np.zeros(n, dtype=int)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        distances = np.sum(
            (data[:, None, :] - centers[None, :, :]) ** 2, axis=2
        )
        assignments = np.argmin(distances, axis=1)
        new_centers = centers.copy()
        for j in range(k):
            mask = assignments == j
            if not np.any(mask):
                # Empty cluster: reseed on the worst-served record.
                worst = int(np.argmax(distances[np.arange(n), assignments]))
                new_centers[j] = data[worst]
                continue
            cluster_weights = weights[mask]
            new_centers[j] = (
                cluster_weights @ data[mask] / cluster_weights.sum()
            )
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        if shift <= tol:
            break
    distances = np.sum((data[:, None, :] - centers[None, :, :]) ** 2, axis=2)
    assignments = np.argmin(distances, axis=1)
    inertia = float(
        np.sum(weights * distances[np.arange(n), assignments])
    )
    return KMeansResult(
        centers=centers,
        assignments=assignments,
        inertia=inertia,
        n_iter=iterations,
    )


@dataclass(frozen=True, kw_only=True)
class StreamKMeansConfig:
    """Streaming k-means parameters.

    Parameters
    ----------
    k:
        Final cluster count.
    chunk_size:
        Records clustered per batch (the "divide" step).
    max_centroids:
        Bound on retained weighted centroids before the "conquer"
        re-clustering compresses them back to ``k``.
    """

    k: int = 5
    chunk_size: int = 2000
    max_centroids: int = 200

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.chunk_size < self.k:
            raise ValueError("chunk_size must be at least k")
        if self.max_centroids < self.k:
            raise ValueError("max_centroids must be at least k")


class StreamKMeans:
    """One-pass divide-and-conquer k-means over a stream."""

    def __init__(
        self,
        dim: int,
        config: StreamKMeansConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError("dim must be at least 1")
        self.dim = dim
        self.config = config or StreamKMeansConfig()
        self._rng = rng if rng is not None else np.random.default_rng(41)
        self._buffer: list[np.ndarray] = []
        self._centroids: list[np.ndarray] = []
        self._masses: list[float] = []
        #: Pooled within-cluster variance estimate (for as_mixture).
        self._variance_sum = 0.0
        self._variance_records = 0
        self.records_seen = 0

    def process_record(self, record: np.ndarray) -> None:
        """Buffer a record; cluster when the chunk fills."""
        record = np.asarray(record, dtype=float).ravel()
        if record.size != self.dim:
            raise ValueError(
                f"record has dimension {record.size}, expected {self.dim}"
            )
        self._buffer.append(record)
        self.records_seen += 1
        if len(self._buffer) >= self.config.chunk_size:
            self._flush()

    def process_stream(self, records) -> None:
        """Ingest many records."""
        for record in records:
            self.process_record(record)

    def _flush(self) -> None:
        chunk = np.stack(self._buffer)
        self._buffer = []
        result = lloyd_kmeans(chunk, self.config.k, self._rng)
        for j in range(self.config.k):
            mask = result.assignments == j
            count = int(mask.sum())
            if not count:
                continue
            self._centroids.append(result.centers[j])
            self._masses.append(float(count))
            if count > 1:
                residuals = chunk[mask] - result.centers[j]
                self._variance_sum += float(np.sum(residuals**2))
                self._variance_records += count * self.dim
        if len(self._centroids) > self.config.max_centroids:
            self._conquer()

    def _conquer(self) -> None:
        """Re-cluster the weighted centroids back down to ``k``."""
        points = np.stack(self._centroids)
        masses = np.asarray(self._masses)
        result = lloyd_kmeans(
            points, self.config.k, self._rng, weights=masses
        )
        new_centroids = []
        new_masses = []
        for j in range(self.config.k):
            mask = result.assignments == j
            if not np.any(mask):
                continue
            cluster_masses = masses[mask]
            new_centroids.append(
                cluster_masses @ points[mask] / cluster_masses.sum()
            )
            new_masses.append(float(cluster_masses.sum()))
        self._centroids = new_centroids
        self._masses = new_masses

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------
    def centers(self) -> tuple[np.ndarray, np.ndarray]:
        """Final ``k`` centres and their masses (conquers first)."""
        if self._buffer and len(self._buffer) >= self.config.k:
            self._flush()
        if not self._centroids:
            raise ValueError("no data clustered yet")
        if len(self._centroids) > self.config.k:
            self._conquer()
        return np.stack(self._centroids), np.asarray(self._masses)

    def as_mixture(self) -> GaussianMixture:
        """Charitable density reading: spherical Gaussians at the
        centres with the pooled within-cluster variance."""
        centers, masses = self.centers()
        if self._variance_records > 0:
            variance = max(
                self._variance_sum / self._variance_records, 1e-6
            )
        else:
            variance = 1.0
        components = tuple(
            Gaussian.spherical(center, variance) for center in centers
        )
        return GaussianMixture(masses, components)

    def assign(self, records: np.ndarray) -> np.ndarray:
        """Hard assignments of ``records`` to the final centres."""
        centers, _ = self.centers()
        records = np.atleast_2d(np.asarray(records, dtype=float))
        distances = np.sum(
            (records[:, None, :] - centers[None, :, :]) ** 2, axis=2
        )
        return np.argmin(distances, axis=1)
