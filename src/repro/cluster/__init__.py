"""Deploying the §7 communication tree for real.

Everything below :mod:`repro.multilayer` is *semantics* -- which node
aggregates what, when an upload happens.  This package is *deployment*:

:mod:`repro.cluster.spec`
    The tree as declarative data (:class:`ClusterSpec`): topology,
    ports, streams, shared parameters; JSON round-trip for launches
    reproducible from a file.
:mod:`repro.cluster.tree`
    :class:`TransportTree` -- the whole tree in one process, every edge
    a real ARQ transport link (loopback or seeded-lossy).  Backs the
    ported multilayer tests, the crash/resume suite and the soak.
:mod:`repro.cluster.launcher`
    :class:`ClusterLauncher` -- one OS process per node over TCP
    sockets, spawn-safe, with port rendezvous, ordered shutdown and
    checkpoint manifests.
:mod:`repro.cluster.soak`
    :func:`run_soak` -- 1000 sites through a 2-level tree against a
    flat single-coordinator reference, gap asserted in nats.
"""

from repro.cluster.data import make_stream, site_records
from repro.cluster.launcher import (
    ClusterLaunchError,
    ClusterLauncher,
    ClusterResult,
    NodeHandle,
)
from repro.cluster.soak import SoakReport, run_soak, soak_spec
from repro.cluster.spec import (
    ClusterSpec,
    NodeSpec,
    build_spec,
    load_spec,
    save_spec,
    with_ports,
)
from repro.cluster.tree import LevelStats, TransportTree

__all__ = [
    "ClusterLaunchError",
    "ClusterLauncher",
    "ClusterResult",
    "ClusterSpec",
    "LevelStats",
    "NodeHandle",
    "NodeSpec",
    "SoakReport",
    "TransportTree",
    "build_spec",
    "load_spec",
    "make_stream",
    "run_soak",
    "save_spec",
    "site_records",
    "soak_spec",
    "with_ports",
]
