"""Deploying a :class:`~repro.cluster.spec.ClusterSpec` as real processes.

:class:`ClusterLauncher` turns the declarative tree into running OS
processes: one per aggregator (an :class:`~repro.cluster.aggregator.AggregatorServer`
on an asyncio loop) and one per site (:func:`~repro.transport.tcp.run_site_client`
streaming its seeded records).  All workers use the ``spawn`` start
method -- nothing inherits the launcher's interpreter state, so a worker
behaves identically whether its parent is a CLI, a test, or CI.

Startup is top-down because ports flow down the tree: the root binds
first (port ``0`` = ephemeral), reports its *actually bound* port back
over a rendezvous queue, and only then are its children spawned with
that port in hand, level by level, sites last.  Shutdown is the mirror
image -- leaves first, root last -- so no process ever loses its parent
while still holding unacknowledged uploads.

A worker that cannot bind or connect reports the error over the queue
and exits non-zero instead of dying with a traceback; the launcher
converts that into a :class:`ClusterLaunchError` after tearing down
whatever was already running.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.cluster.spec import ClusterSpec, NodeSpec

__all__ = [
    "ClusterLaunchError",
    "ClusterLauncher",
    "ClusterResult",
    "NodeHandle",
]

#: Manifest written next to each aggregator checkpoint.
NODE_MANIFEST_FORMAT = 1


class ClusterLaunchError(RuntimeError):
    """A worker failed to come up (bind/connect failure, startup timeout)."""


@dataclass
class NodeHandle:
    """One spawned worker and what the launcher knows about it."""

    spec: NodeSpec
    process: object
    port: int | None = None
    telemetry_port: int | None = None

    @property
    def node_id(self) -> int:
        return self.spec.node_id

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def exitcode(self) -> int | None:
        return self.process.exitcode


@dataclass
class ClusterResult:
    """What a finished (or stopped) deployment reported."""

    exit_codes: dict[int, int | None] = field(default_factory=dict)
    root_summary: dict | None = None

    @property
    def ok(self) -> bool:
        return all(code == 0 for code in self.exit_codes.values())


# ----------------------------------------------------------------------
# Worker processes (module level: must be picklable under spawn)
# ----------------------------------------------------------------------
def _worker_signals() -> None:
    # The launcher owns Ctrl-C: workers ignore SIGINT so a terminal
    # interrupt reaches only the CLI process, which then runs the
    # ordered leaves-first SIGTERM fan-out.
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _site_worker(
    spec_payload: dict, node_id: int, host: str, port: int, federate: bool
) -> None:
    _worker_signals()
    from repro.cluster.data import site_records
    from repro.transport.tcp import run_site_client

    spec = ClusterSpec.from_dict(spec_payload)
    node = spec.node(node_id)
    observer = publisher = history = None
    if spec.history:
        from repro.obs import ModelHistory

        history = ModelHistory(scope=f"site:{node_id}")
    if federate:
        import os

        from repro.obs import (
            FederationPublisher,
            HealthMonitor,
            MultiSink,
            Observer,
            SpanCollector,
        )

        health, spans = HealthMonitor(), SpanCollector()
        observer = Observer(
            sink=MultiSink([health, spans]), span_origin=node_id
        )
        publisher = FederationPublisher(
            node_id,
            "site",
            node.level,
            health=health,
            spans=spans,
            pid=os.getpid(),
            history=(
                history.federated_summary if history is not None else None
            ),
        )
    try:
        asyncio.run(
            run_site_client(
                node_id,
                site_records(spec, node),
                host,
                port,
                site_config=spec.site_config_for(node),
                seed=spec.seed,
                observer=observer,
                federation=publisher,
                telemetry_interval=spec.telemetry_interval,
                wire_codec=spec.node_wire_codec(node),
                codec_config=spec.node_codec_config(node),
                history=history,
            )
        )
    except (ConnectionRefusedError, OSError) as exc:
        print(
            f"site {node_id}: cannot reach aggregator at {host}:{port}: {exc}",
            file=sys.stderr,
        )
        sys.exit(1)


def _aggregator_worker(
    spec_payload: dict,
    node_id: int,
    parent_port: int | None,
    events,
    telemetry_port: int | None,
    checkpoint_dir: str | None,
    resume: bool,
    federate: bool,
) -> None:
    _worker_signals()
    spec = ClusterSpec.from_dict(spec_payload)
    code = asyncio.run(
        _aggregator_main(
            spec,
            spec.node(node_id),
            parent_port,
            events,
            telemetry_port,
            Path(checkpoint_dir) if checkpoint_dir else None,
            resume,
            federate,
        )
    )
    sys.exit(code)


def _checkpoint_path(checkpoint_dir: Path, node_id: int) -> Path:
    return checkpoint_dir / f"aggregator-{node_id}.json"


async def _aggregator_main(
    spec: ClusterSpec,
    node_spec: NodeSpec,
    parent_port: int | None,
    events,
    telemetry_port: int | None,
    checkpoint_dir: Path | None,
    resume: bool,
    federate: bool = False,
) -> int:
    import os

    from repro.cluster.aggregator import AggregatorServer
    from repro.core.coordinator import Coordinator
    from repro.io.checkpoint import load_aggregator, save_aggregator
    from repro.multilayer.tree import InternalNode
    from repro.obs import (
        FederationCollector,
        FederationPublisher,
        HealthMonitor,
        MultiSink,
        Observer,
        SpanCollector,
        TelemetryRelay,
        TelemetryServer,
        publish_process_resources,
        topology_from_spec,
    )
    from repro.obs.observer import ensure_observer

    node_id = node_spec.node_id
    health = spans = None
    observer = None
    if telemetry_port is not None or federate:
        health, spans = HealthMonitor(), SpanCollector()
        observer = Observer(
            sink=MultiSink([health, spans]), span_origin=node_id
        )
    obs = ensure_observer(observer)

    # Federation plumbing: the root collects, everyone else relays.
    collector = relay = on_telemetry = None
    if federate:
        if node_spec.is_root:
            # Three flush intervals, floored: a worker's event loop can
            # go quiet for seconds while EM absorbs a chunk's synopses,
            # and that must read as "busy", not "dead".
            collector = FederationCollector(
                topology=topology_from_spec(spec),
                stale_after=max(3.0 * spec.telemetry_interval, 10.0),
            )
            on_telemetry = lambda _child, payload: collector.ingest(payload)  # noqa: E731
        else:
            relay = TelemetryRelay()
            on_telemetry = lambda _child, payload: relay.add(payload)  # noqa: E731

    arq = None
    if resume and checkpoint_dir is not None:
        path = _checkpoint_path(checkpoint_dir, node_id)
        if path.exists():
            node, arq = load_aggregator(path, observer=obs)
        else:
            print(
                f"aggregator {node_id}: no checkpoint at {path}, "
                "starting fresh",
                file=sys.stderr,
            )
            resume = False
    if not resume or checkpoint_dir is None or arq is None:
        node = InternalNode(
            node_id=node_id,
            coordinator=Coordinator(
                spec.coordinator_config(),
                rng=np.random.default_rng(spec.seed + 50_000 + node_id),
                observer=obs,
            ),
            parent_id=node_spec.parent_id,
            upload_threshold=spec.node_upload_threshold(node_spec),
        )
    if spec.history and node.coordinator.history is None:
        # A resumed coordinator restores its retained history from the
        # checkpoint; only attach a fresh store when none rode along.
        from repro.obs import ModelHistory

        node.coordinator.history = ModelHistory(
            scope="coordinator", gauge_source=None
        )
    history = node.coordinator.history
    if history is not None:
        history.observer = obs
        if health is not None:
            history.gauge_source = health.history_gauges

    children = spec.children(node_id)
    # Downlink decode: accept CDS2 iff some child's uplink edge speaks
    # it (a CDS2 decoder also understands CDS1 payloads, so a mixed
    # subnet needs only the wider codec).
    child_codecs = {spec.node_wire_codec(child) for child in children}
    server = AggregatorServer(
        node,
        expected_children=len(children),
        level=node_spec.level,
        observer=observer,
        arq=arq,
        on_telemetry=on_telemetry,
        wire_codec="cds2" if "cds2" in child_codecs else "cds1",
        uplink_wire_codec=spec.node_wire_codec(node_spec),
        uplink_codec_config=spec.node_codec_config(node_spec),
    )
    try:
        await server.start(spec.host, node_spec.port)
    except OSError as exc:
        events.put(
            {
                "event": "error",
                "node_id": node_id,
                "error": f"cannot bind {spec.host}:{node_spec.port}: {exc}",
            }
        )
        return 1

    telemetry = None
    if telemetry_port is not None:
        assert health is not None and spans is not None
        health.bind(component_count=lambda: node.coordinator.n_components)

        def _publish(registry) -> None:
            registry.gauge(
                "cluster.node_messages_up", node=node_id, level=node_spec.level
            ).set(node.messages_up)
            registry.gauge(
                "cluster.node_bytes_up", node=node_id, level=node_spec.level
            ).set(node.bytes_up)

        def _snapshot() -> dict:
            return {
                "node_id": node_id,
                "level": node_spec.level,
                "children_heard": list(server.receiver.known_sites)
                if server.receiver is not None
                else [],
                "messages_up": node.messages_up,
                "bytes_up": node.bytes_up,
                "components": node.coordinator.n_components,
            }

        try:
            telemetry = TelemetryServer(
                obs,
                health=health,
                spans=spans,
                snapshot=_snapshot,
                host=spec.host,
                port=telemetry_port,
                publish=(_publish, publish_process_resources),
                federation=collector,
                history=history,
            ).start()
        except OSError as exc:
            await server.close()
            events.put(
                {
                    "event": "error",
                    "node_id": node_id,
                    "error": (
                        f"cannot bind telemetry port {telemetry_port}: {exc}"
                    ),
                }
            )
            return 1

    if parent_port is not None:
        try:
            await server.connect_uplink(spec.host, parent_port, seed=spec.seed)
        except (ConnectionRefusedError, OSError) as exc:
            await server.close()
            if telemetry is not None:
                telemetry.close()
            events.put(
                {
                    "event": "error",
                    "node_id": node_id,
                    "error": (
                        f"cannot reach parent at {spec.host}:{parent_port}: "
                        f"{exc}"
                    ),
                }
            )
            return 1

    # The aggregator's own federated self-report, plus the flush loop
    # shipping it (and any relayed child reports) toward the root every
    # telemetry_interval seconds.
    publisher = flush_task = None
    if federate:
        endpoints: dict = {"tcp": {"host": spec.host, "port": server.port}}
        if telemetry is not None:
            endpoints["telemetry"] = {
                "host": spec.host,
                "port": telemetry.port,
            }
        publisher = FederationPublisher(
            node_id,
            "aggregator",
            node_spec.level,
            health=health,
            spans=spans,
            uplink_stats=lambda: (
                server.uplink.stats if server.uplink is not None else None
            ),
            codec_stats=lambda: (
                server.uplink_codec.stats
                if server.uplink_codec is not None
                else None
            ),
            uplink_codec=spec.node_wire_codec(node_spec),
            gauges=lambda: {
                "messages_up": node.messages_up,
                "bytes_up": node.bytes_up,
                "components": node.coordinator.n_components,
            },
            endpoints=endpoints,
            pid=os.getpid(),
            history=(
                history.federated_summary if history is not None else None
            ),
        )

        def _flush_telemetry() -> None:
            if collector is not None:
                # The root ingests its own report directly.
                collector.ingest_report(publisher.collect_report())
            elif server.uplink is not None:
                for payload in relay.drain():
                    server.uplink.send_telemetry(payload)
                server.uplink.send_telemetry(publisher.collect())

        async def _flush_loop() -> None:
            while True:
                await asyncio.sleep(spec.telemetry_interval)
                _flush_telemetry()

        next_flush = time.monotonic() + spec.telemetry_interval

        def _maybe_flush() -> None:
            # Time-gated flush driven off the envelope-handling path.
            # The async loop above covers idle stretches, but a busy
            # aggregator can starve asyncio timers for minutes (one
            # read batch = many EM merges), so the cadence must ride
            # the traffic itself -- child telemetry arrivals included.
            nonlocal next_flush
            if time.monotonic() >= next_flush:
                _flush_telemetry()
                next_flush = time.monotonic() + spec.telemetry_interval

        _flush_telemetry()
        server.on_progress = _maybe_flush
        flush_task = asyncio.ensure_future(_flush_loop())

    events.put(
        {
            "event": "listening",
            "node_id": node_id,
            "port": server.port,
            "telemetry_port": telemetry.port if telemetry is not None else None,
        }
    )

    # Serve until every child reported DONE -- or the launcher asks us
    # to stop (SIGTERM arrives leaves-first, so by the time it reaches
    # an aggregator its children are already down).  A *raw* signal
    # handler, not loop.add_signal_handler: it must flip the server's
    # stop flag between bytecodes, because the event loop itself can be
    # busy for many seconds absorbing one chunk's batch of synopses.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def _on_sigterm(*_: object) -> None:
        server.request_stop()
        loop.call_soon_threadsafe(stop.set)

    signal.signal(signal.SIGTERM, _on_sigterm)
    done_task = asyncio.ensure_future(server.wait_done())
    stop_task = asyncio.ensure_future(stop.wait())
    await asyncio.wait(
        (done_task, stop_task), return_when=asyncio.FIRST_COMPLETED
    )
    completed = done_task.done() and not stop_task.done()
    for task in (done_task, stop_task):
        task.cancel()
    await asyncio.gather(done_task, stop_task, return_exceptions=True)

    code = 0
    if flush_task is not None:
        flush_task.cancel()
        await asyncio.gather(flush_task, return_exceptions=True)
    if publisher is not None:
        # Final report: children are done, so it covers the whole run
        # -- and it is written before DONE goes up the same stream.
        _flush_telemetry()
    if completed and parent_port is not None:
        try:
            await server.finish_uplink()
        except (TimeoutError, OSError) as exc:
            print(f"aggregator {node_id}: {exc}", file=sys.stderr)
            code = 1

    if checkpoint_dir is not None:
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
        save_aggregator(
            node, _checkpoint_path(checkpoint_dir, node_id),
            arq=server.arq_state(),
        )
        _write_node_manifest(
            checkpoint_dir, spec, node_spec, server.port,
            telemetry.port if telemetry is not None else None,
        )

    if node_spec.is_root:
        try:
            mixture = node.coordinator.global_mixture()
            summary = {
                "components": mixture.n_components,
                "weights": [float(w) for w in mixture.weights],
            }
        except ValueError:
            summary = {"components": 0, "weights": []}
        summary.update(
            messages_up=node.messages_up,
            bytes_up=node.bytes_up,
            completed=completed,
        )
        events.put({"event": "result", "node_id": node_id, **summary})

    await server.close()
    if telemetry is not None:
        telemetry.close()
    return code


def _write_node_manifest(
    checkpoint_dir: Path,
    spec: ClusterSpec,
    node_spec: NodeSpec,
    port: int,
    telemetry_port: int | None,
) -> None:
    import json

    endpoints: dict = {"tcp": {"host": spec.host, "port": port}}
    if telemetry_port is not None:
        endpoints["telemetry"] = {"host": spec.host, "port": telemetry_port}
    manifest = {
        "format": NODE_MANIFEST_FORMAT,
        "kind": "cluster_node",
        "node_id": node_spec.node_id,
        "role": node_spec.role,
        "level": node_spec.level,
        "parent_id": node_spec.parent_id,
        "endpoints": endpoints,
    }
    path = checkpoint_dir / f"node-{node_spec.node_id}.manifest.json"
    path.write_text(json.dumps(manifest, indent=2))


# ----------------------------------------------------------------------
# The launcher
# ----------------------------------------------------------------------
class ClusterLauncher:
    """Spawn, supervise and stop one tree deployment.

    Parameters
    ----------
    spec:
        The topology to deploy.
    serve_telemetry:
        When not ``None``, the root aggregator serves live telemetry on
        this port (``0`` = ephemeral; read back from
        :attr:`telemetry_port` after :meth:`launch`), every other
        aggregator serves on an ephemeral port of its own, and -- unless
        ``federate=False`` -- the whole tree federates: each node ships
        telemetry reports up the existing ARQ edges, so the root also
        serves ``/cluster/health``, ``/cluster/nodes`` and
        ``/cluster/spans``.
    federate:
        Tri-state: ``None`` (default) federates exactly when
        ``serve_telemetry`` is set; ``True`` / ``False`` force it.
    checkpoint_dir:
        When set, every aggregator writes its checkpoint and an
        endpoint manifest here on exit (and on SIGTERM).
    resume:
        Restart aggregators from checkpoints in ``checkpoint_dir``,
        including their ARQ edge state.
    start_timeout:
        Seconds to wait for each aggregator's port rendezvous.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        serve_telemetry: int | None = None,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        start_timeout: float = 30.0,
        federate: bool | None = None,
    ) -> None:
        if not spec.nodes:
            raise ValueError("cannot launch an empty spec")
        self.spec = spec
        self.serve_telemetry = serve_telemetry
        self.federate = (
            serve_telemetry is not None if federate is None else federate
        )
        self.checkpoint_dir = (
            str(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        self.start_timeout = start_timeout
        self.handles: dict[int, NodeHandle] = {}
        self.ports: dict[int, int] = {}
        self.telemetry_port: int | None = None
        self._ctx = get_context("spawn")
        self._events = self._ctx.Queue()
        self._pending: list[dict] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def launch(self) -> Mapping[int, int]:
        """Start every process; returns ``{aggregator_id: bound_port}``.

        Aggregators come up top-down (each child needs its parent's
        actual port), sites last.  On any worker failure everything
        already running is torn down and :class:`ClusterLaunchError`
        is raised.
        """
        payload = self.spec.to_dict()
        try:
            for agg in self.spec.aggregators:
                parent_port = (
                    self.ports[agg.parent_id]
                    if agg.parent_id is not None
                    else None
                )
                if agg.is_root:
                    telemetry = self.serve_telemetry
                elif self.serve_telemetry is not None:
                    # Interior aggregators get their own ephemeral
                    # telemetry server; the bound port lands in the
                    # node manifest and /cluster/nodes.
                    telemetry = 0
                else:
                    telemetry = None
                process = self._ctx.Process(
                    target=_aggregator_worker,
                    args=(
                        payload,
                        agg.node_id,
                        parent_port,
                        self._events,
                        telemetry,
                        self.checkpoint_dir,
                        self.resume,
                        self.federate,
                    ),
                    name=f"aggregator-{agg.node_id}",
                )
                process.start()
                self.handles[agg.node_id] = NodeHandle(spec=agg, process=process)
                event = self._await_event("listening", agg.node_id)
                handle = self.handles[agg.node_id]
                handle.port = event["port"]
                handle.telemetry_port = event.get("telemetry_port")
                self.ports[agg.node_id] = event["port"]
                if agg.is_root:
                    self.telemetry_port = handle.telemetry_port
            for site in self.spec.site_nodes:
                process = self._ctx.Process(
                    target=_site_worker,
                    args=(
                        payload,
                        site.node_id,
                        self.spec.host,
                        self.ports[site.parent_id],
                        self.federate,
                    ),
                    name=f"site-{site.node_id}",
                )
                process.start()
                self.handles[site.node_id] = NodeHandle(
                    spec=site, process=process
                )
        except Exception:
            self.shutdown()
            raise
        return dict(self.ports)

    def wait(self, timeout: float | None = None) -> ClusterResult:
        """Join every process (sites first, then aggregators bottom-up)."""
        ordered = sorted(
            self.handles.values(),
            key=lambda h: (h.spec.role != "site", -h.spec.level),
        )
        for handle in ordered:
            handle.process.join(timeout)
        return self._collect()

    def shutdown(self, grace: float = 10.0) -> ClusterResult:
        """SIGTERM fan-out, leaves first; SIGKILL stragglers after ``grace``."""
        by_depth = sorted(
            self.handles.values(),
            key=lambda h: (h.spec.role != "site", -h.spec.level),
        )
        for handle in by_depth:
            if handle.alive:
                handle.process.terminate()
            handle.process.join(grace)
            if handle.alive:
                handle.process.kill()
                handle.process.join(grace)
        return self._collect()

    def alive(self) -> tuple[int, ...]:
        """Node ids whose worker process is still running."""
        return tuple(
            node_id
            for node_id, handle in self.handles.items()
            if handle.alive
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _collect(self) -> ClusterResult:
        result = ClusterResult(
            exit_codes={
                node_id: handle.exitcode
                for node_id, handle in self.handles.items()
            }
        )
        for event in self._drain_events():
            if event.get("event") == "result":
                result.root_summary = {
                    k: v for k, v in event.items() if k != "event"
                }
        return result

    def _drain_events(self) -> list[dict]:
        import queue as queue_module

        events = list(self._pending)
        self._pending.clear()
        while True:
            try:
                events.append(self._events.get_nowait())
            except queue_module.Empty:
                return events

    def _await_event(self, kind: str, node_id: int) -> dict:
        import queue as queue_module
        import time

        deadline = time.monotonic() + self.start_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterLaunchError(
                    f"aggregator {node_id} did not report within "
                    f"{self.start_timeout:.0f}s"
                )
            try:
                event = self._events.get(timeout=min(remaining, 0.5))
            except queue_module.Empty:
                handle = self.handles.get(node_id)
                if handle is not None and not handle.alive:
                    raise ClusterLaunchError(
                        f"aggregator {node_id} exited during startup "
                        f"(code {handle.exitcode})"
                    ) from None
                continue
            if event.get("event") == "error":
                raise ClusterLaunchError(
                    f"node {event['node_id']}: {event['error']}"
                )
            if event.get("event") == kind and event.get("node_id") == node_id:
                return event
            self._pending.append(event)
