"""Per-site stream construction shared by the launcher and the soak.

Streams are seeded ``spec.seed + 100 + node_id`` -- the same convention
as the flat ``run`` command -- so a site's records are a pure function
of the spec.  That determinism is what lets the soak harness compare a
tree deployment against a flat single-coordinator reference, and lets a
crashed run replay its streams exactly on resume.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator

import numpy as np

from repro.cluster.spec import ClusterSpec, NodeSpec

__all__ = ["make_stream", "site_records"]


def make_stream(spec: ClusterSpec, node: NodeSpec):
    """The (infinite) record stream observed by one site node."""
    kind = spec.node_stream(node)
    rng = np.random.default_rng(spec.seed + 100 + node.node_id)
    if kind == "netflow":
        from repro.streams.netflow import NetflowConfig, NetflowStreamGenerator

        return NetflowStreamGenerator(
            NetflowConfig(p_switch=spec.p_new), rng=rng
        )
    from repro.streams.synthetic import (
        EvolvingGaussianStream,
        EvolvingStreamConfig,
    )

    return EvolvingGaussianStream(
        EvolvingStreamConfig(
            dim=spec.dim,
            n_components=spec.clusters,
            p_new_distribution=spec.p_new,
        ),
        rng=rng,
    )


def site_records(spec: ClusterSpec, node: NodeSpec) -> Iterator[np.ndarray]:
    """The site's stream truncated to its record budget."""
    return islice(iter(make_stream(spec, node)), spec.node_records(node))
