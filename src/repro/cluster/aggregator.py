"""One aggregator process of a deployed §7 tree.

:class:`AggregatorServer` is a :class:`~repro.transport.tcp.CoordinatorServer`
whose delivery path runs an :class:`~repro.multilayer.tree.InternalNode`
instead of a bare coordinator: every child payload is absorbed into the
node's local coordinator, and -- when the node is not the root -- the
resulting uploads (gated on :func:`~repro.multilayer.tree.mixture_change`)
are forwarded to the parent aggregator over an *uplink*: a second TCP
connection carrying the same ``TPT1`` envelopes through a
:class:`~repro.transport.reliability.ReliableSender`.  To its parent an
aggregator is indistinguishable from a site; to its children it is
indistinguishable from the flat coordinator.  That symmetry is the whole
deployment story: trees of any depth compose out of this one class.

Span contexts ride the envelopes in both directions, so a chunk test at
a leaf process, the ``cluster.aggregate`` span at its gateway and the
merge at the root process land on one causally linked trace even though
each hop lives in a different OS process.
"""

from __future__ import annotations

import asyncio
from typing import Mapping

import numpy as np

from repro.core.serde import CodecConfig, get_codec
from repro.multilayer.tree import InternalNode
from repro.obs.observer import Observer
from repro.transport.clock import AsyncioClock
from repro.transport.framing import StreamDecoder
from repro.transport.reliability import ReliabilityConfig, ReliableSender
from repro.transport.tcp import CoordinatorServer, _READ_CHUNK
from repro.transport.wire import CodecSender

__all__ = ["AggregatorServer"]


class AggregatorServer(CoordinatorServer):
    """Serves an internal tree node over TCP, uplinking on change.

    Parameters
    ----------
    node:
        The :class:`~repro.multilayer.tree.InternalNode` holding this
        aggregator's coordinator, upload gate and accounting.
    expected_children:
        Children that must report DONE before :meth:`wait_done`
        releases; ``None`` serves forever.
    level:
        This node's depth in the tree (root = 0); stamped on spans and
        health gauges so per-level accounting survives aggregation.
    config / observer:
        As for :class:`~repro.transport.tcp.CoordinatorServer`.
    arq:
        Optional ARQ continuation state from
        :func:`repro.io.checkpoint.load_aggregator` -- restores the
        uplink's next sequence number and the children's receive
        cursors so a restarted aggregator keeps talking to peers that
        never went down.
    on_telemetry:
        Optional ``(child_id, payload)`` tap for TELEMETRY envelopes
        from children -- feeds the federation relay (interior nodes) or
        collector (root).
    wire_codec / codec_config:
        Codec for *downlink* payloads from children (as for
        :class:`~repro.transport.tcp.CoordinatorServer`).
    uplink_wire_codec / uplink_codec_config:
        Codec spoken on the uplink edge to the parent -- the two ends of
        every edge negotiate independently, so a mixed-codec tree just
        passes each node's spec values here.
    """

    def __init__(
        self,
        node: InternalNode,
        expected_children: int | None = None,
        level: int = 0,
        config: ReliabilityConfig | None = None,
        observer: Observer | None = None,
        arq: Mapping | None = None,
        on_telemetry=None,
        *,
        wire_codec: str = "cds1",
        codec_config: CodecConfig | None = None,
        uplink_wire_codec: str = "cds1",
        uplink_codec_config: CodecConfig | None = None,
    ) -> None:
        super().__init__(
            node.coordinator,
            expected_sites=expected_children,
            config=config,
            observer=observer,
            on_telemetry=on_telemetry,
            wire_codec=wire_codec,
            codec_config=codec_config,
        )
        self.node = node
        self.level = level
        self._arq = dict(arq) if arq is not None else None
        self._uplink: ReliableSender | None = None
        self._uplink_wire_codec = uplink_wire_codec
        self._uplink_codec_config = uplink_codec_config
        self._uplink_codec: CodecSender | None = None
        self._uplink_writer: asyncio.StreamWriter | None = None
        self._ack_task: asyncio.Task | None = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        await super().start(host, port)
        assert self.receiver is not None
        if self._arq is not None:
            for child_id, expected in self._arq.get("cursors", {}).items():
                self.receiver.restore_cursor(int(child_id), int(expected))

    # ------------------------------------------------------------------
    # Uplink to the parent aggregator
    # ------------------------------------------------------------------
    async def connect_uplink(self, host: str, port: int, seed: int = 0) -> None:
        """Open the parent connection; uploads flow once connected."""
        if self.node.parent_id is None:
            raise ValueError("root aggregator has no parent to connect to")
        loop = asyncio.get_running_loop()
        reader, writer = await asyncio.open_connection(host, port)
        first_seq = 1
        if self._arq is not None:
            first_seq = int(self._arq.get("uplink_next_seq", 1))
        self._uplink_writer = writer
        self._uplink = ReliableSender(
            site_id=self.node.node_id,
            transmit=writer.write,
            clock=AsyncioClock(loop),
            config=self.config,
            rng=np.random.default_rng(seed + 70_000 + self.node.node_id),
            observer=self._obs,
            first_seq=first_seq,
        )
        self._uplink_codec = CodecSender(
            self._uplink,
            get_codec(self._uplink_wire_codec, self._uplink_codec_config),
        )

        async def pump_acks() -> None:
            decoder = StreamDecoder()
            try:
                while True:
                    chunk = await reader.read(_READ_CHUNK)
                    if not chunk:
                        return
                    for envelope in decoder.feed(chunk):
                        assert self._uplink is not None
                        self._uplink.handle_envelope(envelope)
            except (ConnectionResetError, OSError):
                # Parent went away; finish_uplink notices the dead pump
                # and reports the loss instead of draining forever.
                return

        self._ack_task = asyncio.ensure_future(pump_acks())

    @property
    def uplink(self) -> ReliableSender | None:
        return self._uplink

    @property
    def uplink_codec(self) -> CodecSender | None:
        return self._uplink_codec

    def arq_state(self) -> dict:
        """ARQ continuation state for the aggregator checkpoint."""
        cursors: dict[int, int] = {}
        if self.receiver is not None:
            cursors = self.receiver.cursor_snapshot()
        return {
            "uplink_next_seq": (
                self._uplink.last_seq + 1 if self._uplink is not None else 1
            ),
            "cursors": cursors,
        }

    async def finish_uplink(self, drain_timeout: float = 60.0) -> None:
        """Drain unacked uploads, send DONE upward, close the uplink."""
        if self._uplink is None:
            return
        if self._uplink_codec is not None:
            self._uplink_codec.flush()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_timeout
        while self._uplink.outstanding() > 0:
            if self._ack_task is not None and self._ack_task.done():
                raise ConnectionError(
                    f"aggregator {self.node.node_id}: parent connection "
                    f"lost with {self._uplink.outstanding()} uploads "
                    "unacknowledged"
                )
            if loop.time() > deadline:
                raise TimeoutError(
                    f"aggregator {self.node.node_id}: "
                    f"{self._uplink.outstanding()} uploads unacknowledged"
                )
            await asyncio.sleep(0.02)
        self._uplink.send_done()
        assert self._uplink_writer is not None
        await self._uplink_writer.drain()
        # Same reset hazard as the site client: closing with unread
        # acks pending turns into an RST that can destroy the DONE in
        # the parent's receive queue.  Half-close (FIN ordered after
        # DONE) and linger until the parent closes its side.
        self._uplink.close()
        try:
            self._uplink_writer.write_eof()
            if self._ack_task is not None:
                await asyncio.wait_for(self._ack_task, drain_timeout)
        except (OSError, RuntimeError, asyncio.TimeoutError):
            pass

    async def close(self) -> None:
        await super().close()
        if self._uplink is not None:
            self._uplink.close()
        if self._ack_task is not None:
            self._ack_task.cancel()
            await asyncio.gather(self._ack_task, return_exceptions=True)
        if self._uplink_writer is not None:
            self._uplink_writer.close()
            try:
                await self._uplink_writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    # ------------------------------------------------------------------
    # Delivery: child payload -> node -> (maybe) parent
    # ------------------------------------------------------------------
    def _deliver(self, child_id: int, payload: bytes, trace=None) -> None:
        message = self.codec.decode(payload)
        obs = self._obs
        with obs.remote_parent(trace):
            with obs.span(
                "cluster.aggregate",
                node=self.node.node_id,
                child=child_id,
                level=self.level,
            ):
                uploads = self.node.handle_child_message(message)
                if self._uplink_codec is not None:
                    for upload in uploads:
                        self._uplink_codec.send(
                            upload, trace=obs.span_context()
                        )
        obs.gauge_set(
            "cluster.node_messages_up",
            float(self.node.messages_up),
            node=self.node.node_id,
            level=self.level,
        )
        obs.gauge_set(
            "cluster.node_bytes_up",
            float(self.node.bytes_up),
            node=self.node.node_id,
            level=self.level,
        )
