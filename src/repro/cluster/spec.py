"""Declarative cluster topology: the §7 tree as data.

A :class:`ClusterSpec` pins down everything a deployment needs before a
single process starts: the tree shape (which node reports to which),
per-node roles and bind ports, the stream each site observes, and the
shared site/coordinator parameters.  Specs are plain data -- build one
programmatically with :func:`build_spec`, or load/save the JSON form
with :func:`load_spec` / :func:`save_spec` so a launch is reproducible
from a file checked into a repo.

Levels count from the root: the root aggregator is level 0, its child
aggregators level 1, and so on; sites always sit one level below their
aggregator.  Node ids are globally unique integers (the root is always
``0``), which keeps every hop's ``site_id`` vocabulary unambiguous.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping

from repro.core.coordinator import CoordinatorConfig
from repro.core.em import EMConfig
from repro.core.remote import RemoteSiteConfig
from repro.core.serde import CodecConfig, available_codecs, get_codec

__all__ = [
    "ClusterSpec",
    "NodeSpec",
    "build_spec",
    "load_spec",
    "save_spec",
    "with_ports",
]

SPEC_FORMAT = 1

ROLE_AGGREGATOR = "aggregator"
ROLE_SITE = "site"


@dataclass(frozen=True, kw_only=True)
class NodeSpec:
    """One node of the deployment tree.

    Attributes
    ----------
    node_id:
        Globally unique id; doubles as the ``site_id`` on the uplink to
        the parent.
    role:
        ``"aggregator"`` (runs coordinator logic over its children) or
        ``"site"`` (observes a stream at a leaf).  The root is the
        aggregator with ``parent_id is None``.
    parent_id / level:
        Tree position; the root has ``parent_id=None`` and ``level=0``.
    port:
        Requested TCP bind port for aggregators (``0`` = ephemeral; the
        actually bound port is surfaced by the launcher and recorded in
        the node's checkpoint manifest).
    upload_threshold:
        Aggregators only: minimal :func:`repro.multilayer.tree.mixture_change`
        score that triggers an upload to the parent.
    stream / records:
        Sites only: per-node overrides of the spec-wide stream kind and
        record budget (``None`` = use the spec default).
    incremental:
        Sites only: per-node override of the spec-wide incremental
        refit-ladder switch (``None`` = use the spec default).  Lets a
        deployment pin hot leaves to the cheap warm path while keeping
        cold-refit leaves as a quality control group.
    wire_codec / quantize:
        Per-node override of the wire codec spoken on this node's
        *uplink* edge (``None`` = use the spec default).  A mixed tree
        is legal: each edge negotiates independently, so one WAN-facing
        aggregator can run ``cds2`` with ``f16`` quantization while LAN
        leaves stay on ``cds1``.
    """

    node_id: int
    role: str
    parent_id: int | None = None
    level: int = 0
    port: int = 0
    upload_threshold: float | None = None
    stream: str | None = None
    records: int | None = None
    incremental: bool | None = None
    wire_codec: str | None = None
    quantize: str | None = None

    def __post_init__(self) -> None:
        if self.role not in (ROLE_AGGREGATOR, ROLE_SITE):
            raise ValueError(f"unknown node role {self.role!r}")
        if self.role == ROLE_SITE and self.parent_id is None:
            raise ValueError("a site node needs a parent aggregator")
        if self.node_id < 0:
            raise ValueError("node ids must be non-negative")
        if not 0 <= self.port <= 65535:
            raise ValueError("port must lie in [0, 65535]")
        if self.wire_codec is not None and self.wire_codec not in available_codecs():
            raise ValueError(
                f"node {self.node_id}: unknown wire codec "
                f"{self.wire_codec!r} (available: {available_codecs()})"
            )

    @property
    def is_root(self) -> bool:
        return self.role == ROLE_AGGREGATOR and self.parent_id is None


@dataclass(frozen=True, kw_only=True)
class ClusterSpec:
    """A full tree deployment: topology plus shared parameters.

    ``nodes`` must form one tree: exactly one root aggregator, every
    other node's parent an existing aggregator, levels consistent with
    the parent links (validated on construction).
    """

    nodes: tuple[NodeSpec, ...] = field(default=())
    host: str = "127.0.0.1"
    seed: int = 0
    clusters: int = 3
    dim: int = 2
    epsilon: float = 0.05
    delta: float = 0.05
    chunk: int = 500
    stream: str = "synthetic"
    records_per_site: int = 2000
    p_new: float = 0.1
    upload_threshold: float = 0.05
    merge_method: str = "simplex"
    telemetry_interval: float = 2.0
    incremental: bool = False
    wire_codec: str = "cds1"
    quantize: str = "f64"
    delta_encoding: bool = False
    #: Attach a pyramidal :class:`~repro.obs.history.ModelHistory` to
    #: every aggregator's coordinator: enables ``/history`` queries on
    #: telemetry-serving nodes, history summaries on federated
    #: telemetry reports (``/cluster/history`` at the root) and
    #: time-travel state that rides checkpoints across ``--resume``.
    history: bool = False

    def __post_init__(self) -> None:
        if self.telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")
        if self.wire_codec not in available_codecs():
            raise ValueError(
                f"unknown wire codec {self.wire_codec!r} "
                f"(available: {available_codecs()})"
            )
        # Fail at spec build time, not mid-launch: get_codec validates
        # the quantize level and rejects settings the codec cannot
        # honour (e.g. f16 quantization on a cds1 edge).
        get_codec(self.wire_codec, self.codec_config())
        for node in self.nodes:
            get_codec(self.node_wire_codec(node), self.node_codec_config(node))
        if not self.nodes:
            return
        by_id: dict[int, NodeSpec] = {}
        roots = []
        for node in self.nodes:
            if node.node_id in by_id:
                raise ValueError(f"duplicate node id {node.node_id}")
            by_id[node.node_id] = node
            if node.is_root:
                roots.append(node)
        if len(roots) != 1:
            raise ValueError(f"spec needs exactly one root, found {len(roots)}")
        if roots[0].level != 0:
            raise ValueError("the root must sit at level 0")
        for node in self.nodes:
            if node.parent_id is None:
                continue
            parent = by_id.get(node.parent_id)
            if parent is None or parent.role != ROLE_AGGREGATOR:
                raise ValueError(
                    f"node {node.node_id}: parent {node.parent_id} is not "
                    "an aggregator in this spec"
                )
            if node.level != parent.level + 1:
                raise ValueError(
                    f"node {node.node_id}: level {node.level} does not "
                    f"follow parent level {parent.level}"
                )

    # ------------------------------------------------------------------
    # Topology accessors
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> NodeSpec:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"unknown node {node_id}")

    @property
    def root(self) -> NodeSpec:
        for node in self.nodes:
            if node.is_root:
                return node
        raise ValueError("spec has no root")

    @property
    def aggregators(self) -> tuple[NodeSpec, ...]:
        """Every aggregator, root first, then by increasing level."""
        return tuple(
            sorted(
                (n for n in self.nodes if n.role == ROLE_AGGREGATOR),
                key=lambda n: (n.level, n.node_id),
            )
        )

    @property
    def site_nodes(self) -> tuple[NodeSpec, ...]:
        return tuple(n for n in self.nodes if n.role == ROLE_SITE)

    @property
    def depth(self) -> int:
        """Number of aggregator levels (1 = flat star)."""
        return max(
            (n.level + 1 for n in self.nodes if n.role == ROLE_AGGREGATOR),
            default=0,
        )

    def children(self, node_id: int) -> tuple[NodeSpec, ...]:
        return tuple(
            sorted(
                (n for n in self.nodes if n.parent_id == node_id),
                key=lambda n: n.node_id,
            )
        )

    def node_upload_threshold(self, node: NodeSpec) -> float:
        return (
            node.upload_threshold
            if node.upload_threshold is not None
            else self.upload_threshold
        )

    def node_records(self, node: NodeSpec) -> int:
        return node.records if node.records is not None else self.records_per_site

    def node_stream(self, node: NodeSpec) -> str:
        return node.stream if node.stream is not None else self.stream

    def node_incremental(self, node: NodeSpec) -> bool:
        return (
            node.incremental
            if node.incremental is not None
            else self.incremental
        )

    def node_wire_codec(self, node: NodeSpec) -> str:
        """Codec spoken on ``node``'s uplink edge (override or default)."""
        return node.wire_codec if node.wire_codec is not None else self.wire_codec

    def node_codec_config(self, node: NodeSpec) -> CodecConfig:
        """Codec tuning for ``node``'s uplink edge."""
        quantize = node.quantize if node.quantize is not None else self.quantize
        delta = self.delta_encoding and self.node_wire_codec(node) == "cds2"
        return CodecConfig(quantize=quantize, delta=delta)

    def codec_config(self) -> CodecConfig:
        """Spec-wide codec tuning (per-edge overrides via
        :meth:`node_codec_config`)."""
        return CodecConfig(
            quantize=self.quantize,
            delta=self.delta_encoding and self.wire_codec == "cds2",
        )

    # ------------------------------------------------------------------
    # Derived configs
    # ------------------------------------------------------------------
    def site_config(self, incremental: bool | None = None) -> RemoteSiteConfig:
        """Spec-wide site parameters (``incremental`` overrides the
        spec default; prefer :meth:`site_config_for` per node)."""
        if incremental is None:
            incremental = self.incremental
        return RemoteSiteConfig(
            dim=self.dim,
            epsilon=self.epsilon,
            delta=self.delta,
            em=EMConfig(
                n_components=self.clusters,
                n_init=1,
                max_iter=40,
                incremental=incremental,
            ),
            chunk_override=self.chunk,
        )

    def site_config_for(self, node: NodeSpec) -> RemoteSiteConfig:
        """Site parameters for one leaf, per-node overrides applied."""
        return self.site_config(incremental=self.node_incremental(node))

    def coordinator_config(self) -> CoordinatorConfig:
        return CoordinatorConfig(
            max_components=2 * self.clusters,
            merge_method=self.merge_method,
        )

    def describe(self) -> str:
        """One-line-per-level summary of the topology."""
        lines = [
            f"cluster: {len(self.site_nodes)} sites, "
            f"{len(self.aggregators)} aggregators, depth {self.depth}, "
            f"host {self.host}"
        ]
        for level in range(self.depth):
            aggs = [a for a in self.aggregators if a.level == level]
            fanins = [len(self.children(a.node_id)) for a in aggs]
            lines.append(
                f"  level {level}: {len(aggs)} aggregator(s), "
                f"fan-in {min(fanins)}..{max(fanins)}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "format": SPEC_FORMAT,
            "kind": "cluster_spec",
            "host": self.host,
            "seed": self.seed,
            "clusters": self.clusters,
            "dim": self.dim,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "chunk": self.chunk,
            "stream": self.stream,
            "records_per_site": self.records_per_site,
            "p_new": self.p_new,
            "upload_threshold": self.upload_threshold,
            "merge_method": self.merge_method,
            "telemetry_interval": self.telemetry_interval,
            "incremental": self.incremental,
            "wire_codec": self.wire_codec,
            "quantize": self.quantize,
            "delta_encoding": self.delta_encoding,
            "nodes": [
                {
                    "node_id": n.node_id,
                    "role": n.role,
                    "parent_id": n.parent_id,
                    "level": n.level,
                    "port": n.port,
                    "upload_threshold": n.upload_threshold,
                    "stream": n.stream,
                    "records": n.records,
                    "incremental": n.incremental,
                    "wire_codec": n.wire_codec,
                    "quantize": n.quantize,
                }
                for n in self.nodes
            ],
        }
        # Emitted only when enabled so specs written by a pre-history
        # build and by this one compare byte-identical when it is off.
        if self.history:
            payload["history"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ClusterSpec":
        if payload.get("kind") != "cluster_spec":
            raise ValueError("payload is not a cluster spec")
        if payload.get("format") != SPEC_FORMAT:
            raise ValueError(
                f"unsupported cluster spec format {payload.get('format')}"
            )
        nodes = tuple(
            NodeSpec(
                node_id=raw["node_id"],
                role=raw["role"],
                parent_id=raw.get("parent_id"),
                level=raw.get("level", 0),
                port=raw.get("port", 0),
                upload_threshold=raw.get("upload_threshold"),
                stream=raw.get("stream"),
                records=raw.get("records"),
                incremental=raw.get("incremental"),
                wire_codec=raw.get("wire_codec"),
                quantize=raw.get("quantize"),
            )
            for raw in payload["nodes"]
        )
        return cls(
            nodes=nodes,
            host=payload.get("host", "127.0.0.1"),
            seed=payload.get("seed", 0),
            clusters=payload.get("clusters", 3),
            dim=payload.get("dim", 2),
            epsilon=payload.get("epsilon", 0.05),
            delta=payload.get("delta", 0.05),
            chunk=payload.get("chunk", 500),
            stream=payload.get("stream", "synthetic"),
            records_per_site=payload.get("records_per_site", 2000),
            p_new=payload.get("p_new", 0.1),
            upload_threshold=payload.get("upload_threshold", 0.05),
            merge_method=payload.get("merge_method", "simplex"),
            telemetry_interval=payload.get("telemetry_interval", 2.0),
            incremental=payload.get("incremental", False),
            wire_codec=payload.get("wire_codec", "cds1"),
            quantize=payload.get("quantize", "f64"),
            delta_encoding=payload.get("delta_encoding", False),
            history=payload.get("history", False),
        )


def build_spec(
    sites: int,
    fanin: int,
    depth: int | None = None,
    base_port: int = 0,
    **params: object,
) -> ClusterSpec:
    """Build a balanced tree spec for ``sites`` leaves.

    Aggregation levels are stacked bottom-up: sites are grouped
    ``fanin`` at a time under level-``d`` aggregators, those aggregators
    ``fanin`` at a time under the next level, until at most ``fanin``
    nodes remain -- they report to the root.  ``depth`` forces an exact
    number of aggregator levels instead (``1`` = the flat star: every
    site reports straight to the root, whatever ``fanin`` says).

    ``base_port`` assigns consecutive TCP ports to aggregators starting
    there (``0`` keeps every port ephemeral).  Remaining keyword
    arguments go to :class:`ClusterSpec` (seed, stream parameters, ...).
    """
    if sites < 1:
        raise ValueError("sites must be at least 1")
    if fanin < 2:
        raise ValueError("fanin must be at least 2")
    if depth is not None and depth < 1:
        raise ValueError("depth must be at least 1")

    # Number of aggregators per level, bottom (just above the sites)
    # to top (the root's children), excluding the root itself.
    group_counts: list[int] = []
    width = sites
    if depth is None:
        while width > fanin:
            width = math.ceil(width / fanin)
            group_counts.append(width)
    else:
        for _ in range(depth - 1):
            width = math.ceil(width / fanin)
            group_counts.append(width)
    # Collapse degenerate levels: a level with a single aggregator IS
    # the root; anything above it would be a chain of 1-child nodes.
    while group_counts and group_counts[-1] <= 1:
        group_counts.pop()

    nodes: list[NodeSpec] = []
    next_id = 0

    def make_aggregator(parent_id: int | None, level: int) -> int:
        nonlocal next_id
        node_id = next_id
        next_id += 1
        port = 0 if base_port == 0 else base_port + node_id
        nodes.append(
            NodeSpec(
                node_id=node_id,
                role=ROLE_AGGREGATOR,
                parent_id=parent_id,
                level=level,
                port=port,
            )
        )
        return node_id

    root_id = make_aggregator(None, 0)
    # Top-down: each level's aggregators are distributed evenly over
    # the previous level's.
    parent_ids = [root_id]
    level = 1
    for count in reversed(group_counts):
        current = [
            make_aggregator(parent_ids[i * len(parent_ids) // count], level)
            for i in range(count)
        ]
        parent_ids = current
        level += 1
    site_ids = []
    for i in range(sites):
        node_id = next_id
        next_id += 1
        site_ids.append(node_id)
        nodes.append(
            NodeSpec(
                node_id=node_id,
                role=ROLE_SITE,
                parent_id=parent_ids[i * len(parent_ids) // sites],
                level=level,
            )
        )
    return ClusterSpec(nodes=tuple(nodes), **params)  # type: ignore[arg-type]


def save_spec(spec: ClusterSpec, path: str | Path) -> Path:
    """Write ``spec`` as JSON to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(spec.to_dict(), indent=2))
    return path


def load_spec(path: str | Path) -> ClusterSpec:
    """Read a spec written by :func:`save_spec`."""
    return ClusterSpec.from_dict(json.loads(Path(path).read_text()))


def with_ports(spec: ClusterSpec, ports: Mapping[int, int]) -> ClusterSpec:
    """A copy of ``spec`` with aggregator ``ports`` filled in."""
    nodes = tuple(
        replace(node, port=ports.get(node.node_id, node.port))
        for node in spec.nodes
    )
    return replace(spec, nodes=nodes)
