"""The §7 tree over the real transport stack, in one process.

:class:`TransportTree` carries the exact semantics of
:class:`repro.multilayer.tree.TreeNetwork` -- every internal node runs
coordinator merge/split over its children and uploads to its parent only
on :func:`~repro.multilayer.tree.mixture_change` -- but every tree edge
is a real :mod:`repro.transport` link: serde-encoded payloads inside
``TPT1`` envelopes, a :class:`~repro.transport.reliability.ReliableSender`
per child, a :class:`~repro.transport.reliability.ReliableReceiver` per
aggregator, and optional seeded fault injection per subnet.  The same
object therefore backs three jobs:

* the multilayer test suite ported onto the transport stack (loopback
  and lossy links must reproduce the simulated-network results);
* the aggregator crash/resume suite (an internal node is snapshotted
  with its ARQ edge state and rebuilt mid-run);
* the 1000-site soak harness (:mod:`repro.cluster.soak`), which needs
  per-level byte accounting straight off the wire.

Each aggregator owns one *subnet*: the transport instance its children
(sites or lower aggregators) send into.  Spans adopt the envelope's
propagated context on delivery and re-propagate from the upload path,
so a chunk test at a leaf, the aggregation at its gateway and the merge
at the root land on one causally linked trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core.coordinator import Coordinator, CoordinatorConfig
from repro.core.mixture import GaussianMixture
from repro.core.remote import RemoteSite, RemoteSiteConfig
from repro.core.serde import CodecConfig, WireCodec, get_codec
from repro.io.checkpoint import restore_aggregator, snapshot_aggregator
from repro.multilayer.tree import InternalNode
from repro.obs.federation import (
    FederationCollector,
    FederationPublisher,
    TelemetryRelay,
)
from repro.obs.observer import Observer, ensure_observer
from repro.transport.base import DatagramTransport
from repro.transport.clock import ManualClock
from repro.transport.loopback import LoopbackTransport
from repro.transport.lossy import FaultConfig, LossyTransport
from repro.transport.reliability import (
    ReliabilityConfig,
    ReliableReceiver,
    ReliableSender,
)
from repro.transport.wire import CodecSender

__all__ = ["LevelStats", "TransportTree"]


@dataclass(frozen=True)
class LevelStats:
    """Wire accounting of all edges whose child sits at one tree level.

    ``bytes_per_record`` divides the level's wire bytes by the total
    records fed into the tree -- the §6 communication gauge, split by
    hop so a deployment can see where its upload budget actually goes.
    ``codecs`` lists the wire codecs spoken on this level's edges;
    ``delta_hit_rate`` is the fraction of model updates that shipped as
    CDS2 deltas and ``bytes_saved`` the payload bytes the codec layer
    avoided versus always-snapshot encoding.
    """

    level: int
    edges: int
    messages: int
    payload_bytes: int
    wire_bytes: int
    retransmissions: int
    bytes_per_record: float
    codecs: tuple[str, ...] = ()
    delta_hit_rate: float = 0.0
    bytes_saved: int = 0

    def as_dict(self) -> dict:
        return {
            "level": self.level,
            "edges": self.edges,
            "messages": self.messages,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "retransmissions": self.retransmissions,
            "bytes_per_record": self.bytes_per_record,
            "codecs": list(self.codecs),
            "delta_hit_rate": self.delta_hit_rate,
            "bytes_saved": self.bytes_saved,
        }


@dataclass
class _InternalWiring:
    node: InternalNode
    level: int
    transport: DatagramTransport
    receiver: ReliableReceiver
    decoder: WireCodec
    uplink: ReliableSender | None = None
    uplink_codec: CodecSender | None = None
    uplink_wire_codec: str = "cds1"
    uplink_codec_config: CodecConfig | None = None
    relay: TelemetryRelay | None = None
    publisher: FederationPublisher | None = None


@dataclass
class _LeafWiring:
    site: RemoteSite
    parent_id: int
    level: int
    sender: ReliableSender
    codec_sender: CodecSender
    publisher: FederationPublisher | None = None


class TransportTree:
    """A communication tree whose every edge is a transport link.

    The topology API mirrors :class:`~repro.multilayer.tree.TreeNetwork`
    (:meth:`add_internal` / :meth:`add_leaf` / :meth:`feed` /
    :meth:`global_mixture`), so the simulated-network suite ports over
    unchanged.

    Parameters
    ----------
    site_config / coordinator_config / seed:
        Templates for leaf sites and internal coordinators.
    reliability:
        ARQ tuning shared by every edge; the default disables jitter so
        a seeded lossy run stays deterministic.
    faults:
        Optional :class:`~repro.transport.lossy.FaultConfig` applied to
        every subnet (each aggregator's subnet gets its own
        deterministic fault stream derived from ``seed``).  ``None``
        runs over loopback: synchronous, loss-free, nothing in flight.
    clock:
        Shared :class:`~repro.transport.clock.ManualClock`; owned by the
        tree when omitted.
    observer:
        Optional observer shared by all senders/receivers; aggregation
        emits ``cluster.aggregate`` spans causally linked across hops.
    federate:
        Give every node a :class:`~repro.obs.federation.FederationPublisher`,
        every internal node a relay, and the root a
        :class:`~repro.obs.federation.FederationCollector` (exposed as
        :attr:`federation`).  :meth:`flush_telemetry` then ships a round
        of reports up the same transport edges -- in TELEMETRY
        envelopes, outside the ARQ window, so :meth:`level_stats` stays
        identical to a non-federated run.
    """

    def __init__(
        self,
        site_config: RemoteSiteConfig | None = None,
        coordinator_config: CoordinatorConfig | None = None,
        seed: int = 0,
        reliability: ReliabilityConfig | None = None,
        faults: FaultConfig | None = None,
        clock: ManualClock | None = None,
        observer: Observer | None = None,
        federate: bool = False,
        wire_codec: str = "cds1",
        codec_config: CodecConfig | None = None,
    ) -> None:
        self._site_config = site_config or RemoteSiteConfig()
        self._coordinator_config = coordinator_config or CoordinatorConfig()
        self._seed = seed
        self._wire_codec = wire_codec
        self._codec_config = codec_config
        self._reliability = reliability or ReliabilityConfig(
            jitter=0.0, heartbeat_interval=None
        )
        self._faults = faults
        self.clock = clock or ManualClock()
        self._obs = ensure_observer(observer)
        self._internals: dict[int, _InternalWiring] = {}
        self._leaves: dict[int, _LeafWiring] = {}
        self._root_id: int | None = None
        self.records_fed = 0
        self._federate = federate
        #: Root-side collector (``federate=True`` only); drives the same
        #: rollup the deployed root serves at ``/cluster/health``.
        self.federation: FederationCollector | None = None
        if federate:
            self.federation = FederationCollector(
                clock=lambda: self.clock.now
            )

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        spec,
        faults: FaultConfig | None = None,
        observer: Observer | None = None,
        reliability: ReliabilityConfig | None = None,
        federate: bool = False,
    ) -> "TransportTree":
        """Instantiate a :class:`~repro.cluster.spec.ClusterSpec` in-process."""
        tree = cls(
            site_config=spec.site_config(),
            coordinator_config=spec.coordinator_config(),
            seed=spec.seed,
            reliability=reliability,
            faults=faults,
            observer=observer,
            federate=federate,
            wire_codec=spec.wire_codec,
            codec_config=spec.codec_config(),
        )
        for agg in spec.aggregators:
            tree.add_internal(
                agg.node_id,
                parent_id=agg.parent_id,
                upload_threshold=spec.node_upload_threshold(agg),
                wire_codec=spec.node_wire_codec(agg),
                codec_config=spec.node_codec_config(agg),
            )
        for site in spec.site_nodes:
            tree.add_leaf(
                site.node_id,
                site.parent_id,
                config=spec.site_config_for(site),
                wire_codec=spec.node_wire_codec(site),
                codec_config=spec.node_codec_config(site),
            )
        return tree

    def add_internal(
        self,
        node_id: int,
        parent_id: int | None = None,
        upload_threshold: float = 0.05,
        *,
        wire_codec: str | None = None,
        codec_config: CodecConfig | None = None,
    ) -> InternalNode:
        """Add an aggregator; ``parent_id=None`` makes it the root.

        ``wire_codec``/``codec_config`` override the tree-wide codec on
        this node's *uplink* edge only.
        """
        self._check_new_id(node_id)
        if parent_id is None:
            if self._root_id is not None:
                raise ValueError("tree already has a root")
            level = 0
            self._root_id = node_id
        else:
            level = self._require_internal(parent_id).level + 1
        node = InternalNode(
            node_id=node_id,
            coordinator=Coordinator(
                self._coordinator_config,
                rng=np.random.default_rng(self._seed + 50_000 + node_id),
                observer=self._obs,
            ),
            parent_id=parent_id,
            upload_threshold=upload_threshold,
        )
        uplink_wire_codec = wire_codec or self._wire_codec
        uplink_codec_config = (
            codec_config if codec_config is not None else self._codec_config
        )
        wiring = _InternalWiring(
            node=node,
            level=level,
            transport=self._make_subnet(node_id),
            receiver=None,  # type: ignore[arg-type]  (set just below)
            # The subnet decoder starts at the tree-wide codec; adding a
            # cds2 child upgrades it (cds2 decodes cds1 payloads too).
            decoder=get_codec(self._wire_codec),
            uplink_wire_codec=uplink_wire_codec,
            uplink_codec_config=uplink_codec_config,
        )
        if self._federate:
            assert self.federation is not None
            self.federation.add_topology_node(
                node_id, "aggregator", level, parent_id
            )
            if parent_id is not None:
                wiring.relay = TelemetryRelay()
            wiring.publisher = FederationPublisher(
                node_id,
                "aggregator",
                level,
                uplink_stats=lambda w=wiring: (
                    w.uplink.stats if w.uplink is not None else None
                ),
                codec_stats=lambda w=wiring: (
                    w.uplink_codec.stats if w.uplink_codec is not None else None
                ),
                uplink_codec=uplink_wire_codec,
                gauges=lambda n=node: {
                    "messages_up": n.messages_up,
                    "bytes_up": n.bytes_up,
                    "components": n.coordinator.n_components,
                },
            )
        wiring.receiver = self._make_receiver(wiring)
        if parent_id is not None:
            wiring.uplink, wiring.uplink_codec = self._make_uplink(
                node_id,
                parent_id,
                wire_codec=uplink_wire_codec,
                codec_config=uplink_codec_config,
            )
        self._internals[node_id] = wiring
        return node

    def add_leaf(
        self,
        node_id: int,
        parent_id: int,
        config: RemoteSiteConfig | None = None,
        *,
        wire_codec: str | None = None,
        codec_config: CodecConfig | None = None,
    ) -> RemoteSite:
        """Add a leaf site under an aggregator; returns the site.

        ``config`` overrides the tree-wide site configuration for this
        leaf (how :meth:`from_spec` applies per-node spec overrides
        such as ``incremental``); ``wire_codec``/``codec_config``
        override the codec on this leaf's uplink edge.
        """
        self._check_new_id(node_id)
        parent = self._require_internal(parent_id)
        edge_codec = wire_codec or self._wire_codec
        sender, codec_sender = self._make_uplink(
            node_id,
            parent_id,
            wire_codec=edge_codec,
            codec_config=(
                codec_config if codec_config is not None else self._codec_config
            ),
        )
        site = RemoteSite(
            site_id=node_id,
            config=config if config is not None else self._site_config,
            rng=np.random.default_rng(self._seed + node_id),
            emit=lambda message: codec_sender.send(
                message, trace=self._obs.span_context()
            ),
            observer=self._obs,
        )
        wiring = _LeafWiring(
            site=site,
            parent_id=parent_id,
            level=parent.level + 1,
            sender=sender,
            codec_sender=codec_sender,
        )
        if self._federate:
            assert self.federation is not None
            self.federation.add_topology_node(
                node_id, "site", wiring.level, parent_id
            )
            wiring.publisher = FederationPublisher(
                node_id,
                "site",
                wiring.level,
                uplink_stats=lambda s=sender: s.stats,
                codec_stats=lambda cs=codec_sender: cs.stats,
                uplink_codec=edge_codec,
                records=lambda s=site: s.stats.records_seen,
                gauges=lambda s=site: {"models": len(s.all_models)},
            )
        self._leaves[node_id] = wiring
        return site

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> InternalNode:
        if self._root_id is None:
            raise ValueError("tree has no root")
        return self._internals[self._root_id].node

    @property
    def internals(self) -> tuple[InternalNode, ...]:
        return tuple(w.node for w in self._internals.values())

    @property
    def sites(self) -> tuple[RemoteSite, ...]:
        return tuple(w.site for w in self._leaves.values())

    def internal(self, node_id: int) -> InternalNode:
        return self._require_internal(node_id).node

    @property
    def depth(self) -> int:
        """Deepest level in the tree (root = 0)."""
        levels = [w.level for w in self._internals.values()]
        levels += [w.level for w in self._leaves.values()]
        return max(levels, default=0)

    def global_mixture(self) -> GaussianMixture:
        """The root's view of the union of all leaf streams."""
        return self.root.coordinator.global_mixture()

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------
    def feed(self, leaf_id: int, record: np.ndarray) -> None:
        """Deliver one record to a leaf; uploads ride the transport."""
        leaf = self._leaves.get(leaf_id)
        if leaf is None:
            raise KeyError(f"unknown leaf {leaf_id}")
        leaf.site.process_record(record)
        self.records_fed += 1
        if self._faults is not None:
            self.drain()

    def drain(self, step: float = 0.25, limit: float = 600.0) -> float:
        """Advance the clock until every edge's outbox is empty."""
        edges: list[tuple[ReliableSender, CodecSender | None]] = [
            (w.sender, w.codec_sender) for w in self._leaves.values()
        ]
        edges += [
            (w.uplink, w.uplink_codec)
            for w in self._internals.values()
            if w.uplink is not None
        ]
        spent = 0.0
        while any(
            sender.outstanding() or (codec is not None and codec.queued)
            for sender, codec in edges
        ):
            if spent >= limit:
                raise RuntimeError(
                    f"tree transport failed to drain within {limit} clock "
                    "seconds"
                )
            self.clock.advance(step)
            spent += step
        return spent

    def close(self) -> None:
        """Cancel timers and release transport bindings."""
        for wiring in self._leaves.values():
            wiring.site._emit = None
            wiring.sender.close()
        for wiring in self._internals.values():
            if wiring.uplink is not None:
                wiring.uplink.close()
            wiring.transport.close()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def total_uplink_bytes(self) -> int:
        """Application bytes crossing all tree edges (leaf + internal)."""
        leaf_bytes = sum(
            w.site.stats.bytes_sent for w in self._leaves.values()
        )
        internal_bytes = sum(
            w.node.bytes_up for w in self._internals.values()
        )
        return leaf_bytes + internal_bytes

    def level_stats(self) -> tuple[LevelStats, ...]:
        """Per-level wire accounting, level 1 (root's children) down."""
        per_level: dict[int, list[tuple[ReliableSender, CodecSender]]] = {}
        for wiring in self._leaves.values():
            per_level.setdefault(wiring.level, []).append(
                (wiring.sender, wiring.codec_sender)
            )
        for wiring in self._internals.values():
            if wiring.uplink is not None and wiring.uplink_codec is not None:
                per_level.setdefault(wiring.level, []).append(
                    (wiring.uplink, wiring.uplink_codec)
                )
        records = max(1, self.records_fed)
        stats = []
        for level in sorted(per_level):
            senders = [s for s, _ in per_level[level]]
            codecs = [c for _, c in per_level[level]]
            wire = sum(s.stats.wire_bytes for s in senders)
            model_updates = sum(c.stats.model_updates for c in codecs)
            delta_updates = sum(c.stats.delta_updates for c in codecs)
            stats.append(
                LevelStats(
                    level=level,
                    edges=len(senders),
                    messages=sum(s.stats.payloads_sent for s in senders),
                    payload_bytes=sum(s.stats.payload_bytes for s in senders),
                    wire_bytes=wire,
                    retransmissions=sum(
                        s.stats.retransmissions for s in senders
                    ),
                    bytes_per_record=wire / records,
                    codecs=tuple(sorted({c.codec.name for c in codecs})),
                    delta_hit_rate=(
                        delta_updates / model_updates if model_updates else 0.0
                    ),
                    bytes_saved=sum(c.stats.bytes_saved for c in codecs),
                )
            )
        return tuple(stats)

    def receiver_stats(self, node_id: int):
        """Delivery counters of one aggregator's subnet receiver."""
        return self._require_internal(node_id).receiver.stats

    # ------------------------------------------------------------------
    # Telemetry federation
    # ------------------------------------------------------------------
    def flush_telemetry(self) -> int:
        """One round of federated reports up the tree; returns sends.

        Deepest level first: every leaf ships its report, then each
        interior aggregator forwards whatever its relay holds plus its
        own report, the root last (ingesting its own report directly).
        On loopback delivery is synchronous, so a single round lands
        every node's report at the root; under fault injection telemetry
        is subject to the same loss/delay as data -- advance the clock
        and flush again until the collector converges (reports are
        idempotent snapshots, so re-sends never double count).
        """
        if not self._federate:
            raise ValueError("tree was not built with federate=True")
        assert self.federation is not None
        sent = 0
        entries: list[tuple[int, int, object]] = [
            (w.level, 0, w) for w in self._leaves.values()
        ]
        entries += [(w.level, 1, w) for w in self._internals.values()]
        for _level, kind, wiring in sorted(
            entries, key=lambda e: (-e[0], e[1])
        ):
            if kind == 0:  # leaf
                assert wiring.publisher is not None
                wiring.sender.send_telemetry(wiring.publisher.collect())
                sent += 1
                continue
            assert wiring.publisher is not None
            if wiring.uplink is None:  # root
                self.federation.ingest_report(
                    wiring.publisher.collect_report()
                )
                continue
            if wiring.relay is not None:
                for payload in wiring.relay.drain():
                    wiring.uplink.send_telemetry(payload)
                    sent += 1
            wiring.uplink.send_telemetry(wiring.publisher.collect())
            sent += 1
        return sent

    # ------------------------------------------------------------------
    # Crash / resume of one aggregator
    # ------------------------------------------------------------------
    def aggregator_snapshot(self, node_id: int) -> dict:
        """Checkpoint one aggregator including its ARQ edge state."""
        wiring = self._require_internal(node_id)
        arq = {
            "uplink_next_seq": (
                wiring.uplink.last_seq + 1 if wiring.uplink is not None else 1
            ),
            "cursors": wiring.receiver.cursor_snapshot(),
        }
        return snapshot_aggregator(wiring.node, arq=arq)

    def restore_aggregator(self, payload: Mapping) -> InternalNode:
        """Rebuild one aggregator in place from a snapshot (crash path).

        Everything in the node's memory is discarded -- coordinator,
        upload gate, receiver -- and replaced by the checkpointed state;
        the subnet transport and the surviving peers (children's
        senders, the parent's receiver cursor) are left untouched,
        exactly like a process restart on a live deployment.  The
        restored receiver resumes the recorded per-child cursors and
        the restored uplink continues the recorded sequence numbers.
        """
        node_id = payload["node_id"]
        wiring = self._require_internal(node_id)
        node, arq = restore_aggregator(payload, observer=self._obs)
        wiring.node = node
        wiring.receiver = self._make_receiver(wiring)
        if arq is not None:
            for child_id, expected in arq["cursors"].items():
                wiring.receiver.restore_cursor(child_id, expected)
        if wiring.uplink is not None:
            wiring.uplink.close()
            assert node.parent_id is not None
            # The rebuilt codec sender starts without delta baselines, so
            # its first uploads go out as full snapshots -- exactly the
            # safe behaviour after losing in-memory codec state.
            wiring.uplink, wiring.uplink_codec = self._make_uplink(
                node_id,
                node.parent_id,
                first_seq=arq["uplink_next_seq"] if arq is not None else 1,
                wire_codec=wiring.uplink_wire_codec,
                codec_config=wiring.uplink_codec_config,
            )
        return node

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_subnet(self, node_id: int) -> DatagramTransport:
        transport: DatagramTransport = LoopbackTransport()
        if self._faults is not None:
            transport = LossyTransport(
                transport,
                self.clock,
                self._faults,
                seed=self._seed + 90_000 + node_id,
                observer=self._obs,
            )
        return transport

    def _make_receiver(self, wiring: _InternalWiring) -> ReliableReceiver:
        on_telemetry = None
        if self._federate:
            # The root ingests child reports straight into the
            # collector; interior nodes buffer the raw payloads for the
            # next flush up their own uplink.  ``wiring`` is captured,
            # not its fields, so a restored aggregator keeps the tap.
            def on_telemetry(_child: int, payload: bytes, w=wiring) -> None:
                if w.node.parent_id is None:
                    assert self.federation is not None
                    self.federation.ingest(payload)
                elif w.relay is not None:
                    w.relay.add(payload)

        receiver = ReliableReceiver(
            deliver_traced=self._make_deliver(wiring),
            send_ack=wiring.transport.send_to_site,
            clock=self.clock,
            config=self._reliability,
            observer=self._obs,
            on_telemetry=on_telemetry,
        )
        wiring.transport.bind_coordinator(receiver.handle_datagram)
        return receiver

    def _make_deliver(
        self, wiring: _InternalWiring
    ) -> Callable[[int, bytes, object], None]:
        def deliver(child_id: int, payload: bytes, trace=None) -> None:
            message = wiring.decoder.decode(payload)
            obs = self._obs
            with obs.remote_parent(trace):
                with obs.span(
                    "cluster.aggregate",
                    node=wiring.node.node_id,
                    child=child_id,
                    level=wiring.level,
                ):
                    uploads = wiring.node.handle_child_message(message)
                    if wiring.uplink_codec is not None:
                        for upload in uploads:
                            wiring.uplink_codec.send(
                                upload, trace=obs.span_context()
                            )

        return deliver

    def _make_uplink(
        self,
        node_id: int,
        parent_id: int,
        first_seq: int = 1,
        wire_codec: str | None = None,
        codec_config: CodecConfig | None = None,
    ) -> tuple[ReliableSender, CodecSender]:
        parent = self._require_internal(parent_id)
        sender = ReliableSender(
            site_id=node_id,
            transmit=lambda data: parent.transport.send_to_coordinator(
                node_id, data
            ),
            clock=self.clock,
            config=self._reliability,
            rng=np.random.default_rng(self._seed + 70_000 + node_id),
            observer=self._obs,
            first_seq=first_seq,
        )
        parent.transport.bind_site(node_id, sender.handle_datagram)
        codec = get_codec(wire_codec or self._wire_codec, codec_config)
        # Negotiate the edge: the parent's receiver accepts this codec
        # id and its decoder is upgraded if the child speaks CDS2.
        parent.receiver.accept_codec(codec.wire_id)
        if codec.wire_id != 0 and parent.decoder.wire_id == 0:
            parent.decoder = get_codec(wire_codec or self._wire_codec)
        return sender, CodecSender(sender, codec)

    def _check_new_id(self, node_id: int) -> None:
        if node_id in self._internals or node_id in self._leaves:
            raise ValueError(f"node id {node_id} already used")

    def _require_internal(self, node_id: int) -> _InternalWiring:
        wiring = self._internals.get(node_id)
        if wiring is None:
            raise ValueError(f"parent {node_id} is not an internal node")
        return wiring
