"""Soak harness: a 1000-site tree against a flat reference, in-process.

The acceptance question for the §7 tree is not "does it run" but "does
the root see the same stream?": an intermediate aggregator only forwards
on :func:`~repro.multilayer.tree.mixture_change`, so the root's mixture
is a *summarised* view and could in principle drift arbitrarily far from
what a flat single-coordinator deployment would have learned from the
same records.  :func:`run_soak` measures that drift directly:

1. instantiate the spec as a :class:`~repro.cluster.tree.TransportTree`
   (every edge a real transport link with ARQ) *and* as a flat
   reference -- the same seeded sites emitting straight into one
   coordinator;
2. feed both from identical seeded streams, round-robin across sites;
3. score both final mixtures on a pooled held-out sample (records drawn
   from the same generators *after* the fed prefix) and compare average
   log-likelihood.

The tolerance is on that log-likelihood gap, in nats per record.  The
default of ``0.5`` is deliberately loose: tree and flat coordinators
absorb uploads in different orders and merge/split along different
paths, so their mixtures are never identical -- what the soak pins down
is that the tree's summarisation does not *lose* the distribution.
Mixture-shape agreement is additionally reported as the component-count
difference.

The harness is deliberately synchronous (loopback edges, no faults) by
default: at 1000 sites the EM fits dominate, and skipping per-record
drains keeps the wall-clock inside a CI budget.  Pass ``faults`` to
soak the lossy path at smaller scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.data import make_stream
from repro.cluster.spec import ClusterSpec, build_spec
from repro.cluster.tree import LevelStats, TransportTree
from repro.core.coordinator import Coordinator
from repro.core.remote import RemoteSite
from repro.obs.observer import Observer
from repro.transport.lossy import FaultConfig

__all__ = ["SoakReport", "run_soak", "soak_spec"]


@dataclass(frozen=True)
class SoakReport:
    """Outcome of one soak run (see module docstring for semantics)."""

    sites: int
    depth: int
    records: int
    holdout: int
    tree_components: int
    flat_components: int
    tree_avg_ll: float
    flat_avg_ll: float
    ll_gap: float
    tolerance: float
    uplink_bytes: int
    levels: tuple[LevelStats, ...]
    seconds: float

    @property
    def passed(self) -> bool:
        return self.ll_gap <= self.tolerance

    def summary(self) -> str:
        lines = [
            f"soak: {self.sites} sites, depth {self.depth}, "
            f"{self.records} records in {self.seconds:.1f}s",
            f"  tree : K={self.tree_components}, "
            f"avg log-likelihood {self.tree_avg_ll:+.4f}",
            f"  flat : K={self.flat_components}, "
            f"avg log-likelihood {self.flat_avg_ll:+.4f}",
            f"  gap  : {self.ll_gap:.4f} nats "
            f"(tolerance {self.tolerance}) -> "
            f"{'PASS' if self.passed else 'FAIL'}",
            f"  uplink: {self.uplink_bytes} app bytes over "
            f"{len(self.levels)} level(s)",
        ]
        for level in self.levels:
            lines.append(
                f"    level {level.level}: {level.edges} edges, "
                f"{level.messages} msgs, {level.wire_bytes} wire bytes "
                f"({level.bytes_per_record:.2f} B/record)"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "sites": self.sites,
            "depth": self.depth,
            "records": self.records,
            "holdout": self.holdout,
            "tree_components": self.tree_components,
            "flat_components": self.flat_components,
            "tree_avg_ll": self.tree_avg_ll,
            "flat_avg_ll": self.flat_avg_ll,
            "ll_gap": self.ll_gap,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "uplink_bytes": self.uplink_bytes,
            "levels": [level.as_dict() for level in self.levels],
            "seconds": self.seconds,
        }


def soak_spec(
    sites: int = 1000,
    fanin: int = 32,
    records_per_site: int = 300,
    seed: int = 7,
) -> ClusterSpec:
    """The default soak topology: a 2-level tree over ``sites`` leaves.

    Tuned to keep a full 1000-site run inside a CI time budget while
    still pushing >100k records through the tree: small chunks, a
    modest per-site record budget, and exact moment-matching merges
    (``merge_method="moment"``) instead of the paper's downhill-simplex
    refit -- at 1000 sites the coordinators absorb thousands of models
    and the simplex search, not the transport, would dominate the
    wall-clock.  Both the tree and the flat reference share the config,
    so the comparison stays apples-to-apples.
    """
    return build_spec(
        sites,
        fanin,
        seed=seed,
        dim=2,
        clusters=2,
        epsilon=0.3,
        delta=0.1,
        chunk=max(50, records_per_site // 2),
        records_per_site=records_per_site,
        p_new=0.0,
        merge_method="moment",
    )


def run_soak(
    spec: ClusterSpec | None = None,
    tolerance: float = 0.5,
    holdout_per_site: int = 2,
    faults: FaultConfig | None = None,
    observer: Observer | None = None,
    progress=None,
) -> SoakReport:
    """Drive the spec through a tree and a flat reference; compare roots.

    Parameters
    ----------
    spec:
        Topology and parameters; defaults to :func:`soak_spec` (1000
        sites, fan-in 32, 2 aggregation levels).
    tolerance:
        Maximum acceptable |avg-log-likelihood| gap between the tree
        root's mixture and the flat reference, in nats per holdout
        record.
    holdout_per_site:
        Held-out records drawn per site (after the fed prefix) for the
        pooled evaluation sample.
    faults:
        Optional seeded fault injection on every tree subnet -- the
        flat reference stays loss-free, which is the point: ARQ must
        hide the faults from the clustering result.
    observer:
        Shared observer; span/gauge traffic from 100k+ records is
        substantial, leave unset for plain runs.
    progress:
        Optional callable invoked as ``progress(done, total)`` once per
        feeding round.
    """
    spec = spec if spec is not None else soak_spec()
    started = time.perf_counter()

    tree = TransportTree.from_spec(spec, faults=faults, observer=observer)

    # Flat reference: same site seeds, same coordinator seed as the
    # root, every emit applied directly -- the §4/§5 deployment the
    # paper's tree is allowed to summarise but not distort.
    flat_coordinator = Coordinator(
        spec.coordinator_config(),
        rng=np.random.default_rng(spec.seed + 50_000 + spec.root.node_id),
    )
    flat_sites: dict[int, RemoteSite] = {}
    for node in spec.site_nodes:
        flat_sites[node.node_id] = RemoteSite(
            node.node_id,
            spec.site_config(),
            rng=np.random.default_rng(spec.seed + node.node_id),
            emit=flat_coordinator.handle_message,
        )

    # Two independent but identically seeded stream instances per site:
    # the tree and the reference must observe byte-identical records.
    tree_streams = {n.node_id: iter(make_stream(spec, n)) for n in spec.site_nodes}
    flat_streams = {n.node_id: iter(make_stream(spec, n)) for n in spec.site_nodes}

    budgets = {n.node_id: spec.node_records(n) for n in spec.site_nodes}
    rounds = max(budgets.values(), default=0)
    total = sum(budgets.values())
    fed = 0
    for round_index in range(rounds):
        for node_id, budget in budgets.items():
            if round_index >= budget:
                continue
            tree.feed(node_id, next(tree_streams[node_id]))
            flat_sites[node_id].process_record(next(flat_streams[node_id]))
            fed += 1
        if progress is not None:
            progress(fed, total)
    tree.drain()

    # Pooled holdout: fresh records from the same generators, past the
    # fed prefix, so neither mixture has seen them.
    holdout_records = []
    for node_id in budgets:
        stream = tree_streams[node_id]
        for _ in range(holdout_per_site):
            holdout_records.append(next(stream))
    holdout = np.asarray(holdout_records)

    tree_mixture = tree.global_mixture()
    flat_mixture = flat_coordinator.global_mixture()
    tree_ll = float(tree_mixture.average_log_likelihood(holdout))
    flat_ll = float(flat_mixture.average_log_likelihood(holdout))

    report = SoakReport(
        sites=len(spec.site_nodes),
        depth=tree.depth,
        records=tree.records_fed,
        holdout=len(holdout_records),
        tree_components=tree_mixture.n_components,
        flat_components=flat_mixture.n_components,
        tree_avg_ll=tree_ll,
        flat_avg_ll=flat_ll,
        ll_gap=abs(tree_ll - flat_ll),
        tolerance=tolerance,
        uplink_bytes=tree.total_uplink_bytes(),
        levels=tree.level_stats(),
        seconds=time.perf_counter() - started,
    )
    tree.close()
    return report
