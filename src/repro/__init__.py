"""CluDistream: distributed data stream clustering with a fast EM-based
approach.

A faithful, production-quality reproduction of *"Distributed Data Stream
Clustering: A Fast EM-based Approach"* (Zhou, Cao, Yan, Sha, He --
ICDE 2007).  The library implements the paper's test-and-cluster remote
sites, merge/split coordinator, the SEM and sampling baselines it
compares against, the discrete-event simulation its experiments run on,
and the synthetic workloads (including an NFD-like net-flow generator)
behind every figure of the evaluation.

Quickstart::

    import numpy as np
    from repro import CluDistream, CluDistreamConfig, DirectChannel
    from repro.streams import EvolvingGaussianStream

    system = CluDistream(CluDistreamConfig(n_sites=4))
    streams = {
        i: EvolvingGaussianStream(rng=np.random.default_rng(i))
        for i in range(4)
    }
    system.runtime(DirectChannel()).run(streams, max_records_per_site=10_000)
    print(system.global_mixture())

This top-level namespace is the library's *stable public API*: the
core model/site/coordinator types, the :class:`Runtime` delivery layer
with its channel backends, the :class:`Observer` instrumentation
facade, and the :mod:`repro.bench` entry points (loaded lazily).
Anything importable from ``repro`` directly follows the deprecation
policy of ``DESIGN.md`` section 10 -- removal only after at least one
release of ``DeprecationWarning``.

See ``examples/`` for full scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from repro.core import (
    AnomalyDetector,
    CluDistream,
    CluDistreamConfig,
    CodecConfig,
    CodecError,
    CodecNegotiationError,
    CodecStats,
    Coordinator,
    CoordinatorConfig,
    EMConfig,
    EMResult,
    EventRecord,
    EventTable,
    FitTestResult,
    Gaussian,
    GaussianMixture,
    RemoteSite,
    RemoteSiteConfig,
    WireCodec,
    anomaly_scores,
    available_codecs,
    average_log_likelihood,
    chunk_size,
    decode_message,
    encode_message,
    fit_em,
    fit_test,
    get_codec,
    iter_chunks,
    membership_report,
    register_codec,
    select_k,
)
from repro.obs import NULL_OBSERVER, Observer
from repro.runtime import (
    Channel,
    ChannelFaults,
    DeliveryAccounting,
    DirectChannel,
    RunReport,
    Runtime,
    SimulatedChannel,
    TransportChannel,
)

__version__ = "1.2.0"

#: Bench entry points re-exported lazily (PEP 562): ``repro.bench``
#: pulls in the stream generators and scenario registry, which plain
#: model users should not pay for on ``import repro``.
_BENCH_EXPORTS = (
    "BenchConfig",
    "BenchReport",
    "BenchRunner",
    "compare_benchmarks",
    "run_bench",
)


def __getattr__(name: str):
    if name in _BENCH_EXPORTS:
        import repro.bench as _bench

        return getattr(_bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AnomalyDetector",
    "BenchConfig",
    "BenchReport",
    "BenchRunner",
    "Channel",
    "ChannelFaults",
    "DeliveryAccounting",
    "DirectChannel",
    "NULL_OBSERVER",
    "Observer",
    "RunReport",
    "Runtime",
    "SimulatedChannel",
    "TransportChannel",
    "compare_benchmarks",
    "run_bench",
    "CluDistream",
    "CluDistreamConfig",
    "CodecConfig",
    "CodecError",
    "CodecNegotiationError",
    "CodecStats",
    "Coordinator",
    "CoordinatorConfig",
    "EMConfig",
    "EMResult",
    "EventRecord",
    "EventTable",
    "FitTestResult",
    "Gaussian",
    "GaussianMixture",
    "RemoteSite",
    "RemoteSiteConfig",
    "WireCodec",
    "anomaly_scores",
    "available_codecs",
    "average_log_likelihood",
    "chunk_size",
    "decode_message",
    "encode_message",
    "fit_em",
    "fit_test",
    "get_codec",
    "iter_chunks",
    "membership_report",
    "register_codec",
    "select_k",
    "__version__",
]
