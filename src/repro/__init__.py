"""CluDistream: distributed data stream clustering with a fast EM-based
approach.

A faithful, production-quality reproduction of *"Distributed Data Stream
Clustering: A Fast EM-based Approach"* (Zhou, Cao, Yan, Sha, He --
ICDE 2007).  The library implements the paper's test-and-cluster remote
sites, merge/split coordinator, the SEM and sampling baselines it
compares against, the discrete-event simulation its experiments run on,
and the synthetic workloads (including an NFD-like net-flow generator)
behind every figure of the evaluation.

Quickstart::

    import numpy as np
    from repro import CluDistream, CluDistreamConfig
    from repro.streams import EvolvingGaussianStream

    system = CluDistream(CluDistreamConfig(n_sites=4))
    streams = {
        i: EvolvingGaussianStream(rng=np.random.default_rng(i))
        for i in range(4)
    }
    system.feed_streams(streams, max_records_per_site=10_000)
    print(system.global_mixture())

See ``examples/`` for full scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from repro.core import (
    AnomalyDetector,
    CluDistream,
    CluDistreamConfig,
    Coordinator,
    CoordinatorConfig,
    EMConfig,
    EMResult,
    EventRecord,
    EventTable,
    FitTestResult,
    Gaussian,
    GaussianMixture,
    RemoteSite,
    RemoteSiteConfig,
    anomaly_scores,
    average_log_likelihood,
    chunk_size,
    decode_message,
    encode_message,
    fit_em,
    fit_test,
    iter_chunks,
    membership_report,
    select_k,
)

__version__ = "1.0.0"

__all__ = [
    "AnomalyDetector",
    "CluDistream",
    "CluDistreamConfig",
    "Coordinator",
    "CoordinatorConfig",
    "EMConfig",
    "EMResult",
    "EventRecord",
    "EventTable",
    "FitTestResult",
    "Gaussian",
    "GaussianMixture",
    "RemoteSite",
    "RemoteSiteConfig",
    "anomaly_scores",
    "average_log_likelihood",
    "chunk_size",
    "decode_message",
    "encode_message",
    "fit_em",
    "fit_test",
    "iter_chunks",
    "membership_report",
    "select_k",
    "__version__",
]
