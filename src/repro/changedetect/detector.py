"""Model-fit change detection (paper section 7).

The test-and-cluster machinery doubles as a change detector: a chunk
that fails the ``J_fit`` test against every known model *is* a
distribution change.  :class:`ChangeDetector` wraps a
:class:`~repro.core.remote.RemoteSite` and converts its model
transitions into timestamped :class:`ChangeEvent` records, suitable for
alerting and for the change-detection accuracy benchmarks.

Detection latency is bounded by the chunk size: a change happening
mid-chunk is noticed at the chunk boundary, so the detection position is
within ``M`` records of the true change point (and the reported
position within ``M/2`` on average, matching the event-table error the
paper quotes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.protocol import Message, ModelUpdateMessage, WeightUpdateMessage
from repro.core.remote import RemoteSite

__all__ = ["ChangeDetector", "ChangeEvent"]


@dataclass(frozen=True)
class ChangeEvent:
    """One detected distribution change.

    Attributes
    ----------
    position:
        Stream index (records) at which the change was detected (the
        boundary of the chunk that failed its fit tests).
    old_model_id / new_model_id:
        The superseded and the newly active model.
    reactivation:
        ``True`` when the "new" model is an archived one matched by the
        multi-test strategy (the stream returned to a distribution it
        had visited before) rather than a freshly clustered model.
    """

    position: int
    old_model_id: int | None
    new_model_id: int
    reactivation: bool


class ChangeDetector:
    """Detect distribution changes in a stream via model transitions.

    Parameters
    ----------
    site:
        The remote site doing the actual test-and-cluster work.  The
        detector observes its messages; feed records through
        :meth:`process_record`.
    """

    def __init__(self, site: RemoteSite) -> None:
        self.site = site
        self.changes: list[ChangeEvent] = []
        self._last_model_id: int | None = None

    def process_record(self, record: np.ndarray) -> list[ChangeEvent]:
        """Feed one record; returns changes detected at this record."""
        messages = self.site.process_record(record)
        return self._observe(messages)

    def _observe(self, messages: list[Message]) -> list[ChangeEvent]:
        detected: list[ChangeEvent] = []
        for message in messages:
            if isinstance(message, ModelUpdateMessage):
                if self._last_model_id is not None:
                    detected.append(
                        ChangeEvent(
                            position=self.site.position - self.site.chunk,
                            old_model_id=self._last_model_id,
                            new_model_id=message.model_id,
                            reactivation=False,
                        )
                    )
                self._last_model_id = message.model_id
            elif isinstance(message, WeightUpdateMessage):
                detected.append(
                    ChangeEvent(
                        position=self.site.position - self.site.chunk,
                        old_model_id=self._last_model_id,
                        new_model_id=message.model_id,
                        reactivation=True,
                    )
                )
                self._last_model_id = message.model_id
        self.changes.extend(detected)
        return detected

    def detected_positions(self) -> list[int]:
        """Stream indices of all detected changes, in order."""
        return [event.position for event in self.changes]

    def matches(
        self, true_positions: list[int], tolerance: int | None = None
    ) -> tuple[int, int, int]:
        """Score detections against ground truth change points.

        Parameters
        ----------
        true_positions:
            Record indices where the generating distribution actually
            changed.
        tolerance:
            Maximal |detected - true| to count as a hit; defaults to one
            chunk (the detector's resolution).

        Returns
        -------
        tuple[int, int, int]
            ``(hits, misses, false_alarms)`` -- each true change point
            matches at most one detection and vice versa.
        """
        tolerance = tolerance if tolerance is not None else self.site.chunk
        detections = self.detected_positions()
        unmatched = set(range(len(detections)))
        hits = 0
        for true_pos in true_positions:
            best = None
            best_gap = tolerance + 1
            for index in unmatched:
                gap = abs(detections[index] - true_pos)
                if gap <= tolerance and gap < best_gap:
                    best, best_gap = index, gap
            if best is not None:
                unmatched.discard(best)
                hits += 1
        misses = len(true_positions) - hits
        false_alarms = len(unmatched)
        return hits, misses, false_alarms
