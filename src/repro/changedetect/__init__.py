"""Change detection over data streams (paper section 7).

"Model fitting approach provides an alternative way for change
detection.  A change emerges when new chunk does not fit the existing
models."  :mod:`repro.changedetect.detector` packages that observation
as a standalone detector API.
"""

from repro.changedetect.detector import ChangeDetector, ChangeEvent

__all__ = ["ChangeDetector", "ChangeEvent"]
