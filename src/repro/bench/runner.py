"""Warmup/repeat/trimmed-stats benchmark runner.

The runner's contract: the *work* of every scenario is deterministic
under the configured seed (checksums are reproducible), while the
*timings* are sampled ``repeats`` times after ``warmup`` discarded
passes and summarised with a trimmed mean.  Container and CI timings
are noisy -- single measurements of the same kernel routinely vary by
3x -- so no consumer of a :class:`BenchReport` should ever look at a
single raw time; the trimmed mean (and for cross-machine comparisons,
the calibration-normalised value, see :mod:`repro.bench.compare`) is
the measurement.

Timing reuses the :mod:`repro.obs` profiling timers: each repeat runs
under ``observer.timer("bench.<scenario>")``, so a caller who passes
its own :class:`~repro.obs.observer.Observer` gets every sample in the
metrics registry and trace stream for free.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.obs.observer import Observer

if TYPE_CHECKING:  # pragma: no cover
    from repro.bench.scenarios import Scenario

__all__ = [
    "BenchConfig",
    "BenchReport",
    "BenchRunner",
    "ScenarioResult",
    "load_report",
    "trimmed_mean",
]

#: Format tag written into every report; bump on incompatible changes.
SCHEMA = "repro.bench/v1"


@dataclass(frozen=True, kw_only=True)
class BenchConfig:
    """Measurement protocol knobs.

    Parameters
    ----------
    repeats:
        Timed passes per scenario.
    warmup:
        Discarded passes before timing starts (fills caches: lazy
        Cholesky factors, BLAS thread pools, allocator arenas).
    trim:
        Fraction trimmed from *each* end of the sorted times before
        averaging; ``0.2`` with 7 repeats drops the best and worst.
    seed:
        Base seed handed to every scenario's workload builder.
    """

    repeats: int = 7
    warmup: int = 2
    trim: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be at least 1")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if not 0.0 <= self.trim < 0.5:
            raise ValueError("trim must lie in [0, 0.5)")

    def to_dict(self) -> dict[str, object]:
        return {
            "repeats": self.repeats,
            "warmup": self.warmup,
            "trim": self.trim,
            "seed": self.seed,
        }


def trimmed_mean(values: Iterable[float], trim: float) -> float:
    """Mean of ``values`` after dropping ``trim`` of each sorted tail.

    Falls back to the plain mean when trimming would drop everything.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    drop = int(arr.size * trim)
    if arr.size - 2 * drop < 1:
        drop = 0
    return float(np.mean(arr[drop : arr.size - drop]))


@dataclass(frozen=True, kw_only=True)
class ScenarioResult:
    """All timing samples of one scenario plus summary statistics.

    ``trimmed`` is *the* headline number; ``times`` keeps the raw
    samples so a report can be re-summarised with different trimming.
    ``value`` is the scenario's deterministic checksum -- identical
    across runs with the same seed, which is how the test-suite pins
    determinism without looking at timings.
    """

    name: str
    times: tuple[float, ...]
    trimmed: float
    best: float
    mean: float
    std: float
    value: float

    @classmethod
    def from_times(
        cls, name: str, times: Iterable[float], value: float, trim: float
    ) -> "ScenarioResult":
        samples = tuple(float(t) for t in times)
        arr = np.asarray(samples)
        return cls(
            name=name,
            times=samples,
            trimmed=trimmed_mean(samples, trim),
            best=float(np.min(arr)),
            mean=float(np.mean(arr)),
            std=float(np.std(arr)),
            value=float(value),
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "times": list(self.times),
            "trimmed": self.trimmed,
            "best": self.best,
            "mean": self.mean,
            "std": self.std,
            "value": self.value,
        }


@dataclass(frozen=True, kw_only=True)
class BenchReport:
    """One full benchmark run, serialisable to ``BENCH_<name>.json``.

    ``speedups`` maps each optimised scenario to
    ``baseline.trimmed / optimised.trimmed`` for every scenario pair
    declared in the registry (e.g. the batched E-step against the
    per-component loop) -- the measured evidence that a vectorised
    kernel actually pays.
    """

    suite: str
    config: BenchConfig
    scenarios: tuple[ScenarioResult, ...]
    speedups: Mapping[str, float] = field(default_factory=dict)
    machine: Mapping[str, object] = field(default_factory=dict)
    commit: str | None = None

    def scenario(self, name: str) -> ScenarioResult:
        for result in self.scenarios:
            if result.name == name:
                return result
        raise KeyError(f"no scenario {name!r} in this report")

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": SCHEMA,
            "suite": self.suite,
            "config": self.config.to_dict(),
            "machine": dict(self.machine),
            "commit": self.commit,
            "scenarios": {r.name: r.to_dict() for r in self.scenarios},
            "speedups": dict(self.speedups),
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the report; returns the resolved path."""
        target = Path(path)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target

    def format(self) -> str:
        """Human-readable table of the run."""
        lines = [f"suite {self.suite!r}: {len(self.scenarios)} scenarios"]
        width = max((len(r.name) for r in self.scenarios), default=0)
        for result in self.scenarios:
            line = (
                f"  {result.name:<{width}}  "
                f"trimmed {result.trimmed * 1e3:9.3f} ms  "
                f"best {result.best * 1e3:9.3f} ms"
            )
            if result.name in self.speedups:
                line += f"  ({self.speedups[result.name]:.2f}x vs baseline)"
            lines.append(line)
        return "\n".join(lines)


def machine_info() -> dict[str, object]:
    """Hardware/software fingerprint stamped into every report."""
    import os

    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
    }


def git_commit() -> str | None:
    """Current commit hash, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def load_report(path: str | Path) -> dict[str, object]:
    """Load a ``BENCH_*.json`` document as a plain dict.

    Comparison (:func:`repro.bench.compare.compare_benchmarks`) works on
    these dicts, so reports written by older schema versions degrade
    gracefully instead of failing dataclass validation.
    """
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "scenarios" not in doc:
        raise ValueError(f"{path}: not a repro.bench report")
    return doc


class BenchRunner:
    """Execute scenarios under the warmup/repeat/trim protocol.

    Parameters
    ----------
    config:
        Measurement protocol; defaults to :class:`BenchConfig`.
    observer:
        Destination for per-repeat ``bench.<scenario>`` timer samples.
        Defaults to a private enabled :class:`Observer` so histogram
        stats are always collected.
    """

    def __init__(
        self,
        config: BenchConfig | None = None,
        observer: Observer | None = None,
    ) -> None:
        self.config = config if config is not None else BenchConfig()
        self.observer = observer if observer is not None else Observer()

    def run_scenario(self, scenario: "Scenario") -> ScenarioResult:
        """Build the scenario's workload once, then warm up and time it."""
        thunk = scenario.build(self.config.seed)
        value = 0.0
        for _ in range(self.config.warmup):
            value = thunk()
        times = []
        for _ in range(self.config.repeats):
            with self.observer.timer(f"bench.{scenario.name}") as timing:
                value = thunk()
            times.append(timing.elapsed)
        return ScenarioResult.from_times(
            scenario.name, times, value, self.config.trim
        )

    def run(
        self,
        names: Iterable[str],
        suite: str = "custom",
        progress=None,
    ) -> BenchReport:
        """Run the named scenarios and assemble a full report.

        ``progress`` is an optional ``callable(str)`` invoked before
        each scenario (the CLI passes ``print``).
        """
        from repro.bench.scenarios import get_scenario

        scenarios = [get_scenario(name) for name in names]
        results: dict[str, ScenarioResult] = {}
        for scenario in scenarios:
            if progress is not None:
                progress(f"running {scenario.name} ...")
            results[scenario.name] = self.run_scenario(scenario)
        speedups = {}
        for scenario in scenarios:
            if scenario.baseline and scenario.baseline in results:
                speedups[scenario.name] = (
                    results[scenario.baseline].trimmed
                    / max(results[scenario.name].trimmed, 1e-12)
                )
        return BenchReport(
            suite=suite,
            config=self.config,
            scenarios=tuple(results.values()),
            speedups=speedups,
            machine=machine_info(),
            commit=git_commit(),
        )
