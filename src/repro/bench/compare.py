"""Regression comparison between two benchmark reports.

Raw seconds from two different machines are not comparable -- the CI
runner that checks a pull request is rarely the machine that stamped
``BENCH_core.json``.  Both reports therefore carry a ``calibration``
scenario (a fixed NumPy matmul whose cost depends only on the machine),
and the comparator divides every scenario's time by its report's own
calibration time before forming ratios.  What remains is a
machine-relative cost that cancels hardware differences to first
order; the generous default threshold (25%) absorbs the rest of the
noise.

Each scenario is compared on its *best* (minimum) time when the report
carries one, falling back to the trimmed mean otherwise.  The minimum
is the least noise-sensitive statistic a benchmark emits -- transient
CPU contention can only ever slow a pass down -- which keeps the gate
from tripping on a single noisy repeat.

Reports missing the calibration scenario are compared on raw seconds
(flagged in the output), so hand-trimmed reports still work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.bench.scenarios import SCENARIOS

__all__ = [
    "CALIBRATION_SCENARIO",
    "ComparisonReport",
    "ScenarioDelta",
    "compare_benchmarks",
]

#: Name of the machine-speed yardstick scenario.
CALIBRATION_SCENARIO = "calibration"

#: Default regression threshold: candidate may be up to this fraction
#: slower than baseline before the comparison fails.
DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True, kw_only=True)
class ScenarioDelta:
    """One scenario's baseline-vs-candidate outcome.

    ``ratio`` is ``candidate / baseline`` of the (possibly normalised)
    scenario times: below 1 is faster, above ``1 + threshold`` is a
    regression.
    """

    name: str
    baseline: float
    candidate: float
    ratio: float
    regressed: bool


@dataclass(frozen=True, kw_only=True)
class ComparisonReport:
    """Full comparison of two ``BENCH_*.json`` documents."""

    threshold: float
    normalized: bool
    deltas: tuple[ScenarioDelta, ...]
    missing: tuple[str, ...]
    added: tuple[str, ...]

    @property
    def regressions(self) -> tuple[ScenarioDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def format(self) -> str:
        unit = "calibration-normalised" if self.normalized else "raw seconds"
        lines = [
            f"comparing {len(self.deltas)} scenarios "
            f"({unit}, threshold +{self.threshold:.0%})"
        ]
        width = max((len(d.name) for d in self.deltas), default=0)
        for delta in self.deltas:
            marker = "REGRESSION" if delta.regressed else "ok"
            lines.append(
                f"  {delta.name:<{width}}  "
                f"{delta.ratio:6.2f}x vs baseline  {marker}"
            )
        if self.missing:
            lines.append(
                "  missing from candidate: " + ", ".join(self.missing)
            )
        if self.added:
            lines.append(
                "  new in candidate (not compared): " + ", ".join(self.added)
            )
        verdict = (
            f"FAIL: {len(self.regressions)} regression(s)"
            if self.has_regressions
            else "PASS: no regressions"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _scenario_times(doc: Mapping) -> dict[str, float]:
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, Mapping):
        raise ValueError("report has no 'scenarios' mapping")
    times = {}
    for name, entry in scenarios.items():
        value = None
        if isinstance(entry, Mapping):
            # Prefer the minimum over the trimmed mean: contention can
            # only make a pass slower, so min-of-N is the most stable
            # statistic for cross-run comparison.
            value = entry.get("best")
            if not isinstance(value, (int, float)) or value <= 0:
                value = entry.get("trimmed")
        if isinstance(value, (int, float)) and value > 0:
            times[str(name)] = float(value)
    return times


def compare_benchmarks(
    baseline: Mapping,
    candidate: Mapping,
    threshold: float = DEFAULT_THRESHOLD,
) -> ComparisonReport:
    """Compare two report documents (as loaded by ``load_report``).

    Parameters
    ----------
    baseline / candidate:
        Parsed ``BENCH_*.json`` dicts.
    threshold:
        Allowed slowdown fraction before a scenario counts as a
        regression.

    Notes
    -----
    Only scenarios present in *both* reports are compared; the
    calibration scenario itself is never compared (it is the unit).
    Legacy-baseline scenarios (the ``*_legacy`` / ``*_cold`` / ``*_loop``
    measuring sticks) are skipped too -- they exist to compute speedups
    within one report, and "the unoptimised path got faster" is not a
    regression signal for the library.
    """
    if threshold < 0.0:
        raise ValueError("threshold must be non-negative")
    base_times = _scenario_times(baseline)
    cand_times = _scenario_times(candidate)

    base_cal = base_times.get(CALIBRATION_SCENARIO)
    cand_cal = cand_times.get(CALIBRATION_SCENARIO)
    normalized = base_cal is not None and cand_cal is not None

    legacy_sticks = {
        scenario.baseline
        for scenario in SCENARIOS.values()
        if scenario.baseline is not None
    }

    deltas = []
    for name in base_times:
        if name == CALIBRATION_SCENARIO or name in legacy_sticks:
            continue
        if name not in cand_times:
            continue
        base_value = base_times[name]
        cand_value = cand_times[name]
        if normalized:
            base_value /= base_cal
            cand_value /= cand_cal
        ratio = cand_value / base_value
        deltas.append(
            ScenarioDelta(
                name=name,
                baseline=base_value,
                candidate=cand_value,
                ratio=ratio,
                regressed=ratio > 1.0 + threshold,
            )
        )

    comparable = set(base_times) - {CALIBRATION_SCENARIO} - legacy_sticks
    missing = tuple(sorted(comparable - set(cand_times)))
    added = tuple(
        sorted(
            (set(cand_times) - set(base_times))
            - {CALIBRATION_SCENARIO}
            - legacy_sticks
        )
    )
    return ComparisonReport(
        threshold=threshold,
        normalized=normalized,
        deltas=tuple(sorted(deltas, key=lambda d: d.name)),
        missing=missing,
        added=added,
    )
