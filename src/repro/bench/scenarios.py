"""The benchmark scenario registry.

Each :class:`Scenario` names one hot path of the reproduction and knows
how to build a deterministic workload for it.  Scenarios come in two
kinds:

* standalone throughput probes (``fit_em``, ``merge_fit``,
  ``serde_roundtrip``, the three end-to-end ``runtime_*`` runs);
* optimisation *pairs*, where the optimised scenario declares its
  ``baseline`` -- the pre-optimisation implementation kept alive here
  purely as a measuring stick.  The runner reports
  ``baseline / optimised`` as the scenario's speedup, which is how the
  repo proves its vectorised kernels actually pay on the current
  machine rather than only in the commit message.

``calibration`` is special: a fixed NumPy matmul whose cost depends
only on the machine.  :mod:`repro.bench.compare` divides every other
scenario by it before comparing two reports, which cancels (most of)
the hardware difference between the machine that stamped the baseline
and the machine running CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench.specs import (
    checksum,
    make_chunk,
    make_mixture,
    make_streams,
    rebuild_mixture,
)

__all__ = ["SCENARIOS", "SUITES", "Scenario", "get_scenario", "suite_names"]


@dataclass(frozen=True, kw_only=True)
class Scenario:
    """One registered benchmark.

    ``build(seed)`` performs all setup (sampling workloads, fitting
    models, calibrating detectors -- none of it timed) and returns a
    zero-argument thunk; the runner times repeated thunk calls.  The
    thunk returns a float checksum that must be identical across calls
    with the same seed.

    ``baseline`` optionally names the scenario this one is measured
    against (the unoptimised implementation of the same computation).
    """

    name: str
    summary: str
    build: Callable[[int], Callable[[], float]]
    baseline: str | None = None


# ----------------------------------------------------------------------
# Machine calibration
# ----------------------------------------------------------------------
def _build_calibration(seed: int) -> Callable[[], float]:
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((192, 192))

    def run() -> float:
        out = matrix
        for _ in range(8):
            out = out @ matrix
            out /= np.max(np.abs(out))
        return checksum(out)

    return run


# ----------------------------------------------------------------------
# EM fit
# ----------------------------------------------------------------------
def _build_fit_em(seed: int) -> Callable[[], float]:
    from repro.core.em import EMConfig, fit_em

    data = make_chunk(seed, 600)
    config = EMConfig(n_components=5, n_init=1, max_iter=30)

    def run() -> float:
        result = fit_em(data, config, rng=np.random.default_rng(seed + 1))
        return result.log_likelihood

    return run


# ----------------------------------------------------------------------
# Incremental EM: warm-start refit and suffstat absorption vs cold fits
# ----------------------------------------------------------------------
_WARM_N = 600


def _warm_workload(seed: int):
    """A fitted model plus a slightly drifted next chunk.

    This is the refit-ladder rung-2 situation: the distribution moved
    enough to fail the fit test but the old model is still in the right
    basin, so a few stepwise updates should recover what a cold restart
    re-derives from scratch.
    """
    from repro.core.em import EMConfig, fit_em

    data = make_chunk(seed, _WARM_N)
    config = EMConfig(
        n_components=5, n_init=1, max_iter=30, incremental=True
    )
    warm = fit_em(data, config, rng=np.random.default_rng(seed + 1))
    drifted = make_chunk(seed + 2, _WARM_N) + 0.4
    return config, warm.mixture, drifted


def _build_fit_em_warm(seed: int) -> Callable[[], float]:
    from repro.core.em import incremental_em

    config, mixture, drifted = _warm_workload(seed)

    def run() -> float:
        result = incremental_em(drifted, mixture, config)
        return result.log_likelihood

    return run


def _build_fit_em_cold_refit(seed: int) -> Callable[[], float]:
    from repro.core.em import fit_em

    config, _, drifted = _warm_workload(seed)

    def run() -> float:
        # What the site paid before the ladder existed: a full cold
        # fit on the drifted chunk, warm model discarded.
        result = fit_em(
            drifted, config, rng=np.random.default_rng(seed + 3)
        )
        return result.log_likelihood

    return run


def _build_incremental_absorb(seed: int) -> Callable[[], float]:
    from repro.core.em import absorb_chunk
    from repro.core.suffstats import SufficientStats

    config, mixture, _ = _warm_workload(seed)
    passing = make_chunk(seed + 2, _WARM_N)
    stats = SufficientStats.from_mixture(mixture, float(_WARM_N))

    def run() -> float:
        # Pass-case absorption: one posterior pass, suffstat merge,
        # closed-form materialisation.  No EM iterations at all.
        result = absorb_chunk(passing, mixture, config, stats=stats)
        return result.log_likelihood

    return run


def _build_incremental_absorb_cold(seed: int) -> Callable[[], float]:
    from repro.core.em import fit_em

    config, mixture, _ = _warm_workload(seed)
    passing = make_chunk(seed + 2, _WARM_N)

    def run() -> float:
        # Refreshing the model on a passing chunk without suffstats
        # means full EM sweeps over the chunk.
        result = fit_em(
            passing,
            config,
            rng=np.random.default_rng(seed + 4),
            warm_start=mixture,
        )
        return result.log_likelihood

    return run


# ----------------------------------------------------------------------
# E-step / likelihood kernel: batched GEMM vs per-component loop
# ----------------------------------------------------------------------
_ESTEP_N = 4000
_ESTEP_K = 8


def _build_estep_batched(seed: int) -> Callable[[], float]:
    mixture = make_mixture(seed, n_components=_ESTEP_K)
    points = make_chunk(seed + 1, _ESTEP_N)

    def run() -> float:
        posterior = mixture.posterior(points)
        return mixture.average_log_likelihood(points) + checksum(
            posterior[:, 0]
        )

    return run


def _build_estep_legacy(seed: int) -> Callable[[], float]:
    mixture = make_mixture(seed, n_components=_ESTEP_K)
    points = make_chunk(seed + 1, _ESTEP_N)
    log_weights = np.log(mixture.weights)

    def run() -> float:
        # The pre-vectorisation E-step: one Gaussian.log_pdf call per
        # component, stacked, then a hand-rolled logsumexp.
        stacked = np.stack(
            [component.log_pdf(points) for component in mixture.components],
            axis=1,
        )
        weighted = stacked + log_weights[None, :]
        peak = np.max(weighted, axis=1, keepdims=True)
        log_density = peak[:, 0] + np.log(
            np.sum(np.exp(weighted - peak), axis=1)
        )
        posterior = np.exp(weighted - log_density[:, None])
        return float(np.mean(log_density)) + checksum(posterior[:, 0])

    return run


def _build_logdensity_batched(seed: int) -> Callable[[], float]:
    mixture = make_mixture(seed, n_components=_ESTEP_K)
    points = make_chunk(seed + 1, _ESTEP_N)

    def run() -> float:
        # The fit-test hot path: AvgPr needs only the mixture log
        # density, evaluated once per chunk per tested model.
        return float(np.mean(mixture.log_pdf(points)))

    return run


def _build_logdensity_legacy(seed: int) -> Callable[[], float]:
    mixture = make_mixture(seed, n_components=_ESTEP_K)
    points = make_chunk(seed + 1, _ESTEP_N)
    log_weights = np.log(mixture.weights)

    def run() -> float:
        stacked = np.stack(
            [component.log_pdf(points) for component in mixture.components],
            axis=1,
        )
        weighted = stacked + log_weights[None, :]
        peak = np.max(weighted, axis=1, keepdims=True)
        log_density = peak[:, 0] + np.log(
            np.sum(np.exp(weighted - peak), axis=1)
        )
        return float(np.mean(log_density))

    return run


# ----------------------------------------------------------------------
# Anomaly scoring: one batched pass vs per-record calls
# ----------------------------------------------------------------------
_SCORE_N = 2000


def _make_detector(seed: int):
    from repro.core.scoring import AnomalyDetector

    mixture = make_mixture(seed)
    reference = make_chunk(seed + 1, 500)
    return AnomalyDetector(mixture, reference)


def _verdict_checksum(verdicts) -> float:
    return checksum(
        np.array([v.score for v in verdicts])
    ) + float(sum(v.top_cluster for v in verdicts))


def _build_score_batch(seed: int) -> Callable[[], float]:
    detector = _make_detector(seed)
    records = make_chunk(seed + 2, _SCORE_N)

    def run() -> float:
        return _verdict_checksum(detector.score_batch(records))

    return run


def _build_score_loop(seed: int) -> Callable[[], float]:
    detector = _make_detector(seed)
    records = make_chunk(seed + 2, _SCORE_N)

    def run() -> float:
        return _verdict_checksum(
            [detector.score(record) for record in records]
        )

    return run


# ----------------------------------------------------------------------
# Multi-test chunk testing: cached factors vs re-factorised models
# ----------------------------------------------------------------------
_ARCHIVE_SIZE = 4
_TEST_CHUNKS = 8
_ARCHIVE_DIM = 8


def _chunk_test_workload(seed: int):
    archive = [
        make_mixture(seed + offset, dim=_ARCHIVE_DIM)
        for offset in range(_ARCHIVE_SIZE)
    ]
    references = [
        mixture.average_log_likelihood(
            make_chunk(seed + offset, 400, dim=_ARCHIVE_DIM)
        )
        for offset, mixture in enumerate(archive)
    ]
    chunks = [
        make_chunk(seed + 100 + index, 120, dim=_ARCHIVE_DIM)
        for index in range(_TEST_CHUNKS)
    ]
    return archive, references, chunks


def _run_chunk_tests(archive, references, chunks) -> float:
    from repro.core.testing import fit_test

    total = 0.0
    for chunk in chunks:
        for mixture, reference in zip(archive, references):
            total += fit_test(mixture, chunk, reference, 0.5).j_fit
    return float(total)


def _build_chunk_test_cached(seed: int) -> Callable[[], float]:
    archive, references, chunks = _chunk_test_workload(seed)

    def run() -> float:
        # Archived models persist across chunks (the remote site's
        # multi-test c_max path), so every Cholesky/L⁻¹ factor and
        # batched-kernel stack is computed once and reused.
        return _run_chunk_tests(archive, references, chunks)

    return run


def _build_chunk_test_cold(seed: int) -> Callable[[], float]:
    archive, references, chunks = _chunk_test_workload(seed)

    def run() -> float:
        # No caching at all: every chunk test re-derives the archive's
        # factorisations and batched stacks from raw (μ, Σ).
        total = 0.0
        for chunk in chunks:
            rebuilt = [rebuild_mixture(mixture) for mixture in archive]
            total += _run_chunk_tests(rebuilt, references, [chunk])
        return total

    return run


# ----------------------------------------------------------------------
# Nelder-Mead merge fit
# ----------------------------------------------------------------------
def _build_merge_fit(seed: int) -> Callable[[], float]:
    from repro.core.merging import fit_merged_component

    mixture = make_mixture(seed, n_components=2, separation=1.5)
    comp_i, comp_j = mixture.components
    weight_i, weight_j = (float(w) for w in mixture.weights)

    def run() -> float:
        fit = fit_merged_component(
            weight_i,
            comp_i,
            weight_j,
            comp_j,
            n_samples=512,
            max_iter=40,
            rng=np.random.default_rng(seed + 3),
        )
        return checksum(fit.component.mean) + fit.loss

    return run


# ----------------------------------------------------------------------
# Wire-format serde
# ----------------------------------------------------------------------
def _build_serde_roundtrip(seed: int) -> Callable[[], float]:
    from repro.core.protocol import ModelUpdateMessage
    from repro.core.serde import get_codec

    codec = get_codec("cds1")
    message = ModelUpdateMessage(
        site_id=3,
        model_id=7,
        time=12345,
        mixture=make_mixture(seed),
        count=4200,
        reference_likelihood=-6.25,
    )

    def run() -> float:
        total = 0
        for _ in range(50):
            payload = codec.encode(message)
            decoded = codec.decode(payload)
            total += len(payload) + decoded.count
        return float(total)

    return run


# ----------------------------------------------------------------------
# End-to-end runtime throughput, one scenario per channel backend
# ----------------------------------------------------------------------
_RUNTIME_SITES = 2
_RUNTIME_RECORDS = 300


def _runtime_system(seed: int):
    from repro.core.cludistream import CluDistream, CluDistreamConfig
    from repro.core.coordinator import CoordinatorConfig
    from repro.core.em import EMConfig
    from repro.core.remote import RemoteSiteConfig

    config = CluDistreamConfig(
        n_sites=_RUNTIME_SITES,
        site=RemoteSiteConfig(
            dim=4,
            em=EMConfig(n_components=3, n_init=1, max_iter=25),
            chunk_override=100,
        ),
        coordinator=CoordinatorConfig(max_components=6),
        rate=500.0,
    )
    return CluDistream(config, seed=seed)


def _build_runtime(make_channel) -> Callable[[int], Callable[[], float]]:
    def build(seed: int) -> Callable[[], float]:
        streams = make_streams(seed, _RUNTIME_SITES, _RUNTIME_RECORDS)

        def run() -> float:
            # A fresh system and channel per pass: site/coordinator
            # state is cumulative, so reuse would shrink the work.
            system = _runtime_system(seed)
            report = system.runtime(make_channel()).run(
                streams, max_records_per_site=_RUNTIME_RECORDS
            )
            return float(report.records + report.accounting.attempted)

        return run

    return build


def _direct_channel():
    from repro.runtime import DirectChannel

    return DirectChannel()


def _simulated_channel():
    from repro.runtime import SimulatedChannel

    return SimulatedChannel(rate=500.0, latency=0.01)


def _transport_channel():
    from repro.runtime import TransportChannel
    from repro.transport.clock import ManualClock
    from repro.transport.loopback import LoopbackTransport

    return TransportChannel(LoopbackTransport(), ManualClock(), seed=11)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            name="calibration",
            summary="fixed NumPy matmul; machine-speed yardstick for "
            "cross-machine report comparison",
            build=_build_calibration,
        ),
        Scenario(
            name="fit_em",
            summary="full EM fit on one chunk (n=600, d=4, K=5)",
            build=_build_fit_em,
        ),
        Scenario(
            name="fit_em_warm",
            summary="refit-ladder rung 2: stepwise incremental EM from "
            "the drifted warm model",
            build=_build_fit_em_warm,
            baseline="fit_em_cold_refit",
        ),
        Scenario(
            name="fit_em_cold_refit",
            summary="same drifted chunk refit cold (the pre-ladder "
            "site path)",
            build=_build_fit_em_cold_refit,
        ),
        Scenario(
            name="incremental_absorb",
            summary="pass-case absorption: one posterior pass + "
            "suffstat merge + materialise",
            build=_build_incremental_absorb,
            baseline="incremental_absorb_cold",
        ),
        Scenario(
            name="incremental_absorb_cold",
            summary="same model refresh via full warm-start EM sweeps "
            "(no suffstats)",
            build=_build_incremental_absorb_cold,
        ),
        Scenario(
            name="estep_batched",
            summary="posterior + AvgPr via the batched (n,k) GEMM kernel",
            build=_build_estep_batched,
            baseline="estep_legacy",
        ),
        Scenario(
            name="estep_legacy",
            summary="same E-step via the per-component Gaussian.log_pdf "
            "loop (pre-optimisation path)",
            build=_build_estep_legacy,
        ),
        Scenario(
            name="logdensity_batched",
            summary="mixture log density (the fit-test AvgPr path) via "
            "the batched kernel",
            build=_build_logdensity_batched,
            baseline="logdensity_legacy",
        ),
        Scenario(
            name="logdensity_legacy",
            summary="same log density via per-component stacking",
            build=_build_logdensity_legacy,
        ),
        Scenario(
            name="score_batch",
            summary="AnomalyDetector.score_batch, one vectorised pass",
            build=_build_score_batch,
            baseline="score_loop",
        ),
        Scenario(
            name="score_loop",
            summary="same records scored one AnomalyDetector.score call "
            "at a time",
            build=_build_score_loop,
        ),
        Scenario(
            name="chunk_test_cached",
            summary="multi-test fit_test sweep reusing archived models' "
            "cached factors",
            build=_build_chunk_test_cached,
            baseline="chunk_test_cold",
        ),
        Scenario(
            name="chunk_test_cold",
            summary="same sweep with models re-factorised every pass",
            build=_build_chunk_test_cold,
        ),
        Scenario(
            name="merge_fit",
            summary="Nelder-Mead merge fit of two overlapping components",
            build=_build_merge_fit,
        ),
        Scenario(
            name="serde_roundtrip",
            summary="50 encode/decode round-trips of a ModelUpdateMessage",
            build=_build_serde_roundtrip,
        ),
        Scenario(
            name="runtime_direct",
            summary="end-to-end Runtime throughput on DirectChannel",
            build=_build_runtime(_direct_channel),
        ),
        Scenario(
            name="runtime_simulated",
            summary="end-to-end Runtime throughput on SimulatedChannel",
            build=_build_runtime(_simulated_channel),
        ),
        Scenario(
            name="runtime_transport",
            summary="end-to-end Runtime throughput on TransportChannel "
            "(loopback ARQ)",
            build=_build_runtime(_transport_channel),
        ),
    ]
}

#: Named scenario sets.  ``core`` is the full sweep that stamps
#: ``BENCH_core.json``; ``smoke`` is the quick CI subset (the kernel
#: pairs plus calibration, no end-to-end runs).
SUITES: dict[str, tuple[str, ...]] = {
    "core": tuple(SCENARIOS),
    "smoke": (
        "calibration",
        "fit_em_warm",
        "fit_em_cold_refit",
        "incremental_absorb",
        "incremental_absorb_cold",
        "estep_batched",
        "estep_legacy",
        "logdensity_batched",
        "logdensity_legacy",
        "score_batch",
        "score_loop",
        "serde_roundtrip",
    ),
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def suite_names(suite: str) -> tuple[str, ...]:
    try:
        return SUITES[suite]
    except KeyError:
        known = ", ".join(sorted(SUITES))
        raise KeyError(f"unknown suite {suite!r}; known: {known}") from None
