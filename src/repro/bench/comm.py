"""The ``comm`` bench family: wire bytes per record, not seconds.

Every other scenario in :mod:`repro.bench.scenarios` measures *time*;
the codec cells here measure *bytes*.  One seeded drift workload -- a
``K=8``, ``d=8`` full-covariance mixture in which exactly one component
moves per refit, the steady state the CDS2 delta encoding is designed
for -- is pushed through a real :class:`~repro.transport.wire.CodecSender`
over the ARQ reliability layer on a loopback transport, once per codec
cell (CDS1; CDS2 at f64/f32/f16, each with delta on and off).  Two
numbers come out per cell:

* ``bytes_per_record`` -- total encoded wire bytes divided by the
  records the synopses stand in for (the x-axis of the Pareto table in
  the README);
* ``avg_pr_loss`` -- holdout ``AvgPr`` (Definition 1) of the mixture
  the *receiver* decoded, relative to the CDS1 cell.  Quantisation is
  only admissible while this stays negligible; delta at f64 must cost
  exactly nothing (the decoded model is bit-identical).

Bytes are deterministic under the seed, so the report needs no
warmup/repeat protocol and no calibration scenario: the document
reuses the ``repro.bench/v1`` shape with ``bytes_per_record`` stored in
the ``best``/``trimmed`` slots, which makes ``BENCH_comm.json``
directly comparable by :func:`repro.bench.compare.compare_benchmarks`
(raw mode, smaller is better) -- the same gate CI already runs against
``BENCH_core.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.bench.runner import SCHEMA, git_commit, machine_info
from repro.bench.specs import make_mixture
from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.core.protocol import ModelUpdateMessage
from repro.core.serde import CodecConfig, get_codec
from repro.core.testing import average_log_likelihood
from repro.transport.clock import ManualClock
from repro.transport.loopback import LoopbackTransport
from repro.transport.reliability import ReliableReceiver, ReliableSender
from repro.transport.wire import CodecSender

__all__ = [
    "COMM_CELLS",
    "CommCell",
    "CommWorkload",
    "format_comm_report",
    "run_comm_bench",
]

#: The cell every other cell's quality is measured against.
REFERENCE_CELL = "comm_cds1"


@dataclass(frozen=True, kw_only=True)
class CommCell:
    """One codec configuration measured by the comm bench."""

    name: str
    summary: str
    codec: str
    quantize: str = "f64"
    delta: bool = False

    def config(self) -> CodecConfig:
        return CodecConfig(quantize=self.quantize, delta=self.delta)


#: The Pareto sweep: CDS1, then CDS2 across quantisation x delta.
COMM_CELLS: tuple[CommCell, ...] = (
    CommCell(
        name="comm_cds1",
        summary="CDS1 full snapshots (the v1 wire format)",
        codec="cds1",
    ),
    CommCell(
        name="comm_cds2_full",
        summary="CDS2 full snapshots, exact f64 covariances",
        codec="cds2",
    ),
    CommCell(
        name="comm_cds2_f32",
        summary="CDS2 snapshots, f32 Cholesky covariances",
        codec="cds2",
        quantize="f32",
    ),
    CommCell(
        name="comm_cds2_f16",
        summary="CDS2 snapshots, f16 Cholesky covariances",
        codec="cds2",
        quantize="f16",
    ),
    CommCell(
        name="comm_cds2_delta",
        summary="CDS2 delta encoding, exact f64 covariances",
        codec="cds2",
        delta=True,
    ),
    CommCell(
        name="comm_cds2_f32_delta",
        summary="CDS2 delta encoding, f32 Cholesky covariances",
        codec="cds2",
        quantize="f32",
        delta=True,
    ),
    CommCell(
        name="comm_cds2_f16_delta",
        summary="CDS2 delta encoding, f16 Cholesky covariances",
        codec="cds2",
        quantize="f16",
        delta=True,
    ),
)


@dataclass(frozen=True, kw_only=True)
class CommWorkload:
    """The seeded drift stream all cells share.

    ``messages[t]`` is the site's ``t``-th model upload; between
    consecutive uploads exactly one component has moved (means drift,
    everything else is the *same array object*, hence byte-identical on
    the wire -- the situation a refit after a localised drift produces,
    and the one the delta codec's change detection keys on).
    ``holdout`` is sampled from the final ground-truth mixture, so a
    receiver that decoded the last upload correctly scores the same
    ``AvgPr`` on it as the sender's model does.
    """

    messages: tuple[ModelUpdateMessage, ...]
    holdout: np.ndarray
    records_per_update: int

    @property
    def records(self) -> int:
        return len(self.messages) * self.records_per_update


def build_workload(
    seed: int,
    *,
    updates: int = 40,
    records_per_update: int = 250,
    n_components: int = 8,
    dim: int = 8,
    holdout: int = 2000,
) -> CommWorkload:
    """Deterministic drift workload: one component moves per update."""
    rng = np.random.default_rng(seed + 9_000)
    mixture = make_mixture(
        seed, dim=dim, n_components=n_components, separation=3.0
    )
    messages = []
    for step in range(updates):
        drifting = step % n_components
        components = list(mixture.components)
        moved = components[drifting]
        components[drifting] = Gaussian(
            moved.mean + 0.05 * rng.standard_normal(dim),
            np.array(moved.covariance),
            diagonal=moved.diagonal,
        )
        mixture = GaussianMixture(np.array(mixture.weights), tuple(components))
        messages.append(
            ModelUpdateMessage(
                site_id=1,
                model_id=step + 1,
                time=step,
                mixture=mixture,
                count=(step + 1) * records_per_update,
                reference_likelihood=-float(dim),
            )
        )
    points, _ = mixture.sample(holdout, np.random.default_rng(seed + 9_500))
    return CommWorkload(
        messages=tuple(messages),
        holdout=points,
        records_per_update=records_per_update,
    )


def run_cell(cell: CommCell, workload: CommWorkload) -> dict[str, object]:
    """Push the workload through one codec cell over loopback ARQ.

    Loopback delivery is synchronous, so acks return before ``send``
    does and every delta update gets to baseline against its immediate
    predecessor -- the steady state of a healthy edge.  The decode side
    runs the negotiated receiver codec, so ``avg_pr`` reflects what the
    coordinator would actually see, quantisation loss included.
    """
    clock = ManualClock()
    transport = LoopbackTransport()
    encoder = get_codec(cell.codec, cell.config())
    decoder = get_codec(cell.codec)
    decoded: list[ModelUpdateMessage] = []
    receiver = ReliableReceiver(
        deliver=lambda site_id, payload: decoded.append(
            decoder.decode(payload)
        ),
        send_ack=transport.send_to_site,
        clock=clock,
        accept_codecs={0, encoder.wire_id},
    )
    transport.bind_coordinator(receiver.handle_datagram)
    sender = ReliableSender(
        site_id=1,
        transmit=lambda data: transport.send_to_coordinator(1, data),
        clock=clock,
    )
    transport.bind_site(1, sender.handle_datagram)
    codec_sender = CodecSender(sender, encoder)

    for message in workload.messages:
        codec_sender.send(message)
    codec_sender.flush()
    if sender.outstanding():  # loopback acks synchronously; belt-and-braces
        raise RuntimeError("loopback comm cell failed to drain")
    if len(decoded) != len(workload.messages):
        raise RuntimeError(
            f"comm cell {cell.name!r} delivered {len(decoded)} of "
            f"{len(workload.messages)} updates"
        )

    stats = encoder.stats
    avg_pr = average_log_likelihood(decoded[-1].mixture, workload.holdout)
    bytes_per_record = stats.bytes_encoded / workload.records
    return {
        # `best`/`trimmed` carry bytes/record so compare_benchmarks can
        # gate this report exactly like a timing report (smaller is
        # better, deterministic, no calibration needed).
        "best": bytes_per_record,
        "trimmed": bytes_per_record,
        "value": float(stats.bytes_encoded),
        "bytes_per_record": bytes_per_record,
        "bytes_total": stats.bytes_encoded,
        "messages": stats.messages,
        "records": workload.records,
        "delta_updates": stats.delta_updates,
        "snapshot_updates": stats.snapshot_updates,
        "delta_hit_rate": stats.delta_hit_rate,
        "components_shipped": stats.components_shipped,
        "components_total": stats.components_total,
        "avg_pr": float(avg_pr),
    }


def run_comm_bench(
    seed: int = 0,
    *,
    updates: int = 40,
    records_per_update: int = 250,
    n_components: int = 8,
    dim: int = 8,
    holdout: int = 2000,
    progress=None,
) -> dict[str, object]:
    """Run every cell and assemble the ``BENCH_comm.json`` document."""
    workload = build_workload(
        seed,
        updates=updates,
        records_per_update=records_per_update,
        n_components=n_components,
        dim=dim,
        holdout=holdout,
    )
    scenarios: dict[str, dict[str, object]] = {}
    for cell in COMM_CELLS:
        if progress is not None:
            progress(f"running {cell.name} ...")
        scenarios[cell.name] = run_cell(cell, workload)
    reference = scenarios[REFERENCE_CELL]
    for entry in scenarios.values():
        entry["avg_pr_loss"] = float(reference["avg_pr"]) - float(
            entry["avg_pr"]
        )
        entry["reduction_vs_cds1"] = float(reference["bytes_per_record"]) / float(
            entry["bytes_per_record"]
        )
    return {
        "schema": SCHEMA,
        "suite": "comm",
        "config": {
            "seed": seed,
            "updates": updates,
            "records_per_update": records_per_update,
            "n_components": n_components,
            "dim": dim,
            "holdout": holdout,
        },
        "machine": machine_info(),
        "commit": git_commit(),
        "scenarios": scenarios,
    }


def format_comm_report(doc: Mapping) -> str:
    """Human-readable Pareto table of a comm report document."""
    config = doc.get("config", {})
    scenarios = doc.get("scenarios", {})
    lines = [
        "suite 'comm': {n} codec cells, {u} updates x {r} records "
        "(K={k}, d={d}, seed {s})".format(
            n=len(scenarios),
            u=config.get("updates", "?"),
            r=config.get("records_per_update", "?"),
            k=config.get("n_components", "?"),
            d=config.get("dim", "?"),
            s=config.get("seed", "?"),
        )
    ]
    width = max((len(name) for name in scenarios), default=0)
    header = (
        f"  {'cell':<{width}}  {'bytes/rec':>9}  {'vs cds1':>8}  "
        f"{'Δ-hit':>6}  {'AvgPr loss':>11}"
    )
    lines.append(header)
    for name, entry in scenarios.items():
        hit = entry.get("delta_hit_rate", 0.0)
        lines.append(
            f"  {name:<{width}}  "
            f"{float(entry['bytes_per_record']):9.2f}  "
            f"{float(entry.get('reduction_vs_cds1', 1.0)):7.2f}x  "
            f"{float(hit) * 100:5.0f}%  "
            f"{float(entry.get('avg_pr_loss', 0.0)):11.6f}"
        )
    return "\n".join(lines)
