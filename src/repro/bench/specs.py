"""Seeded benchmark workloads.

Every workload here is a pure function of an integer seed: two calls
with the same seed produce bit-identical arrays and models.  The bench
runner relies on that to make every scenario deterministic -- the
*timings* vary with machine load, but the work performed (and the
checksum each scenario reports) never does, which is what lets two
``BENCH_*.json`` files from different commits be compared at all.
"""

from __future__ import annotations

import numpy as np

from repro.core.gaussian import Gaussian
from repro.core.mixture import GaussianMixture
from repro.streams.synthetic import random_mixture

__all__ = [
    "checksum",
    "make_chunk",
    "make_mixture",
    "make_streams",
    "rebuild_mixture",
]


def make_mixture(
    seed: int,
    dim: int = 4,
    n_components: int = 5,
    separation: float = 3.0,
) -> GaussianMixture:
    """A random, well-separated mixture, reproducible from ``seed``."""
    rng = np.random.default_rng(seed)
    return random_mixture(
        dim=dim, n_components=n_components, rng=rng, separation=separation
    )


def make_chunk(
    seed: int,
    n: int,
    dim: int = 4,
    n_components: int = 5,
) -> np.ndarray:
    """``n`` records sampled from :func:`make_mixture`'s model."""
    rng = np.random.default_rng(seed)
    mixture = random_mixture(dim=dim, n_components=n_components, rng=rng)
    points, _ = mixture.sample(n, rng)
    return points


def make_streams(
    seed: int,
    n_sites: int,
    records_per_site: int,
    dim: int = 4,
    n_components: int = 3,
) -> dict[int, list[np.ndarray]]:
    """Per-site record lists for the end-to-end runtime scenarios.

    Each site draws from its own seeded mixture, so sites disagree (the
    coordinator has merging work to do) while the whole workload stays
    a function of ``seed``.
    """
    return {
        site_id: list(
            make_chunk(
                seed * 1000 + site_id,
                records_per_site,
                dim=dim,
                n_components=n_components,
            )
        )
        for site_id in range(n_sites)
    }


def rebuild_mixture(mixture: GaussianMixture) -> GaussianMixture:
    """A fresh copy of ``mixture`` with *no* cached factorisations.

    Reconstructing every :class:`Gaussian` from its raw ``(μ, Σ)``
    re-runs the Cholesky factorisation and drops the lazy ``L⁻¹`` /
    batched-kernel caches -- the "cold" side of the cached-vs-cold
    chunk-test scenario pair.
    """
    return GaussianMixture(
        np.array(mixture.weights),
        tuple(
            Gaussian(
                np.array(component.mean),
                np.array(component.covariance),
                diagonal=component.diagonal,
            )
            for component in mixture.components
        ),
    )


def checksum(values: np.ndarray | float) -> float:
    """A stable scalar fingerprint of a scenario's numeric output."""
    arr = np.asarray(values, dtype=float)
    finite = np.where(np.isfinite(arr), arr, 0.0)
    return float(np.sum(finite))
