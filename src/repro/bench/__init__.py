"""repro.bench: the measured performance baseline.

A reproducible benchmark subsystem for the CluDistream reproduction:

* :mod:`repro.bench.specs` -- seeded workload builders (same seed,
  same bits);
* :mod:`repro.bench.scenarios` -- the registry of hot-path scenarios,
  including optimised/legacy pairs that measure each vectorised kernel
  against the implementation it replaced;
* :mod:`repro.bench.runner` -- the warmup/repeat/trimmed-stats runner
  (timing via the :mod:`repro.obs` profiling timers) and the
  ``BENCH_<name>.json`` report format;
* :mod:`repro.bench.compare` -- the calibration-normalised regression
  comparator CI runs against the checked-in baseline;
* :mod:`repro.bench.comm` -- the wire-efficiency family
  (``repro bench --suite comm``): deterministic bytes/record and
  holdout-AvgPr measurements per codec cell, stamped into
  ``BENCH_comm.json``.

Command-line entry point: ``repro bench`` (see ``repro bench --help``);
:func:`run_bench` is the same thing as a library call.

See ``DESIGN.md`` section 10 for the measurement methodology and the
public-API/deprecation policy this subsystem is part of.
"""

from __future__ import annotations

from typing import Iterable

from repro.bench.comm import (
    COMM_CELLS,
    CommCell,
    format_comm_report,
    run_comm_bench,
)
from repro.bench.compare import (
    ComparisonReport,
    ScenarioDelta,
    compare_benchmarks,
)
from repro.bench.runner import (
    BenchConfig,
    BenchReport,
    BenchRunner,
    ScenarioResult,
    load_report,
    trimmed_mean,
)
from repro.bench.scenarios import (
    SCENARIOS,
    SUITES,
    Scenario,
    get_scenario,
    suite_names,
)

__all__ = [
    "BenchConfig",
    "BenchReport",
    "BenchRunner",
    "COMM_CELLS",
    "CommCell",
    "ComparisonReport",
    "SCENARIOS",
    "SUITES",
    "Scenario",
    "ScenarioDelta",
    "ScenarioResult",
    "compare_benchmarks",
    "format_comm_report",
    "get_scenario",
    "load_report",
    "run_bench",
    "run_comm_bench",
    "suite_names",
    "trimmed_mean",
]


def run_bench(
    suite: str = "core",
    scenarios: Iterable[str] | None = None,
    config: BenchConfig | None = None,
    progress=None,
) -> BenchReport:
    """Run a suite (or an explicit scenario list) and return the report.

    The one-call library equivalent of ``repro bench``: pick scenarios,
    run them under the warmup/repeat/trim protocol, get a
    :class:`BenchReport` ready for ``write_json``.
    """
    names = tuple(scenarios) if scenarios is not None else suite_names(suite)
    runner = BenchRunner(config=config)
    return runner.run(names, suite=suite, progress=progress)
