"""Wall-clock processing-time measurement (Figures 8-9, 11-14).

The paper times its C++ implementation on a 2.4 GHz Pentium 4; absolute
numbers are incomparable, but the *shapes* -- linear growth in updates,
``K`` and ``d``; the U-curve over ``ε``; the ``c_max`` sweet spot; the
``P_d`` blow-up -- are properties of the algorithm, and those are what
:func:`measure_throughput` feeds into the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

__all__ = ["ThroughputResult", "measure_throughput"]


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one timing run.

    Attributes
    ----------
    records:
        Records processed.
    seconds:
        Wall-clock time spent inside the consumer.
    """

    records: int
    seconds: float

    @property
    def records_per_second(self) -> float:
        """Throughput; ``inf`` for (unrealistically) instant runs."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.records / self.seconds

    @property
    def seconds_per_1k_updates(self) -> float:
        """The paper's favoured unit: time per 1000 updates."""
        if self.records == 0:
            raise ValueError("no records were processed")
        return self.seconds * 1000.0 / self.records


def measure_throughput(
    consume: Callable[[np.ndarray], object],
    records: Iterable[np.ndarray],
    max_records: int,
    warmup: int = 0,
) -> ThroughputResult:
    """Time ``consume`` over ``max_records`` records of a stream.

    Parameters
    ----------
    consume:
        Per-record processing function (e.g.
        ``site.process_record``); its return value is ignored.
    records:
        The record source.
    max_records:
        Records to time.
    warmup:
        Records fed (and not timed) before measurement starts, letting
        the model get past its cold-start clustering.

    Notes
    -----
    Generation cost is excluded: the timed loop runs over a
    pre-materialised list, so only the consumer is measured.
    """
    if max_records < 1:
        raise ValueError("max_records must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    iterator: Iterator[np.ndarray] = iter(records)
    for _ in range(warmup):
        record = next(iterator, None)
        if record is None:
            raise ValueError("stream exhausted during warmup")
        consume(record)
    batch = []
    for _ in range(max_records):
        record = next(iterator, None)
        if record is None:
            break
        batch.append(record)
    if not batch:
        raise ValueError("stream exhausted before measurement")
    start = time.perf_counter()
    for record in batch:
        consume(record)
    elapsed = time.perf_counter() - start
    return ThroughputResult(records=len(batch), seconds=elapsed)
