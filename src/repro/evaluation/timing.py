"""Wall-clock processing-time measurement (Figures 8-9, 11-14).

The paper times its C++ implementation on a 2.4 GHz Pentium 4; absolute
numbers are incomparable, but the *shapes* -- linear growth in updates,
``K`` and ``d``; the U-curve over ``ε``; the ``c_max`` sweet spot; the
``P_d`` blow-up -- are properties of the algorithm, and those are what
:func:`measure_throughput` feeds into the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.obs.observer import Observer, ensure_observer

__all__ = ["MIN_MEASURABLE_SECONDS", "ThroughputResult", "measure_throughput"]

#: Floor applied to measured durations.  ``time.perf_counter`` resolves
#: far finer than this, so a run at the floor was genuinely too small to
#: time -- it is clamped (and flagged) rather than reported as zero,
#: keeping every derived rate finite and benchmark JSON serialisable.
MIN_MEASURABLE_SECONDS = 1e-9


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one timing run.

    Attributes
    ----------
    records:
        Records processed.
    seconds:
        Wall-clock time spent inside the consumer, floored at
        :data:`MIN_MEASURABLE_SECONDS`.
    clamped:
        ``True`` when the raw measurement fell below the floor -- the
        run was too short to time; scale up ``max_records`` before
        trusting the rate.
    """

    records: int
    seconds: float
    clamped: bool = False

    @property
    def records_per_second(self) -> float:
        """Throughput; always finite (sub-resolution runs are clamped)."""
        return self.records / max(self.seconds, MIN_MEASURABLE_SECONDS)

    @property
    def seconds_per_1k_updates(self) -> float:
        """The paper's favoured unit: time per 1000 updates."""
        if self.records == 0:
            raise ValueError("no records were processed")
        return self.seconds * 1000.0 / self.records


def measure_throughput(
    consume: Callable[[np.ndarray], object],
    records: Iterable[np.ndarray],
    max_records: int,
    warmup: int = 0,
    observer: Observer | None = None,
) -> ThroughputResult:
    """Time ``consume`` over ``max_records`` records of a stream.

    Parameters
    ----------
    consume:
        Per-record processing function (e.g.
        ``site.process_record``); its return value is ignored.
    records:
        The record source.
    max_records:
        Records to time.
    warmup:
        Records fed (and not timed) before measurement starts, letting
        the model get past its cold-start clustering.
    observer:
        Optional :class:`~repro.obs.observer.Observer`: the timed batch
        lands in the ``profile.throughput_run`` histogram and one
        ``bench.throughput`` trace event.

    Notes
    -----
    Generation cost is excluded: the timed loop runs over a
    pre-materialised list, so only the consumer is measured.
    """
    if max_records < 1:
        raise ValueError("max_records must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    iterator: Iterator[np.ndarray] = iter(records)
    for _ in range(warmup):
        record = next(iterator, None)
        if record is None:
            raise ValueError("stream exhausted during warmup")
        consume(record)
    batch = []
    for _ in range(max_records):
        record = next(iterator, None)
        if record is None:
            break
        batch.append(record)
    if not batch:
        raise ValueError("stream exhausted before measurement")
    start = time.perf_counter()
    for record in batch:
        consume(record)
    elapsed = time.perf_counter() - start
    clamped = elapsed < MIN_MEASURABLE_SECONDS
    result = ThroughputResult(
        records=len(batch),
        seconds=max(elapsed, MIN_MEASURABLE_SECONDS),
        clamped=clamped,
    )
    obs = ensure_observer(observer)
    if obs.enabled:
        obs.observe("profile.throughput_run", result.seconds)
        obs.event(
            "bench.throughput",
            records=result.records,
            seconds=result.seconds,
            records_per_second=result.records_per_second,
            clamped=result.clamped,
        )
    return result
