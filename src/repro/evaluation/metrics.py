"""Cluster-recovery metrics beyond average log likelihood.

Average log likelihood (Definition 1) is the paper's quality measure,
but on *labelled* synthetic data we can also score recovery directly:

* :func:`adjusted_rand_index` -- agreement between predicted hard
  assignments and ground-truth labels, chance-corrected (implemented
  from scratch);
* :func:`matched_mean_error` -- greedy matching of fitted component
  means to true means, reporting the mean Euclidean error;
* :func:`weight_recovery_error` -- total-variation distance between
  matched weight vectors.

These feed the extended test-suite assertions (e.g. "EM recovered the
clusters", not just "likelihood is high").
"""

from __future__ import annotations

import numpy as np

from repro.core.mixture import GaussianMixture

__all__ = [
    "adjusted_rand_index",
    "matched_mean_error",
    "weight_recovery_error",
]


def _comb2(values: np.ndarray) -> float:
    """Elementwise ``n choose 2`` summed."""
    values = values.astype(float)
    return float(np.sum(values * (values - 1.0) / 2.0))


def adjusted_rand_index(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> float:
    """Adjusted Rand index between two flat clusterings.

    1.0 for identical partitions (up to label permutation), ~0 for
    random agreement, negative for worse-than-chance.
    """
    labels_true = np.asarray(labels_true).ravel()
    labels_pred = np.asarray(labels_pred).ravel()
    if labels_true.size != labels_pred.size:
        raise ValueError("label arrays must have equal length")
    if labels_true.size == 0:
        raise ValueError("cannot score empty labelings")
    true_ids, true_inv = np.unique(labels_true, return_inverse=True)
    pred_ids, pred_inv = np.unique(labels_pred, return_inverse=True)
    contingency = np.zeros((true_ids.size, pred_ids.size))
    np.add.at(contingency, (true_inv, pred_inv), 1.0)

    sum_cells = _comb2(contingency.ravel())
    sum_rows = _comb2(contingency.sum(axis=1))
    sum_cols = _comb2(contingency.sum(axis=0))
    total = _comb2(np.array([labels_true.size]))
    expected = sum_rows * sum_cols / total if total > 0 else 0.0
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0  # both partitions trivial (single cluster each)
    return float((sum_cells - expected) / (max_index - expected))


def _greedy_match(
    fitted: GaussianMixture, truth: GaussianMixture
) -> list[tuple[int, int]]:
    """Greedy one-to-one matching of components by mean distance."""
    if fitted.dim != truth.dim:
        raise ValueError("mixtures have different dimensions")
    pairs = []
    for i in range(fitted.n_components):
        for j in range(truth.n_components):
            distance = float(
                np.linalg.norm(
                    fitted.components[i].mean - truth.components[j].mean
                )
            )
            pairs.append((distance, i, j))
    pairs.sort()
    used_fitted: set[int] = set()
    used_truth: set[int] = set()
    matching = []
    for distance, i, j in pairs:
        if i in used_fitted or j in used_truth:
            continue
        matching.append((i, j))
        used_fitted.add(i)
        used_truth.add(j)
    return matching


def matched_mean_error(
    fitted: GaussianMixture, truth: GaussianMixture
) -> float:
    """Mean Euclidean distance between greedily matched component means.

    Only the ``min(K_fitted, K_true)`` matched pairs are scored;
    surplus components on either side are ignored (use the component
    counts to penalise them separately if needed).
    """
    matching = _greedy_match(fitted, truth)
    if not matching:
        raise ValueError("no components to match")
    distances = [
        float(
            np.linalg.norm(
                fitted.components[i].mean - truth.components[j].mean
            )
        )
        for i, j in matching
    ]
    return float(np.mean(distances))


def weight_recovery_error(
    fitted: GaussianMixture, truth: GaussianMixture
) -> float:
    """Total-variation distance between matched weight vectors.

    Unmatched components contribute their whole weight, so a fit with a
    spurious heavy component scores badly even if matched weights
    agree.
    """
    matching = _greedy_match(fitted, truth)
    error = 0.0
    matched_fitted = {i for i, _ in matching}
    matched_truth = {j for _, j in matching}
    for i, j in matching:
        error += abs(float(fitted.weights[i]) - float(truth.weights[j]))
    for i in range(fitted.n_components):
        if i not in matched_fitted:
            error += float(fitted.weights[i])
    for j in range(truth.n_components):
        if j not in matched_truth:
            error += float(truth.weights[j])
    return error / 2.0
