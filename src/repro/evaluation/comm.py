"""Communication-cost comparison (Figure 2) and delivery accounting.

Runs the event-driven CluDistream sites and the periodic-reporting
baseline over the *same* per-site record sequences and compares total
uplink bytes, exposing the cumulative-cost series both for plotting and
for the shape assertions in the benchmark (CluDistream's curve must
flatten once the sites have learned their distributions; the periodic
baseline keeps climbing linearly forever).

:func:`delivery_report` extends the accounting to the
:mod:`repro.transport` stack: the paper's ``payload_bytes()`` meter
counts *application* bytes, while a fault-tolerant link additionally
pays for envelopes, retransmissions, acks and heartbeats --
:class:`DeliveryReport` makes that overhead explicit.  Its counters
follow the unified model of
:class:`~repro.runtime.accounting.DeliveryAccounting` (``messages_sent``
is *attempted*, ``messages_delivered`` is unique deliveries,
``payload_bytes ≤ wire_bytes``); :attr:`DeliveryReport.accounting`
converts a report into that shared shape so transport runs and
runtime-channel runs meter identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.baselines.periodic import PeriodicReporter, PeriodicReporterConfig
from repro.core.remote import RemoteSite, RemoteSiteConfig

__all__ = [
    "CommunicationComparison",
    "DeliveryReport",
    "compare_communication",
    "delivery_report",
]


@dataclass(frozen=True)
class CommunicationComparison:
    """Totals and cumulative series of one communication comparison.

    Attributes
    ----------
    cludistream_bytes / periodic_bytes:
        Total uplink bytes of each strategy.
    cludistream_series / periodic_series:
        Cumulative bytes sampled every ``sample_every`` records
        (parallel to :attr:`positions`).
    positions:
        Stream positions (records per site) of the samples.
    """

    cludistream_bytes: int
    periodic_bytes: int
    cludistream_series: tuple[int, ...]
    periodic_series: tuple[int, ...]
    positions: tuple[int, ...]

    @property
    def ratio(self) -> float:
        """Periodic bytes over CluDistream bytes (> 1 means we win)."""
        if self.cludistream_bytes == 0:
            return float("inf")
        return self.periodic_bytes / self.cludistream_bytes


def compare_communication(
    make_streams: Callable[[int], Mapping[int, Sequence[np.ndarray]]],
    n_sites: int,
    records_per_site: int,
    site_config: RemoteSiteConfig | None = None,
    periodic_config: PeriodicReporterConfig | None = None,
    sample_every: int = 2000,
    seed: int = 0,
) -> CommunicationComparison:
    """Run both strategies over identical streams and compare bytes.

    Parameters
    ----------
    make_streams:
        Factory called once per strategy with a seed; must return
        ``site_id -> record sequence`` with *identical contents* for
        equal seeds (materialise the records, or use seeded
        generators).
    n_sites / records_per_site:
        Workload size.
    site_config / periodic_config:
        Strategy parameters.
    sample_every:
        Sampling stride of the cumulative series, in records per site.
    seed:
        Passed to ``make_streams`` (same value for both strategies).
    """
    if records_per_site < 1:
        raise ValueError("records_per_site must be positive")
    site_config = site_config or RemoteSiteConfig()
    periodic_config = periodic_config or PeriodicReporterConfig()

    positions = list(range(sample_every, records_per_site + 1, sample_every))

    # --- CluDistream sites -------------------------------------------
    streams = make_streams(seed)
    sites = [
        RemoteSite(i, site_config, rng=np.random.default_rng(seed + i))
        for i in range(n_sites)
    ]
    clu_series = _drive(
        consumers=[site.process_record for site in sites],
        byte_counters=[lambda s=site: s.stats.bytes_sent for site in sites],
        streams=streams,
        records_per_site=records_per_site,
        positions=positions,
    )

    # --- Periodic reporting ------------------------------------------
    streams = make_streams(seed)
    dim = site_config.dim
    reporters = [
        PeriodicReporter(
            i, dim, periodic_config, rng=np.random.default_rng(seed + i)
        )
        for i in range(n_sites)
    ]
    periodic_series = _drive(
        consumers=[reporter.process_record for reporter in reporters],
        byte_counters=[lambda r=reporter: r.bytes_sent for reporter in reporters],
        streams=streams,
        records_per_site=records_per_site,
        positions=positions,
    )

    return CommunicationComparison(
        cludistream_bytes=clu_series[-1] if clu_series else 0,
        periodic_bytes=periodic_series[-1] if periodic_series else 0,
        cludistream_series=tuple(clu_series),
        periodic_series=tuple(periodic_series),
        positions=tuple(positions),
    )


@dataclass(frozen=True)
class DeliveryReport:
    """End-to-end delivery accounting of one transport run.

    Attributes
    ----------
    messages_sent / messages_delivered:
        Unique application messages emitted by sites / applied at the
        coordinator (equal after a full drain -- exactly-once held).
    payload_bytes:
        Application bytes (the paper's ``payload_bytes()`` accounting).
    wire_bytes:
        Uplink bytes actually offered to the wire: envelopes,
        retransmissions, heartbeats and DONE markers included.
    ack_bytes:
        Downlink bytes spent on acknowledgements.
    retransmissions / duplicates_suppressed / out_of_order_buffered:
        What the reliability layer had to do to deliver exactly once.
    max_reorder_depth:
        High-water mark of any single site's reorder buffer -- how far
        out of order the link actually got.
    heartbeats:
        Liveness beacons sent by sites.
    expired:
        Payloads abandoned after ``max_attempts`` transmissions (always
        zero with the default retry-forever configuration).
    """

    messages_sent: int
    messages_delivered: int
    payload_bytes: int
    wire_bytes: int
    ack_bytes: int
    retransmissions: int
    duplicates_suppressed: int
    out_of_order_buffered: int
    max_reorder_depth: int
    heartbeats: int
    expired: int

    @property
    def accounting(self):
        """This report in the unified :class:`DeliveryAccounting` shape.

        ``messages_sent`` maps to ``attempted`` (each payload is counted
        once however many times it is retransmitted -- retransmitted
        *bytes* land in ``wire_bytes``) and ``messages_delivered`` to
        ``delivered``.  Link-level faults are not visible from endpoint
        statistics, so ``dropped`` / ``duplicated`` / ``reordered`` stay
        zero here; :meth:`repro.runtime.TransportChannel.accounting`
        fills them in from the fault injector when one is attached.
        """
        from repro.runtime.accounting import DeliveryAccounting

        return DeliveryAccounting(
            attempted=self.messages_sent,
            delivered=self.messages_delivered,
            payload_bytes=self.payload_bytes,
            wire_bytes=self.wire_bytes,
            ack_bytes=self.ack_bytes,
            retransmissions=self.retransmissions,
            duplicates_suppressed=self.duplicates_suppressed,
        )

    @property
    def overhead_ratio(self) -> float:
        """Uplink wire bytes per application payload byte (≥ 1)."""
        return self.accounting.overhead_ratio

    @property
    def delivered_exactly_once(self) -> bool:
        """Every emitted message was applied exactly once."""
        return self.accounting.delivered_exactly_once


def delivery_report(site_endpoints, coordinator_endpoint) -> DeliveryReport:
    """Aggregate sender/receiver statistics into one report.

    Parameters
    ----------
    site_endpoints:
        Iterable of :class:`~repro.transport.endpoint.SiteEndpoint`.
    coordinator_endpoint:
        The matching :class:`~repro.transport.endpoint.CoordinatorEndpoint`.
    """
    senders = [endpoint.sender.stats for endpoint in site_endpoints]
    receiver = coordinator_endpoint.receiver.stats
    return DeliveryReport(
        messages_sent=sum(s.payloads_sent for s in senders),
        messages_delivered=receiver.delivered,
        payload_bytes=sum(s.payload_bytes for s in senders),
        wire_bytes=sum(s.wire_bytes for s in senders),
        ack_bytes=receiver.ack_wire_bytes,
        retransmissions=sum(s.retransmissions for s in senders),
        duplicates_suppressed=receiver.duplicates_suppressed,
        out_of_order_buffered=receiver.buffered_out_of_order,
        max_reorder_depth=receiver.max_reorder_depth,
        heartbeats=sum(s.heartbeats_sent for s in senders),
        expired=sum(s.expired for s in senders),
    )


def _drive(
    consumers: Sequence[Callable[[np.ndarray], object]],
    byte_counters: Sequence[Callable[[], int]],
    streams: Mapping[int, Sequence[np.ndarray]],
    records_per_site: int,
    positions: Sequence[int],
) -> list[int]:
    """Feed all sites in lockstep, sampling total bytes at ``positions``."""
    iterators = {site_id: iter(stream) for site_id, stream in streams.items()}
    series: list[int] = []
    next_sample = 0
    for step in range(1, records_per_site + 1):
        for site_id, iterator in iterators.items():
            record = next(iterator, None)
            if record is not None:
                consumers[site_id](record)
        if next_sample < len(positions) and step == positions[next_sample]:
            series.append(sum(counter() for counter in byte_counters))
            next_sample += 1
    return series
