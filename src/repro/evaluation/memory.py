"""Memory accounting (Theorem 3).

Theorem 3 bounds the per-site memory of CluDistream by::

    O( -2 d ln(δ(2-δ)) / ε  +  B K (d² + d + 1) )

-- one chunk-sized record buffer plus the parameters of the ``B``
mixtures the evolving stream has produced.  This module turns the bound
into concrete byte counts so the Figure 10 benchmarks can compare the
theoretical envelope against the measured
:meth:`~repro.core.remote.RemoteSite.memory_bytes`.
"""

from __future__ import annotations

from repro.core.chunking import chunk_size

__all__ = ["predicted_site_memory_bytes", "mixture_parameter_count"]

#: Bytes per stored scalar (doubles, as in the payload accounting).
BYTES_PER_FLOAT = 8


def mixture_parameter_count(
    n_components: int, dim: int, diagonal: bool = False
) -> int:
    """Parameters of one ``K``-component mixture: ``K (d² + d + 1)``.

    For diagonal Gaussians the covariance takes ``d`` values, giving
    ``K (2d + 1)`` -- the variant Theorem 3 mentions parenthetically.
    """
    if n_components < 1 or dim < 1:
        raise ValueError("n_components and dim must be positive")
    cov_params = dim if diagonal else dim * dim
    return n_components * (cov_params + dim + 1)


def predicted_site_memory_bytes(
    dim: int,
    epsilon: float,
    delta: float,
    n_components: int,
    n_distributions: int,
    diagonal: bool = False,
) -> int:
    """Theorem 3's memory bound in bytes.

    Parameters
    ----------
    dim / epsilon / delta:
        The chunk-size parameters (buffer of ``M`` ``d``-dim records).
    n_components:
        Mixture size ``K``.
    n_distributions:
        ``B``, the number of distinct distributions the stream has
        exhibited (models stored in the model list).
    diagonal:
        Use the diagonal-covariance parameter count.
    """
    if n_distributions < 0:
        raise ValueError("n_distributions must be non-negative")
    buffer_scalars = chunk_size(dim, epsilon, delta) * dim
    model_scalars = n_distributions * mixture_parameter_count(
        n_components, dim, diagonal
    )
    return BYTES_PER_FLOAT * (buffer_scalars + model_scalars)
