"""Cluster-quality evaluation by average log likelihood.

"The cluster quality is evaluated by the average log likelihood of the
result model" (section 6); "we run each algorithm five times and compute
their average" (section 6.2).  This module provides those measurements
as reusable functions plus a small :class:`QualitySeries` container for
the quality-over-time plots of Figures 5-7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.mixture import GaussianMixture

__all__ = ["QualitySeries", "averaged_quality", "holdout_quality"]


def holdout_quality(mixture: GaussianMixture, holdout: np.ndarray) -> float:
    """Average log likelihood of ``holdout`` under ``mixture``.

    Exactly Definition 1, evaluated on data the model did not train on
    (the generator can always produce a fresh horizon from the same
    ground-truth distribution).
    """
    return mixture.average_log_likelihood(holdout)


def averaged_quality(
    run: Callable[[int], float],
    n_runs: int = 5,
) -> tuple[float, float]:
    """Repeat an experiment and average its quality, paper style.

    Parameters
    ----------
    run:
        Callable mapping a run index (use it to derive the seed) to one
        quality number.
    n_runs:
        Number of repetitions (the paper uses five).

    Returns
    -------
    tuple[float, float]
        ``(mean, standard deviation)`` across runs.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be at least 1")
    values = np.array([run(i) for i in range(n_runs)], dtype=float)
    return float(values.mean()), float(values.std())


@dataclass
class QualitySeries:
    """Quality measured at successive stream positions, per algorithm.

    The container behind the Figure 5-7 plots: call :meth:`record` as
    the stream advances, then :meth:`series` per algorithm.
    """

    _points: dict[str, list[tuple[int, float]]] = field(default_factory=dict)

    def record(self, algorithm: str, position: int, quality: float) -> None:
        """Store one measurement for ``algorithm`` at stream ``position``."""
        if not np.isfinite(quality):
            raise ValueError("quality must be finite")
        self._points.setdefault(algorithm, []).append((position, quality))

    @property
    def algorithms(self) -> tuple[str, ...]:
        return tuple(self._points)

    def series(self, algorithm: str) -> tuple[list[int], list[float]]:
        """``(positions, qualities)`` for one algorithm, in record order."""
        points = self._points.get(algorithm)
        if not points:
            raise KeyError(f"no measurements recorded for {algorithm!r}")
        return [p for p, _ in points], [q for _, q in points]

    def mean_quality(self, algorithm: str) -> float:
        """Average quality across the series (a scalar figure summary)."""
        _, qualities = self.series(algorithm)
        return float(np.mean(qualities))

    def wins(self, better: str, worse: str) -> float:
        """Fraction of positions where ``better`` beats ``worse``.

        Only positions measured for both algorithms count.
        """
        a = dict(zip(*self.series(better)))
        b = dict(zip(*self.series(worse)))
        shared = sorted(set(a) & set(b))
        if not shared:
            raise ValueError("the two series share no positions")
        return float(
            np.mean([a[position] > b[position] for position in shared])
        )

    def rows(self) -> Sequence[tuple[str, int, float]]:
        """Flat ``(algorithm, position, quality)`` rows for printing."""
        return tuple(
            (algorithm, position, quality)
            for algorithm, points in self._points.items()
            for position, quality in points
        )
