"""Evaluation harness shared by tests, examples and benchmarks.

* :mod:`repro.evaluation.quality` -- average-log-likelihood cluster
  quality (Definition 1), horizon/landmark quality series, repeated-run
  averaging (the paper averages five runs);
* :mod:`repro.evaluation.memory` -- Theorem 3 memory accounting,
  predicted versus measured;
* :mod:`repro.evaluation.timing` -- wall-clock processing-time
  measurement for the scalability figures;
* :mod:`repro.evaluation.comm` -- communication-cost comparisons
  (Figure 2).
"""

from repro.evaluation.comm import (
    CommunicationComparison,
    DeliveryReport,
    compare_communication,
    delivery_report,
)
from repro.evaluation.memory import predicted_site_memory_bytes
from repro.evaluation.metrics import (
    adjusted_rand_index,
    matched_mean_error,
    weight_recovery_error,
)
from repro.evaluation.quality import (
    QualitySeries,
    averaged_quality,
    holdout_quality,
)
from repro.evaluation.timing import ThroughputResult, measure_throughput

__all__ = [
    "CommunicationComparison",
    "DeliveryReport",
    "QualitySeries",
    "adjusted_rand_index",
    "ThroughputResult",
    "averaged_quality",
    "compare_communication",
    "delivery_report",
    "holdout_quality",
    "matched_mean_error",
    "measure_throughput",
    "predicted_site_memory_bytes",
    "weight_recovery_error",
]
