"""Markdown report generation for experiment results.

The benchmark harness prints figures to stdout; this module renders the
same kind of data as a self-contained Markdown report -- tables, ASCII
series and a verdict line per experiment -- so a run can be archived or
attached to a ticket.  ``cludistream report`` uses it to produce a
quick reproduction summary without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

__all__ = ["ExperimentReport", "ReportSection", "ascii_series"]


def ascii_series(
    values: Sequence[float], width: int = 32, height_chars: str = " .:-=+*#%@"
) -> str:
    """One-line ASCII sparkline of a numeric series."""
    if not values:
        raise ValueError("cannot sparkline an empty series")
    lows = min(values)
    span = max(values) - lows
    if span <= 0.0:
        return height_chars[-1] * min(len(values), width)
    # Resample to the target width.
    n = len(values)
    picks = [
        values[min(n - 1, round(i * (n - 1) / max(width - 1, 1)))]
        for i in range(min(width, n))
    ]
    levels = len(height_chars) - 1
    return "".join(
        height_chars[1 + round((value - lows) / span * (levels - 1))]
        for value in picks
    )


@dataclass
class ReportSection:
    """One experiment's worth of report content."""

    title: str
    lines: list[str] = field(default_factory=list)

    def add_text(self, text: str) -> None:
        """Append a paragraph."""
        self.lines.append(text)
        self.lines.append("")

    def add_table(
        self, headers: Sequence[str], rows: Sequence[Sequence[object]]
    ) -> None:
        """Append a Markdown table."""
        if not headers:
            raise ValueError("a table needs headers")
        widths = [len(str(h)) for h in headers]
        rendered_rows = []
        for row in rows:
            if len(row) != len(headers):
                raise ValueError("row width does not match headers")
            cells = [
                f"{cell:.4g}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
            rendered_rows.append(cells)
        header_line = "| " + " | ".join(
            str(h).ljust(w) for h, w in zip(headers, widths)
        ) + " |"
        divider = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        self.lines.append(header_line)
        self.lines.append(divider)
        for cells in rendered_rows:
            self.lines.append(
                "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
            )
        self.lines.append("")

    def add_series(self, label: str, values: Sequence[float]) -> None:
        """Append a labelled sparkline with endpoints."""
        spark = ascii_series(values)
        self.lines.append(
            f"- {label}: `{spark}`  ({values[0]:.4g} → {values[-1]:.4g})"
        )

    def add_verdict(self, passed: bool, claim: str) -> None:
        """Append a ✅/❌ verdict line."""
        marker = "✅" if passed else "❌"
        self.lines.append(f"**{marker} {claim}**")
        self.lines.append("")


class ExperimentReport:
    """A whole report: titled sections rendered to Markdown."""

    def __init__(self, title: str) -> None:
        if not title:
            raise ValueError("report needs a title")
        self.title = title
        self._sections: list[ReportSection] = []

    def section(self, title: str) -> ReportSection:
        """Open (and register) a new section."""
        section = ReportSection(title=title)
        self._sections.append(section)
        return section

    @property
    def sections(self) -> tuple[ReportSection, ...]:
        return tuple(self._sections)

    def render(self) -> str:
        """The full Markdown document."""
        parts = [f"# {self.title}", ""]
        for section in self._sections:
            parts.append(f"## {section.title}")
            parts.append("")
            parts.extend(section.lines)
        return "\n".join(parts).rstrip() + "\n"

    def write(self, path: str | Path) -> Path:
        """Render to a file; returns the path."""
        path = Path(path)
        path.write_text(self.render())
        return path
