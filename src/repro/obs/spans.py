"""Causal spans: Dapper-style tracing for a distributed clustering run.

A *span* is one timed operation -- a site's chunk test, an EM fit, the
coordinator applying a synopsis, a merge or a split -- identified by a
``(trace_id, span_id)`` pair and causally linked to its parent through
``parent_id``.  The trace id is minted by the root span (in CluDistream
that is almost always a site-side chunk-test span) and *propagated*
with every synopsis the site emits: in process via the observer's
active-span stack, across the discrete-event network via captured
contexts, and across real transports inside the TPT1 envelope header
(see :mod:`repro.transport.framing`), so a coordinator-side
merge/split/update span on another machine still carries the trace id
of the chunk test that caused it.

Spans ride the existing trace stream: a finished span is emitted as one
``span`` :class:`~repro.obs.trace.TraceEvent`, which keeps every sink,
``repro stats`` and the byte-identical determinism guarantees working
unchanged.  Span ids are deterministic (a per-tracer counter under a
configurable origin prefix), so two seeded runs emit byte-identical
span streams.

The consumer half: :func:`spans_from_events` parses span events back
into :class:`SpanRecord` objects and :func:`to_chrome_trace` exports
them in the Chrome trace-event format (Perfetto / ``chrome://tracing``
compatible), with per-process track names and flow arrows for
cross-process parent links.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from collections import deque

from repro.obs.trace import TraceEvent, TraceSink

__all__ = [
    "SPAN_CONTEXT_BYTES",
    "Span",
    "SpanCollector",
    "SpanContext",
    "SpanRecord",
    "SpanTracer",
    "decode_span_context",
    "encode_span_context",
    "spans_from_events",
    "to_chrome_trace",
]

_CONTEXT = struct.Struct("<QQ")

#: Wire size of one encoded span context (trace id + span id).
SPAN_CONTEXT_BYTES = _CONTEXT.size

#: Bits reserved for the per-tracer span counter; the origin prefix
#: occupies the bits above, so two processes with distinct origins can
#: never mint the same span id.
_COUNTER_BITS = 40
_COUNTER_MASK = (1 << _COUNTER_BITS) - 1


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of a span: ``(trace_id, span_id)``.

    Both ids are unsigned 64-bit integers; the context is what crosses
    process boundaries (16 bytes in a TPT1 envelope header extension).
    """

    trace_id: int
    span_id: int

    def __post_init__(self) -> None:
        for name in ("trace_id", "span_id"):
            value = getattr(self, name)
            if not 0 <= value < 2**64:
                raise ValueError(f"{name} must fit an unsigned 64-bit integer")


def encode_span_context(context: SpanContext) -> bytes:
    """Serialise a context to its fixed 16-byte wire form."""
    return _CONTEXT.pack(context.trace_id, context.span_id)


def decode_span_context(data: bytes) -> SpanContext:
    """Inverse of :func:`encode_span_context`."""
    if len(data) != SPAN_CONTEXT_BYTES:
        raise ValueError(
            f"span context must be exactly {SPAN_CONTEXT_BYTES} bytes, "
            f"got {len(data)}"
        )
    trace_id, span_id = _CONTEXT.unpack(data)
    return SpanContext(trace_id=trace_id, span_id=span_id)


def _hex(value: int) -> str:
    return format(value, "016x")


class Span:
    """One live (not yet emitted) span.

    Mutable while open: :meth:`add_event` appends timestamped span
    events (ARQ retransmissions, checkpoint flushes); the tracer stamps
    ``end``/``status`` and emits the span when it finishes.
    """

    __slots__ = (
        "name",
        "context",
        "parent_id",
        "start",
        "end",
        "status",
        "attributes",
        "events",
    )

    def __init__(
        self,
        name: str,
        context: SpanContext,
        parent_id: int | None,
        start: float,
        attributes: dict,
    ) -> None:
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.start = start
        self.end = start
        self.status = "ok"
        self.attributes = attributes
        self.events: list[dict] = []

    def add_event(self, name: str, time: float, attributes: Mapping | None = None) -> None:
        """Append one timestamped point event to this span."""
        record: dict = {"name": name, "t": time}
        if attributes:
            record.update(attributes)
        self.events.append(record)

    def to_fields(self) -> dict:
        """The JSON-safe payload of the ``span`` trace event."""
        fields: dict = {
            "name": self.name,
            "trace": _hex(self.context.trace_id),
            "span": _hex(self.context.span_id),
            "parent": _hex(self.parent_id) if self.parent_id is not None else None,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.attributes:
            fields["attrs"] = self.attributes
        if self.events:
            fields["events"] = self.events
        return fields


class _SpanScope:
    """Context manager activating one span on the tracer stack."""

    __slots__ = ("_tracer", "_name", "_attributes", "span")

    def __init__(self, tracer: "SpanTracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self._tracer._push(self._name, self._attributes)
        return self.span

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        assert self.span is not None
        self._tracer._pop(self.span, "error" if exc_type is not None else "ok")


class _RemoteScope:
    """Context manager activating a remote parent context."""

    __slots__ = ("_tracer", "_context")

    def __init__(self, tracer: "SpanTracer", context: SpanContext) -> None:
        self._tracer = tracer
        self._context = context

    def __enter__(self) -> SpanContext:
        self._tracer._stack.append(self._context)
        return self._context

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._stack.pop()


class _NullScope:
    """Shared no-op scope (disabled tracer, absent remote context)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_SCOPE = _NullScope()


class SpanTracer:
    """Deterministic span factory with an active-span stack.

    Parameters
    ----------
    emit:
        Callback receiving each finished :class:`Span` (the observer
        turns it into a ``span`` trace event).
    time_source:
        Zero-argument callable stamping span start/end/event times --
        the observer's time source, so deterministic tests stay
        deterministic.
    origin:
        Id-space prefix (24 bits): span ids are
        ``(origin << 40) | counter``.  Give each process of a
        multi-process deployment a distinct origin (the CLI uses
        ``site_id + 1`` for sites, 0 for the coordinator) so span ids
        never collide across processes inside one trace.
    """

    def __init__(
        self,
        emit: Callable[[Span], None],
        time_source: Callable[[], float],
        origin: int = 0,
    ) -> None:
        if origin < 0:
            raise ValueError("origin must be non-negative")
        self._emit = emit
        self._time = time_source
        self._origin_prefix = (origin & 0xFFFFFF) << _COUNTER_BITS
        self._counter = 0
        #: Active entries: open Spans and remote SpanContext sentinels.
        self._stack: list[object] = []

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        self._counter += 1
        return self._origin_prefix | (self._counter & _COUNTER_MASK)

    def current_context(self) -> SpanContext | None:
        """Context of the innermost active span (or remote parent)."""
        if not self._stack:
            return None
        top = self._stack[-1]
        if isinstance(top, Span):
            return top.context
        assert isinstance(top, SpanContext)
        return top

    # ------------------------------------------------------------------
    # Scopes
    # ------------------------------------------------------------------
    def scope(self, name: str, attributes: dict) -> _SpanScope:
        """``with tracer.scope(...)``: start, activate, finish, emit."""
        return _SpanScope(self, name, attributes)

    def remote_scope(self, context: SpanContext | None):
        """Activate a remote parent: spans inside become its children."""
        if context is None:
            return NULL_SCOPE
        return _RemoteScope(self, context)

    def _push(self, name: str, attributes: dict) -> Span:
        span = self._start(name, self.current_context(), attributes)
        self._stack.append(span)
        return span

    def _pop(self, span: Span, status: str) -> None:
        top = self._stack.pop()
        assert top is span, "span scopes must unwind in LIFO order"
        self.finish(span, status)

    # ------------------------------------------------------------------
    # Detached spans (long-lived, e.g. ARQ delivery tracking)
    # ------------------------------------------------------------------
    def start_detached(
        self,
        name: str,
        parent: SpanContext | None = None,
        attributes: dict | None = None,
    ) -> Span:
        """Start a span that does NOT join the active stack.

        Used for operations that outlive the current call frame (a
        payload's delivery lifetime in the ARQ outbox); finish it
        explicitly with :meth:`finish`.
        """
        if parent is None:
            parent = self.current_context()
        return self._start(name, parent, attributes or {})

    def _start(
        self, name: str, parent: SpanContext | None, attributes: dict
    ) -> Span:
        span_id = self._next_id()
        trace_id = parent.trace_id if parent is not None else span_id
        return Span(
            name=name,
            context=SpanContext(trace_id=trace_id, span_id=span_id),
            parent_id=parent.span_id if parent is not None else None,
            start=self._time(),
            attributes=attributes,
        )

    def finish(self, span: Span, status: str = "ok") -> None:
        """Stamp the end time and emit the span."""
        span.end = self._time()
        span.status = status
        self._emit(span)

    def add_event(self, name: str, attributes: dict | None = None) -> None:
        """Attach a point event to the innermost active *span* (if any)."""
        for entry in reversed(self._stack):
            if isinstance(entry, Span):
                entry.add_event(name, self._time(), attributes)
                return

    def event_on(self, span: Span, name: str, attributes: dict | None = None) -> None:
        """Attach a timestamped point event to a specific (detached) span."""
        span.add_event(name, self._time(), attributes)


# ----------------------------------------------------------------------
# Consumer half: parsing and export
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpanRecord:
    """One parsed span (the read-side twin of :class:`Span`)."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    start: float
    end: float
    status: str = "ok"
    attributes: Mapping[str, object] = field(default_factory=dict)
    events: tuple = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    @staticmethod
    def from_event(event: TraceEvent) -> "SpanRecord":
        """Parse one ``span`` trace event."""
        if event.type != "span":
            raise ValueError(f"not a span event: {event.type!r}")
        fields = event.fields
        parent = fields.get("parent")
        return SpanRecord(
            name=str(fields["name"]),
            trace_id=int(str(fields["trace"]), 16),
            span_id=int(str(fields["span"]), 16),
            parent_id=int(str(parent), 16) if parent is not None else None,
            start=float(fields["start"]),
            end=float(fields["end"]),
            status=str(fields.get("status", "ok")),
            attributes=dict(fields.get("attrs", {})),
            events=tuple(fields.get("events", ())),
        )


def spans_from_events(events: Iterable[TraceEvent]) -> list[SpanRecord]:
    """Extract and parse every ``span`` event from a trace stream."""
    return [
        SpanRecord.from_event(event) for event in events if event.type == "span"
    ]


class SpanCollector(TraceSink):
    """Bounded in-memory store of span events for live serving.

    Wire it into an observer (alone or through a
    :class:`~repro.obs.trace.MultiSink`) and the telemetry server's
    ``/spans`` endpoint exports whatever has been collected so far.

    Every collected span event gets a collector-local monotone id
    (1, 2, ...) so consumers can poll incrementally: ``/spans?since=N``
    and the federation flush both use :meth:`events_since` to ship only
    what arrived after the last poll, even as the bounded deque evicts
    old entries.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._events: deque[tuple[int, TraceEvent]] = deque(maxlen=capacity)
        self._next_id = 1

    def write(self, event: TraceEvent) -> None:
        if event.type == "span":
            self._events.append((self._next_id, event))
            self._next_id += 1

    @property
    def last_id(self) -> int:
        """Id of the most recently collected span (0 before any)."""
        return self._next_id - 1

    def spans(self) -> list[SpanRecord]:
        """Parsed snapshot of the collected spans."""
        return spans_from_events(tuple(e for _, e in self._events))

    def events_since(
        self, since: int = 0, limit: int | None = None
    ) -> list[tuple[int, TraceEvent]]:
        """``(id, event)`` pairs with ``id > since``, oldest first.

        ``limit`` caps the page size; the caller continues from the last
        returned id.  Entries evicted by the capacity bound are simply
        gone -- the ids still advance, so a slow poller skips rather
        than stalls.
        """
        page = [(i, e) for i, e in tuple(self._events) if i > since]
        if limit is not None:
            page = page[:limit]
        return page

    def spans_since(
        self, since: int = 0, limit: int | None = None
    ) -> tuple[list[SpanRecord], int]:
        """Parsed spans after ``since`` plus the id to resume from."""
        page = self.events_since(since, limit)
        last = page[-1][0] if page else max(since, 0)
        return spans_from_events([e for _, e in page]), last

    def __len__(self) -> int:
        return len(self._events)


def _process_of(span: SpanRecord) -> tuple[int, str]:
    """Map a span to a (pid, process name) pair for the timeline.

    Coordinator-side spans group under one "coordinator" process, site
    and transport spans under their site's process, everything else
    (runtime lifecycle) under a "runtime" driver process.
    """
    if span.name.startswith("coord."):
        return 0, "coordinator"
    site = span.attributes.get("site")
    if site is not None:
        return int(site) + 1, f"site-{site}"
    return 1_000, "runtime"


def to_chrome_trace(
    spans: Iterable[SpanRecord],
    process_of: Callable[[SpanRecord], tuple[int, str]] | None = None,
) -> dict:
    """Export spans as a Chrome trace-event / Perfetto JSON object.

    Each span becomes one complete (``"ph": "X"``) event whose ``args``
    carry the raw trace/span/parent ids; cross-process parent links are
    additionally materialised as flow arrows (``"ph": "s"``/``"f"``) so
    Perfetto draws the causal edge from a site's chunk-test span to the
    coordinator work it triggered.  Timestamps are microseconds, as the
    format requires.

    ``process_of`` overrides the default span-to-process mapping with a
    ``span -> (pid, process name)`` callable; the cluster federation
    uses it to place every span on the track of the OS process (real
    pid) that recorded it.
    """
    if process_of is None:
        process_of = _process_of
    spans = list(spans)
    by_id = {span.span_id: span for span in spans}
    events: list[dict] = []
    processes: dict[int, str] = {}
    for span in spans:
        pid, process_name = process_of(span)
        processes.setdefault(pid, process_name)
        args: dict = {
            "trace": _hex(span.trace_id),
            "span": _hex(span.span_id),
            "status": span.status,
        }
        if span.parent_id is not None:
            args["parent"] = _hex(span.parent_id)
        args.update(
            {k: v for k, v in span.attributes.items() if k not in args}
        )
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(span.end - span.start, 0.0) * 1e6,
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
        for point in span.events:
            events.append(
                {
                    "name": f"{span.name}/{point.get('name', 'event')}",
                    "ph": "i",
                    "ts": float(point.get("t", span.start)) * 1e6,
                    "pid": pid,
                    "tid": 1,
                    "s": "t",
                    "args": {
                        k: v for k, v in point.items() if k not in ("name", "t")
                    },
                }
            )
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None and process_of(parent)[0] != pid:
            flow_id = span.span_id & 0xFFFFFFFF
            parent_pid, parent_name = process_of(parent)
            processes.setdefault(parent_pid, parent_name)
            events.append(
                {
                    "name": "causal-link",
                    "ph": "s",
                    "id": flow_id,
                    "ts": parent.start * 1e6,
                    "pid": parent_pid,
                    "tid": 1,
                }
            )
            events.append(
                {
                    "name": "causal-link",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": span.start * 1e6,
                    "pid": pid,
                    "tid": 1,
                }
            )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": name},
        }
        for pid, name in sorted(processes.items())
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}
