"""Trace analysis: tail a JSONL trace into a human-readable run summary.

This is the consumer half of the tracing layer: given the typed events
emitted during a run (from a file, a ring buffer, or any iterable), it
reconstructs the counts the paper's figures are built from -- per-site
chunk-test pass/fail, EM runs, reactivations, model archives,
coordinator merge/split decisions, and everything the transport had to
do (sends, retransmissions, heartbeats, duplicate suppressions).

The ``cludistream stats`` CLI subcommand is a thin wrapper over
:func:`summarize_trace` + :func:`format_summary`; the integration suite
uses the same functions to assert that a trace reconstructs exactly the
state the live objects report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Iterable

from repro.obs.history import history_from_events
from repro.obs.metrics import Histogram
from repro.obs.trace import TraceEvent, read_trace

__all__ = [
    "RunSummary",
    "SiteSummary",
    "drift_from_trace",
    "format_drift",
    "format_summary",
    "summarize_events",
    "summarize_trace",
]


#: Duration buckets for span histograms: 10µs .. 10s, log-spaced.
_SPAN_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
)


@dataclass
class SiteSummary:
    """Per-site event counts reconstructed from a trace."""

    chunk_tests_passed: int = 0
    chunk_tests_failed: int = 0
    clusterings: int = 0
    reactivations: int = 0
    archives: int = 0
    expirations: int = 0

    @property
    def chunk_tests(self) -> int:
        return self.chunk_tests_passed + self.chunk_tests_failed


@dataclass
class RunSummary:
    """Everything a trace says about one run.

    ``sites`` maps site id to its :class:`SiteSummary`; the remaining
    attributes are system-wide totals.
    """

    events: int = 0
    sites: dict[int, SiteSummary] = field(default_factory=dict)
    # EM / profiling
    em_fits: int = 0
    em_iterations: int = 0
    # Coordinator
    model_updates: int = 0
    weight_updates: int = 0
    deletions: int = 0
    merges: int = 0
    splits: int = 0
    evictions: int = 0
    # Transport
    sends: int = 0
    retransmissions: int = 0
    heartbeats: int = 0
    delivered: int = 0
    duplicates_suppressed: int = 0
    send_expirations: int = 0
    # Fault injection
    fault_drops: int = 0
    fault_duplicates: int = 0
    fault_reorders: int = 0
    fault_partition_drops: int = 0
    # Runtime lifecycle
    runtime_runs: int = 0
    runtime_records: int = 0
    runtime_checkpoints: int = 0
    runtime_resumes: int = 0
    # Model history (time-travel observability)
    history_snapshots: int = 0
    # Spans (causal tracing)
    span_count: int = 0
    #: Per-span-name duration histograms (seconds).
    span_durations: dict[str, Histogram] = field(default_factory=dict)

    def site(self, site_id: int) -> SiteSummary:
        if site_id not in self.sites:
            self.sites[site_id] = SiteSummary()
        return self.sites[site_id]

    def span_histogram(self, name: str) -> Histogram:
        if name not in self.span_durations:
            self.span_durations[name] = Histogram(_SPAN_BUCKETS)
        return self.span_durations[name]

    @property
    def total_archives(self) -> int:
        return sum(s.archives for s in self.sites.values())

    @property
    def total_chunk_tests(self) -> int:
        return sum(s.chunk_tests for s in self.sites.values())

    def as_dict(self) -> dict:
        """JSON-safe rendering, backing ``repro stats --format json``."""
        out = asdict(self)
        out["sites"] = {
            str(site_id): asdict(site) for site_id, site in self.sites.items()
        }
        out["span_durations"] = {
            name: {
                "count": histogram.count,
                "sum": histogram.total,
                "p50": histogram.quantile(0.5),
                "p90": histogram.quantile(0.9),
                "p99": histogram.quantile(0.99),
            }
            for name, histogram in sorted(self.span_durations.items())
        }
        return out


def summarize_events(events: Iterable[TraceEvent]) -> RunSummary:
    """Fold a stream of trace events into a :class:`RunSummary`."""
    summary = RunSummary()
    for event in events:
        summary.events += 1
        fields = event.fields
        type_ = event.type
        if type_ == "site.chunk_test":
            site = summary.site(int(fields["site"]))
            if fields.get("passed"):
                site.chunk_tests_passed += 1
            else:
                site.chunk_tests_failed += 1
        elif type_ == "site.cluster":
            summary.site(int(fields["site"])).clusterings += 1
        elif type_ == "site.reactivate":
            summary.site(int(fields["site"])).reactivations += 1
        elif type_ == "site.archive":
            summary.site(int(fields["site"])).archives += 1
        elif type_ == "site.expire":
            summary.site(int(fields["site"])).expirations += 1
        elif type_ == "em.fit":
            summary.em_fits += 1
            summary.em_iterations += int(fields.get("n_iter", 0))
        elif type_ == "coord.model_update":
            summary.model_updates += 1
        elif type_ == "coord.weight_update":
            summary.weight_updates += 1
        elif type_ == "coord.deletion":
            summary.deletions += 1
        elif type_ == "coord.merge":
            summary.merges += 1
        elif type_ == "coord.split":
            summary.splits += 1
        elif type_ == "transport.evict":
            summary.evictions += 1
        elif type_ == "transport.send":
            summary.sends += 1
        elif type_ == "transport.retransmit":
            summary.retransmissions += 1
        elif type_ == "transport.heartbeat":
            summary.heartbeats += 1
        elif type_ == "transport.deliver":
            summary.delivered += 1
        elif type_ == "transport.duplicate":
            summary.duplicates_suppressed += 1
        elif type_ == "transport.expired":
            summary.send_expirations += 1
        elif type_ == "fault.drop":
            summary.fault_drops += 1
        elif type_ == "fault.duplicate":
            summary.fault_duplicates += 1
        elif type_ == "fault.reorder":
            summary.fault_reorders += 1
        elif type_ == "fault.partition":
            summary.fault_partition_drops += 1
        elif type_ == "runtime.run":
            summary.runtime_runs += 1
            summary.runtime_records += int(fields.get("records", 0))
        elif type_ == "runtime.checkpoint":
            summary.runtime_checkpoints += 1
        elif type_ == "runtime.resume":
            summary.runtime_resumes += 1
        elif type_ == "history.snapshot":
            summary.history_snapshots += 1
        elif type_ == "span":
            summary.span_count += 1
            start = fields.get("start")
            end = fields.get("end")
            if start is not None and end is not None:
                summary.span_histogram(str(fields.get("name", "?"))).observe(
                    max(float(end) - float(start), 0.0)
                )
    return summary


def summarize_trace(source: str | Path | IO[str]) -> RunSummary:
    """Read a JSONL trace file and summarise it."""
    return summarize_events(read_trace(source))


def drift_from_trace(
    source: str | Path | IO[str],
    t0: int,
    t1: int,
    scope: str | None = None,
) -> dict:
    """Fold a trace's history snapshots through the live drift analytics.

    Backs ``repro stats --window t0 t1``: the trace's
    ``history.snapshot`` events replay through the same pyramidal
    retention (:func:`~repro.obs.history.history_from_events`) and the
    same :func:`~repro.obs.history.drift_report`, so an offline trace
    and the live ``/history/drift`` endpoint answer identically for
    any window the run served.  Prefers the coordinator's history when
    ``scope`` is unset and the trace carries several.

    Raises
    ------
    ValueError
        When the trace carries no matching history snapshots, or the
        window is negative/reversed (values named in the message).
    """
    events = list(read_trace(source))
    history = None
    if scope is None:
        history = history_from_events(events, scope="coordinator")
    if history is None:
        history = history_from_events(events, scope=scope)
    if history is None:
        raise ValueError(
            "trace carries no history.snapshot events"
            + (f" for scope {scope!r}" if scope is not None else "")
            + "; run with history enabled (--history) to record them"
        )
    report = history.drift_between(t0, t1)
    report["scope"] = history.scope
    report["snapshots"] = len(history)
    return report


def format_drift(report: dict) -> str:
    """Human-readable rendering of a :func:`drift_from_trace` report."""
    components = report.get("components", {})
    transport = report.get("weight_transport")
    lines = [
        f"drift window [{report.get('t0')}, {report.get('t1')}]"
        + (
            f"  (scope={report['scope']})"
            if report.get("scope") is not None
            else ""
        ),
        f"  answered from snapshots at t={report.get('tick0')} "
        f"and t={report.get('tick1')}",
        "  components: "
        f"{components.get('from')} -> {components.get('to')} "
        f"(delta {components.get('delta', 0):+d})",
        "  weight transport: "
        + (f"{transport:.6f}" if transport is not None else "n/a"),
    ]
    churn = report.get("churn") or {}
    if churn:
        pairs = "  ".join(f"{k}={v}" for k, v in sorted(churn.items()))
        lines.append(
            f"  churn: {pairs}  (total {report.get('churn_total', 0)})"
        )
    return "\n".join(lines) + "\n"


def format_summary(summary: RunSummary) -> str:
    """Human-readable multi-section rendering of a run summary."""
    lines: list[str] = [f"trace events: {summary.events}"]

    if summary.sites:
        lines.append("")
        lines.append("sites:")
        header = (
            f"  {'site':>6}  {'tests':>6}  {'pass':>6}  {'fail':>6}  "
            f"{'em runs':>8}  {'reactivated':>11}  {'archived':>8}"
        )
        lines.append(header)
        for site_id in sorted(summary.sites):
            site = summary.sites[site_id]
            lines.append(
                f"  {site_id:>6}  {site.chunk_tests:>6}  "
                f"{site.chunk_tests_passed:>6}  {site.chunk_tests_failed:>6}  "
                f"{site.clusterings:>8}  {site.reactivations:>11}  "
                f"{site.archives:>8}"
            )

    if summary.em_fits:
        lines.append("")
        lines.append(
            f"em: fits={summary.em_fits} "
            f"iterations={summary.em_iterations} "
            f"mean_iter={summary.em_iterations / summary.em_fits:.1f}"
        )

    lines.append("")
    lines.append(
        "coordinator: "
        f"model_updates={summary.model_updates} "
        f"weight_updates={summary.weight_updates} "
        f"deletions={summary.deletions} "
        f"merges={summary.merges} splits={summary.splits} "
        f"evictions={summary.evictions}"
    )
    lines.append(
        "transport: "
        f"sends={summary.sends} "
        f"retransmissions={summary.retransmissions} "
        f"delivered={summary.delivered} "
        f"duplicates_suppressed={summary.duplicates_suppressed} "
        f"heartbeats={summary.heartbeats} "
        f"expired={summary.send_expirations}"
    )
    if (
        summary.fault_drops
        or summary.fault_duplicates
        or summary.fault_reorders
        or summary.fault_partition_drops
    ):
        lines.append(
            "faults: "
            f"drops={summary.fault_drops} "
            f"duplicates={summary.fault_duplicates} "
            f"reorders={summary.fault_reorders} "
            f"partition_drops={summary.fault_partition_drops}"
        )
    if summary.runtime_runs or summary.runtime_checkpoints or summary.runtime_resumes:
        lines.append(
            "runtime: "
            f"runs={summary.runtime_runs} "
            f"records={summary.runtime_records} "
            f"checkpoints={summary.runtime_checkpoints} "
            f"resumes={summary.runtime_resumes}"
        )
    if summary.history_snapshots:
        lines.append(f"history: snapshots={summary.history_snapshots}")
    if summary.span_durations:
        lines.append("")
        lines.append(f"spans: {summary.span_count}")
        lines.append(
            f"  {'name':<22}  {'count':>6}  {'p50':>10}  {'p90':>10}  "
            f"{'p99':>10}"
        )
        for name in sorted(summary.span_durations):
            histogram = summary.span_durations[name]
            lines.append(
                f"  {name:<22}  {histogram.count:>6}  "
                f"{histogram.quantile(0.5):>10.6f}  "
                f"{histogram.quantile(0.9):>10.6f}  "
                f"{histogram.quantile(0.99):>10.6f}"
            )
    return "\n".join(lines) + "\n"
