"""Time-travel observability: the pyramidal model-history store.

The event table answers "which model governed the stream at time t?"
exactly -- but it grows without bound, and it says nothing about *how*
the model changed.  :class:`ModelHistory` keeps the CluStream pyramidal
time frame of :class:`~repro.core.snapshots.PyramidalSnapshotStore`
loaded with real state: full mixture summaries, event-table positions
and key health gauges, retained at geometrically-spaced granularities
so any horizon stays reconstructible within O(α·l·log t) snapshots.

On top of the store sit the analytical queries served by the
coordinator API, the telemetry server (``/history``, ``/history/drift``,
``/history/series``) and the federated root (``/cluster/history``):

* :meth:`ModelHistory.model_at` -- the recorded state at the newest
  retained snapshot at or before ``t`` (within one snapshot granularity
  of the exact event-table answer);
* :meth:`ModelHistory.drift_between` -- component-count delta,
  weight-transport distance and merge/split churn between two moments;
* :meth:`ModelHistory.gauge_series` -- a sampled time series of any
  recorded gauge (component count, AvgPr margin, pass rate).

Memory is bounded twice over: the pyramid's per-order ``α^l + 1`` caps,
plus an optional hard byte budget that evicts the globally oldest
snapshots first.  Both eviction streams are metered and visible in
``/metrics`` via :meth:`ModelHistory.publish`.

Every stored snapshot is also emitted as a ``history.snapshot`` trace
event (when an observer is attached), so an offline trace replays into
the *same* retained set: ``history_from_events`` backs
``repro stats --window t0 t1``, and a live endpoint and a trace of the
same run answer drift queries identically.
"""

from __future__ import annotations

import json
from typing import Callable, Iterable, Mapping

from repro.core.snapshots import PyramidalSnapshotStore, Snapshot
from repro.obs.trace import TraceEvent

__all__ = [
    "ModelHistory",
    "coordinator_history_payload",
    "drift_report",
    "history_from_events",
    "site_history_payload",
    "weight_transport",
]


def weight_transport(
    weights0: Iterable[float] | None, weights1: Iterable[float] | None
) -> float | None:
    """Transport distance between two mixture weight vectors.

    Components carry no identity across snapshots (merges and splits
    renumber them), so the vectors are matched by sorted rank: both are
    sorted descending, zero-padded to a common length, and the distance
    is half the L1 gap -- 0 for identical weight profiles, 1 for fully
    disjoint mass.  ``None`` when either side recorded no weights.
    """
    if weights0 is None or weights1 is None:
        return None
    a = sorted((float(w) for w in weights0), reverse=True)
    b = sorted((float(w) for w in weights1), reverse=True)
    size = max(len(a), len(b))
    if size == 0:
        return None
    a += [0.0] * (size - len(a))
    b += [0.0] * (size - len(b))
    return 0.5 * sum(abs(x - y) for x, y in zip(a, b))


def drift_report(
    t0: int, t1: int, snapshot0: Snapshot, snapshot1: Snapshot
) -> dict:
    """Drift analytics between two retained snapshots.

    The single implementation behind the live ``/history/drift``
    endpoint and the offline ``repro stats --window`` fold -- both paths
    must agree by construction, not by parallel maintenance.
    """
    payload0: Mapping = snapshot0.payload or {}
    payload1: Mapping = snapshot1.payload or {}
    components0 = int(payload0.get("components", 0))
    components1 = int(payload1.get("components", 0))
    counters0: Mapping = payload0.get("counters") or {}
    counters1: Mapping = payload1.get("counters") or {}
    churn: dict[str, int] = {}
    for name in sorted(set(counters0) | set(counters1)):
        delta = int(counters1.get(name, 0)) - int(counters0.get(name, 0))
        churn[name] = max(delta, 0)
    return {
        "t0": int(t0),
        "t1": int(t1),
        "tick0": snapshot0.tick,
        "tick1": snapshot1.tick,
        "components": {
            "from": components0,
            "to": components1,
            "delta": components1 - components0,
        },
        "weight_transport": weight_transport(
            payload0.get("weights"), payload1.get("weights")
        ),
        "churn": churn,
        "churn_total": sum(churn.values()),
    }


def site_history_payload(site) -> dict:
    """The snapshot a :class:`~repro.core.remote.RemoteSite` records.

    ``model`` is the id of the model currently explaining the stream --
    the value :meth:`ModelHistory.model_at` answers with, agreeing with
    the (eventually closed) event-table entry covering the snapshot
    tick.  Cumulative counters feed the drift churn deltas.
    """
    current = site.current_model
    mixture = current.mixture if current is not None else None
    stats = site.stats
    tests = stats.n_tests
    return {
        "model": current.model_id if current is not None else None,
        "components": mixture.n_components if mixture is not None else 0,
        "weights": (
            [float(w) for w in mixture.weights] if mixture is not None else []
        ),
        "events_horizon": site.events.horizon,
        "counters": {
            "archives": stats.n_archived,
            "reactivations": stats.n_reactivations,
            "evictions": stats.archive_evictions + site.events.evictions,
        },
        "gauges": {
            "components": mixture.n_components if mixture is not None else 0,
            "pass_rate": stats.n_tests_passed / tests if tests else None,
        },
    }


def coordinator_history_payload(coordinator) -> dict:
    """The snapshot a :class:`~repro.core.coordinator.Coordinator` records."""
    try:
        mixture = coordinator.global_mixture()
        weights = [float(w) for w in mixture.weights]
    except ValueError:
        weights = []
    stats = coordinator.stats
    return {
        "components": coordinator.n_components,
        "weights": weights,
        "counters": {
            "merges": stats.merges,
            "splits": stats.splits,
            "model_updates": stats.model_updates,
            "deletions": stats.deletions,
        },
        "gauges": {"components": coordinator.n_components},
    }


class ModelHistory:
    """Bounded time-travel store for one site or coordinator.

    Parameters
    ----------
    alpha / capacity:
        Pyramid base and retention exponent ``l`` (per-order cap is
        ``alpha**capacity + 1`` snapshots); see
        :class:`~repro.core.snapshots.PyramidalSnapshotStore`.
    max_bytes:
        Optional hard budget on retained payload bytes (JSON size).
        When the pyramid alone exceeds it, the globally oldest
        snapshots are evicted until the store fits, counted separately
        from pyramid evictions.
    scope:
        Label on emitted ``history.snapshot`` trace events (e.g.
        ``"coordinator"``, ``"site:3"``); lets one trace carry several
        histories apart.  Attach points fill it in when left ``None``.
    gauge_source:
        Optional zero-argument callable polled at :meth:`observe` time;
        its dict is merged into the snapshot's ``gauges`` (e.g. the
        health monitor's AvgPr margin).  Process state -- never
        checkpointed, reattach after restore.
    """

    def __init__(
        self,
        alpha: int = 2,
        capacity: int = 2,
        max_bytes: int | None = None,
        scope: str | None = None,
        gauge_source: Callable[[], Mapping] | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.store = PyramidalSnapshotStore(alpha=alpha, capacity=capacity)
        self.max_bytes = max_bytes
        self.scope = scope
        self.gauge_source = gauge_source
        #: Optional observer; stored snapshots are mirrored to it as
        #: ``history.snapshot`` trace events (process state, reattach
        #: after restore).
        self.observer = None
        self.evicted_memory = 0
        self._last_tick = 0
        self._sizes: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @property
    def last_tick(self) -> int:
        """Newest tick ever observed (0 before the first)."""
        return self._last_tick

    @property
    def bytes(self) -> int:
        """Estimated retained payload bytes (compact-JSON size)."""
        return sum(self._sizes.values())

    def __len__(self) -> int:
        return len(self.store)

    def observe(self, tick: int, payload: Mapping) -> bool:
        """Record the state at ``tick``; returns ``True`` when stored.

        Ticks must be positive and strictly increasing (out-of-order
        offers are ignored, so interleaved multi-site clocks at a
        coordinator are safe).  ``payload`` must be JSON-safe.
        """
        tick = int(tick)
        if tick <= self._last_tick:
            return False
        self._last_tick = tick
        payload = dict(payload)
        if self.gauge_source is not None:
            gauges = dict(payload.get("gauges") or {})
            for name, value in dict(self.gauge_source()).items():
                if value is not None:
                    gauges[name] = value
            payload["gauges"] = gauges
        size = len(json.dumps(payload, separators=(",", ":"), default=float))
        if not self.store.offer(tick, payload):
            return False
        self._sizes[tick] = size
        self._reconcile_sizes()
        while (
            self.max_bytes is not None
            and self.bytes > self.max_bytes
            and len(self.store) > 1
        ):
            evicted = self.store.pop_oldest()
            if evicted is None:
                break
            self._sizes.pop(evicted.tick, None)
            self.evicted_memory += 1
        observer = self.observer
        if observer is not None and observer.enabled:
            observer.event(
                "history.snapshot",
                scope=self.scope,
                tick=tick,
                alpha=self.store.alpha,
                capacity=self.store.capacity,
                payload=payload,
            )
        return True

    def _reconcile_sizes(self) -> None:
        retained = set(self.store.ticks())
        for tick in [t for t in self._sizes if t not in retained]:
            del self._sizes[tick]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _lookup(self, t: int) -> Snapshot:
        if t < 0:
            raise ValueError(f"query time must be non-negative, got {t}")
        snapshot = self.store.at_or_before(t)
        if snapshot is None:
            # Everything retained is newer: answer with the oldest
            # landmark rather than refusing (documented degradation).
            retained = self.store.snapshots()
            if not retained:
                raise ValueError("history is empty")
            snapshot = retained[0]
        return snapshot

    def model_at(self, t: int) -> dict:
        """The recorded state at the newest retained tick ≤ ``t``.

        The answer carries the snapshot ``tick`` it came from; it agrees
        with the exact event table at that tick, which is within one
        snapshot granularity of ``t`` (the Aggarwal retention bound).
        """
        snapshot = self._lookup(t)
        return {
            "t": int(t),
            "tick": snapshot.tick,
            "order": snapshot.order,
            "model": snapshot.payload,
        }

    def drift_between(self, t0: int, t1: int) -> dict:
        """Drift analytics over ``[t0, t1]`` (see :func:`drift_report`).

        Raises
        ------
        ValueError
            On a negative or reversed range; the message names the
            offending values (matching the event-table validation).
        """
        if t0 < 0:
            raise ValueError(f"window start must be non-negative, got {t0}")
        if t1 < t0:
            raise ValueError(
                f"reversed window [{t0}, {t1}): end precedes start"
            )
        return drift_report(t0, t1, self._lookup(t0), self._lookup(t1))

    def gauge_series(
        self, name: str, t0: int | None = None, t1: int | None = None
    ) -> list[list]:
        """``[tick, value]`` points of gauge ``name`` in ``[t0, t1]``.

        Endpoints default to the full retained range; a reversed range
        raises like :meth:`drift_between`.
        """
        if t0 is not None and t1 is not None and t1 < t0:
            raise ValueError(
                f"reversed window [{t0}, {t1}): end precedes start"
            )
        points: list[list] = []
        for snapshot in self.store.snapshots():
            if t0 is not None and snapshot.tick < t0:
                continue
            if t1 is not None and snapshot.tick > t1:
                continue
            gauges = (snapshot.payload or {}).get("gauges") or {}
            if name in gauges and gauges[name] is not None:
                points.append([snapshot.tick, gauges[name]])
        return points

    def gauge_names(self) -> list[str]:
        """Every gauge name appearing in a retained snapshot."""
        names: set[str] = set()
        for snapshot in self.store.snapshots():
            names.update(((snapshot.payload or {}).get("gauges") or {}))
        return sorted(names)

    def summary(self) -> dict:
        """The ``/history`` index payload: bounds, accounting, ticks."""
        return {
            "retained": len(self.store),
            "offered": self.store.offered,
            "stored_total": self.store.stored_total,
            "evictions": {
                "pyramid": self.store.evicted - self.evicted_memory,
                "memory": self.evicted_memory,
            },
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "alpha": self.store.alpha,
            "capacity": self.store.capacity,
            "scope": self.scope,
            "horizon": self._last_tick,
            "ticks": self.store.ticks(),
            "gauges": self.gauge_names(),
        }

    def federated_summary(self, series_points: int = 32) -> dict:
        """Compact per-node rollup shipped in telemetry reports.

        Bounded by construction (the retained set is O(α·l·log t) and
        the component series is capped at ``series_points``), so it can
        ride every TELEMETRY flush without bloating the envelope.
        """
        series = self.gauge_series("components")
        return {
            "retained": len(self.store),
            "evictions": {
                "pyramid": self.store.evicted - self.evicted_memory,
                "memory": self.evicted_memory,
            },
            "bytes": self.bytes,
            "horizon": self._last_tick,
            "ticks": self.store.ticks(),
            "components": series[-series_points:],
        }

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def publish(self, registry, **labels: object) -> None:
        """Push ``history.*`` gauges (retention and eviction accounting)."""
        if self.scope is not None and "scope" not in labels:
            labels["scope"] = self.scope
        registry.gauge("history.retained", **labels).set(len(self.store))
        registry.gauge("history.bytes", **labels).set(self.bytes)
        registry.gauge("history.offered", **labels).set(self.store.offered)
        registry.gauge(
            "history.evictions", kind="pyramid", **labels
        ).set(self.store.evicted - self.evicted_memory)
        registry.gauge(
            "history.evictions", kind="memory", **labels
        ).set(self.evicted_memory)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe state (observer and gauge source excluded)."""
        return {
            "max_bytes": self.max_bytes,
            "scope": self.scope,
            "last_tick": self._last_tick,
            "evicted_memory": self.evicted_memory,
            "store": self.store.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ModelHistory":
        """Inverse of :meth:`to_dict`; reattach ``observer`` and
        ``gauge_source`` afterwards (they are process state)."""
        store = PyramidalSnapshotStore.from_dict(payload["store"])
        history = cls(
            alpha=store.alpha,
            capacity=store.capacity,
            max_bytes=payload.get("max_bytes"),
            scope=payload.get("scope"),
        )
        history.store = store
        history._last_tick = int(payload.get("last_tick", 0))
        history.evicted_memory = int(payload.get("evicted_memory", 0))
        history._sizes = {
            snapshot.tick: len(
                json.dumps(
                    snapshot.payload, separators=(",", ":"), default=float
                )
            )
            for snapshot in store.snapshots()
        }
        return history

    def __repr__(self) -> str:
        return (
            f"ModelHistory(scope={self.scope!r}, retained={len(self.store)}, "
            f"horizon={self._last_tick})"
        )


def history_from_events(
    events: Iterable[TraceEvent], scope: str | None = None
) -> ModelHistory | None:
    """Replay ``history.snapshot`` trace events into a fresh store.

    The offline half of the live/offline agreement contract: the same
    snapshots pass through the same retention, so drift queries on the
    result match the live endpoint's answers for any window inside the
    trace.  ``scope`` selects one history when a trace carries several
    (``None`` accepts the first scope seen).  Returns ``None`` when the
    trace has no matching snapshots.
    """
    history: ModelHistory | None = None
    for event in events:
        if event.type != "history.snapshot":
            continue
        fields = event.fields
        event_scope = fields.get("scope")
        if scope is not None and event_scope != scope:
            continue
        if history is None:
            history = ModelHistory(
                alpha=int(fields.get("alpha", 2)),
                capacity=int(fields.get("capacity", 2)),
                scope=event_scope if scope is None else scope,
            )
        elif scope is None and event_scope != history.scope:
            continue
        history.observe(int(fields["tick"]), dict(fields.get("payload") or {}))
    return history
