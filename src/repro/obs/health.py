"""Paper-grounded live health gauges derived from the trace stream.

The trace layer records *what happened*; this module folds that stream
into *how the system is doing right now*, in the paper's own terms:

* per-site **AvgPr drift** -- the last fit-test ``J_fit`` against its
  ``epsilon`` threshold (section 4.2); the margin ``threshold - j_fit``
  going negative is exactly the signal that a site's distribution has
  drifted away from its current model;
* the **global component count** the coordinator maintains (section 6);
* **merge/split churn** -- how often Algorithm 2 restructures the
  global model, normalised per processed record;
* **bytes per record** -- the section 6 communication-cost headline,
  taken from any :class:`~repro.runtime.accounting.DeliveryAccounting`;
* **refit-ladder gauges** (DESIGN section 14) -- per-site and
  cluster-wide refit rate (refits per fit test), per-rung outcome
  counts (reactivated / warm / cold) and mean refit latency, folded
  from ``site.refit`` events.

:class:`HealthMonitor` is a :class:`~repro.obs.trace.TraceSink`, so it
plugs into a live observer next to the JSONL file sink and stays current
while a run is in flight -- the telemetry server's ``/health`` endpoint
is a thin JSON rendering of :meth:`HealthMonitor.report`.  Quantities
the trace does not carry (live component count, channel accounting) are
attached with :meth:`HealthMonitor.bind` as zero-argument callables that
are polled at report time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent, TraceSink

__all__ = [
    "HealthMonitor",
    "SiteHealth",
    "publish_cluster_levels",
    "system_snapshot",
]


@dataclass
class SiteHealth:
    """Live per-site state folded from the site's trace events."""

    site_id: int
    #: Model the site currently clusters against (last seen).
    model_id: int | None = None
    #: Last fit-test ``J_fit`` (AvgPr difference) and its threshold.
    last_j_fit: float | None = None
    last_threshold: float | None = None
    tests: int = 0
    tests_passed: int = 0
    clusterings: int = 0
    reactivations: int = 0
    archives: int = 0
    #: Records the site has chunk-tested so far.
    records: int = 0
    #: Refit-ladder outcomes (DESIGN section 14): every failed fit test
    #: resolves to exactly one of these rungs.
    refits_reactivated: int = 0
    refits_warm: int = 0
    refits_cold: int = 0
    #: Total wall-clock seconds spent inside ``site.refit`` spans.
    refit_seconds: float = 0.0

    @property
    def margin(self) -> float | None:
        """``threshold - j_fit`` of the last fit test.

        Positive means the chunk still fits the current model; negative
        is the drift signal that triggered (or is about to trigger)
        re-clustering.
        """
        if self.last_j_fit is None or self.last_threshold is None:
            return None
        return self.last_threshold - self.last_j_fit

    @property
    def pass_rate(self) -> float | None:
        return self.tests_passed / self.tests if self.tests else None

    @property
    def refits(self) -> int:
        """Total refit-ladder invocations (all rungs)."""
        return self.refits_reactivated + self.refits_warm + self.refits_cold

    @property
    def refit_rate(self) -> float | None:
        """Fraction of fit tests that escalated into the refit ladder."""
        return self.refits / self.tests if self.tests else None

    @property
    def mean_refit_seconds(self) -> float | None:
        """Mean wall-clock latency of one refit-ladder resolution."""
        return self.refit_seconds / self.refits if self.refits else None

    def as_dict(self) -> dict:
        return {
            "site": self.site_id,
            "model": self.model_id,
            "j_fit": self.last_j_fit,
            "threshold": self.last_threshold,
            "margin": self.margin,
            "tests": self.tests,
            "tests_passed": self.tests_passed,
            "pass_rate": self.pass_rate,
            "clusterings": self.clusterings,
            "reactivations": self.reactivations,
            "archives": self.archives,
            "records": self.records,
            "refits": {
                "reactivated": self.refits_reactivated,
                "warm": self.refits_warm,
                "cold": self.refits_cold,
            },
            "refit_rate": self.refit_rate,
            "mean_refit_seconds": self.mean_refit_seconds,
        }


@dataclass
class _GlobalHealth:
    merges: int = 0
    splits: int = 0
    model_updates: int = 0
    weight_updates: int = 0
    deletions: int = 0
    records: int = 0
    events: int = 0
    last_component_count: int | None = None


class HealthMonitor(TraceSink):
    """Fold trace events into live, paper-grounded health gauges.

    Use it as an extra observer sink::

        health = HealthMonitor()
        observer = Observer(sinks=[JsonlTraceSink(path), health])
        ...
        health.report()        # JSON-safe dict, any time
        health.publish(registry)  # push health.* gauges for /metrics

    Thread-safe enough for its purpose: writes come from the run thread,
    reads from the telemetry server thread; folding mutates plain ints
    and floats, so a report taken mid-event is merely one event stale.
    """

    def __init__(self) -> None:
        self._sites: dict[int, SiteHealth] = {}
        self._global = _GlobalHealth()
        #: Optional live probes attached with :meth:`bind`.
        self._component_count: Callable[[], int] | None = None
        self._accounting: Callable[[], object] | None = None

    # ------------------------------------------------------------------
    # Live probes
    # ------------------------------------------------------------------
    def bind(
        self,
        component_count: Callable[[], int] | None = None,
        accounting: Callable[[], object] | None = None,
    ) -> "HealthMonitor":
        """Attach live probes polled at report time.

        Parameters
        ----------
        component_count:
            Zero-argument callable returning the coordinator's current
            global component count (``lambda: coordinator.n_components``).
        accounting:
            Zero-argument callable returning the channel's current
            :class:`~repro.runtime.accounting.DeliveryAccounting`
            (``runtime.accounting``) -- used for bytes-per-record.

        Returns ``self`` so binding chains off the constructor.
        """
        if component_count is not None:
            self._component_count = component_count
        if accounting is not None:
            self._accounting = accounting
        return self

    # ------------------------------------------------------------------
    # TraceSink interface
    # ------------------------------------------------------------------
    def write(self, event: TraceEvent) -> None:
        fields = event.fields
        type_ = event.type
        self._global.events += 1
        if type_ == "site.chunk_test":
            site = self._site(int(fields["site"]))
            site.tests += 1
            if fields.get("passed"):
                site.tests_passed += 1
            site.model_id = fields.get("model", site.model_id)
            j_fit = fields.get("j_fit")
            threshold = fields.get("threshold")
            if j_fit is not None:
                site.last_j_fit = float(j_fit)
            if threshold is not None:
                site.last_threshold = float(threshold)
            chunk = int(fields.get("chunk", 0))
            site.records += chunk
            self._global.records += chunk
        elif type_ == "site.cluster":
            site = self._site(int(fields["site"]))
            # A site's very first chunk is clustered without a fit test
            # (Algorithm 1); count its records here.  Every later
            # clustering re-uses a chunk already counted by the failed
            # chunk test that triggered it.
            if not site.tests and not site.clusterings:
                records = int(fields.get("records", 0))
                site.records += records
                self._global.records += records
            site.clusterings += 1
            site.model_id = fields.get("model", site.model_id)
        elif type_ == "site.reactivate":
            site = self._site(int(fields["site"]))
            site.reactivations += 1
            site.model_id = fields.get("model", site.model_id)
        elif type_ == "site.archive":
            self._site(int(fields["site"])).archives += 1
        elif type_ == "site.refit":
            site = self._site(int(fields["site"]))
            outcome = fields.get("outcome")
            if outcome == "reactivated":
                site.refits_reactivated += 1
            elif outcome == "warm":
                site.refits_warm += 1
            elif outcome == "cold":
                site.refits_cold += 1
        elif type_ == "span" and fields.get("name") == "site.refit":
            # Latency rides the span record, not the event: span
            # start/end come from the observer's time source, so
            # deterministic (manual-clock) traces stay byte-stable
            # while live runs report real wall time.
            attrs = fields.get("attrs") or {}
            if "site" in attrs:
                self._site(int(attrs["site"])).refit_seconds += float(
                    fields.get("end", 0.0)
                ) - float(fields.get("start", 0.0))
        elif type_ == "coord.merge":
            self._global.merges += 1
        elif type_ == "coord.split":
            self._global.splits += 1
        elif type_ == "coord.model_update":
            self._global.model_updates += 1
        elif type_ == "coord.weight_update":
            self._global.weight_updates += 1
        elif type_ == "coord.deletion":
            self._global.deletions += 1

    def _site(self, site_id: int) -> SiteHealth:
        if site_id not in self._sites:
            self._sites[site_id] = SiteHealth(site_id=site_id)
        return self._sites[site_id]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def churn_rate(self) -> float:
        """Merge + split decisions per processed record."""
        if not self._global.records:
            return 0.0
        return (self._global.merges + self._global.splits) / self._global.records

    def component_count(self) -> int | None:
        """Current global component count (live probe, else last known)."""
        if self._component_count is not None:
            return int(self._component_count())
        return self._global.last_component_count

    def refit_rate(self) -> float | None:
        """Cluster-wide fraction of fit tests that entered the ladder."""
        tests = sum(site.tests for site in self._sites.values())
        if not tests:
            return None
        refits = sum(site.refits for site in self._sites.values())
        return refits / tests

    def mean_refit_seconds(self) -> float | None:
        """Cluster-wide mean wall-clock latency per refit resolution."""
        refits = sum(site.refits for site in self._sites.values())
        if not refits:
            return None
        seconds = sum(site.refit_seconds for site in self._sites.values())
        return seconds / refits

    def history_gauges(self) -> dict:
        """Compact gauge dict for a model-history snapshot.

        Designed as a :class:`~repro.obs.history.ModelHistory`
        ``gauge_source`` probe: attaching
        ``history.gauge_source = health.history_gauges`` makes every
        retained snapshot carry the AvgPr margin, pass rate and churn
        at that moment, so ``gauge_series("avg_pr_margin", ...)`` can
        replay how close the system sat to its drift threshold over
        time.  ``None`` values are dropped by the history store.
        """
        margins = [
            site.margin
            for site in self._sites.values()
            if site.margin is not None
        ]
        tests = sum(site.tests for site in self._sites.values())
        passed = sum(site.tests_passed for site in self._sites.values())
        return {
            "avg_pr_margin": min(margins) if margins else None,
            "pass_rate": passed / tests if tests else None,
            "churn_rate": self.churn_rate,
        }

    def bytes_per_record(self) -> float | None:
        """Section 6 communication cost: payload bytes per record."""
        if self._accounting is None or not self._global.records:
            return None
        accounting = self._accounting()
        payload = getattr(accounting, "payload_bytes", None)
        if payload is None:
            return None
        return payload / self._global.records

    def report(self) -> dict:
        """JSON-safe snapshot of every gauge, for ``/health``."""
        accounting = self._accounting() if self._accounting is not None else None
        out: dict = {
            "status": "ok",
            "events": self._global.events,
            "records": self._global.records,
            "sites": [
                self._sites[site_id].as_dict()
                for site_id in sorted(self._sites)
            ],
            "coordinator": {
                "components": self.component_count(),
                "merges": self._global.merges,
                "splits": self._global.splits,
                "model_updates": self._global.model_updates,
                "weight_updates": self._global.weight_updates,
                "deletions": self._global.deletions,
                "churn_rate": self.churn_rate,
            },
            "refits": {
                "reactivated": sum(
                    s.refits_reactivated for s in self._sites.values()
                ),
                "warm": sum(s.refits_warm for s in self._sites.values()),
                "cold": sum(s.refits_cold for s in self._sites.values()),
                "refit_rate": self.refit_rate(),
                "mean_seconds": self.mean_refit_seconds(),
            },
        }
        if accounting is not None:
            out["accounting"] = {
                "attempted": getattr(accounting, "attempted", 0),
                "payload_bytes": getattr(accounting, "payload_bytes", 0),
                "wire_bytes": getattr(accounting, "wire_bytes", 0),
                "bytes_per_record": self.bytes_per_record(),
            }
        drifting = [
            site.site_id
            for site in self._sites.values()
            if site.margin is not None and site.margin < 0.0
        ]
        if drifting:
            out["status"] = "drifting"
            out["drifting_sites"] = drifting
        return out

    def publish(self, registry: MetricsRegistry) -> None:
        """Push every gauge into ``registry`` under ``health.*`` names.

        Called by the telemetry server right before rendering
        ``/metrics``, so Prometheus scrapes always see current values.
        """
        for site in self._sites.values():
            labels = {"site": site.site_id}
            if site.margin is not None:
                registry.gauge("health.site_margin", **labels).set(site.margin)
            if site.last_j_fit is not None:
                registry.gauge("health.site_j_fit", **labels).set(site.last_j_fit)
            if site.pass_rate is not None:
                registry.gauge("health.site_pass_rate", **labels).set(
                    site.pass_rate
                )
            registry.gauge("health.site_records", **labels).set(site.records)
            if site.refit_rate is not None:
                registry.gauge("health.site_refit_rate", **labels).set(
                    site.refit_rate
                )
            if site.mean_refit_seconds is not None:
                registry.gauge("health.site_refit_seconds", **labels).set(
                    site.mean_refit_seconds
                )
        components = self.component_count()
        if components is not None:
            registry.gauge("health.components").set(components)
        registry.gauge("health.merges").set(self._global.merges)
        registry.gauge("health.splits").set(self._global.splits)
        registry.gauge("health.churn_rate").set(self.churn_rate)
        refit_rate = self.refit_rate()
        if refit_rate is not None:
            registry.gauge("health.refit_rate").set(refit_rate)
        mean_refit = self.mean_refit_seconds()
        if mean_refit is not None:
            registry.gauge("health.refit_seconds").set(mean_refit)
        bpr = self.bytes_per_record()
        if bpr is not None:
            registry.gauge("health.bytes_per_record").set(bpr)


def system_snapshot(
    sites: Sequence[object],
    coordinator: object,
    accounting: object | None = None,
    event_tail: int = 5,
) -> dict:
    """Introspect live site/coordinator objects into a JSON-safe dict.

    Backs the telemetry server's ``/snapshot`` endpoint: per-site
    current model id, archived model ids, stream position and the tail
    of the section 5.1 event table, plus the coordinator's cluster
    structure and (optionally) the channel's delivery accounting.
    """
    out: dict = {"sites": [], "coordinator": {}}
    for site in sites:
        current = getattr(site, "current_model", None)
        events = getattr(site, "events", None)
        tail = []
        if events is not None:
            records = list(getattr(events, "records", ()))
            tail = [
                {"start": r.start, "end": r.end, "model": r.model_id}
                for r in records[-event_tail:]
            ]
        entry = {
            "site": getattr(site, "site_id", None),
            "position": getattr(site, "position", None),
            "current_model": (
                current.model_id if current is not None else None
            ),
            "models": [
                entry.model_id
                for entry in getattr(site, "all_models", ())
            ],
            "event_table_tail": tail,
            "event_count": len(events) if events is not None else 0,
        }
        history = getattr(site, "history", None)
        if history is not None:
            entry["history"] = history.summary()
        out["sites"].append(entry)
    out["coordinator"] = {
        "components": getattr(coordinator, "n_components", None),
        "clusters": len(getattr(coordinator, "clusters", ())),
        "site_models": len(getattr(coordinator, "site_models", {})),
    }
    coordinator_history = getattr(coordinator, "history", None)
    if coordinator_history is not None:
        out["coordinator"]["history"] = coordinator_history.summary()
    if accounting is not None:
        as_dict = getattr(accounting, "as_dict", None)
        if callable(as_dict):
            out["accounting"] = as_dict()
        else:
            out["accounting"] = {
                "attempted": getattr(accounting, "attempted", 0),
                "payload_bytes": getattr(accounting, "payload_bytes", 0),
                "wire_bytes": getattr(accounting, "wire_bytes", 0),
                "dropped": getattr(accounting, "dropped", 0),
                "duplicated": getattr(accounting, "duplicated", 0),
            }
    return out


def publish_cluster_levels(
    registry: MetricsRegistry, levels: Sequence[object]
) -> None:
    """Push per-tree-level wire gauges into ``registry``.

    ``levels`` is an iterable of :class:`repro.cluster.tree.LevelStats`
    (or anything with the same attributes).  Designed as a
    ``TelemetryServer`` publisher::

        TelemetryServer(obs, publish=(
            lambda reg: publish_cluster_levels(reg, tree.level_stats()),
        ))

    so the root's ``/metrics`` endpoint always reports current per-level
    messages, wire bytes and bytes-per-record for the whole tree.
    """
    for stats in levels:
        labels = {"level": getattr(stats, "level", 0)}
        registry.gauge("cluster.level_edges", **labels).set(
            getattr(stats, "edges", 0)
        )
        registry.gauge("cluster.level_messages", **labels).set(
            getattr(stats, "messages", 0)
        )
        registry.gauge("cluster.level_wire_bytes", **labels).set(
            getattr(stats, "wire_bytes", 0)
        )
        registry.gauge("cluster.level_bytes_per_record", **labels).set(
            getattr(stats, "bytes_per_record", 0.0)
        )
