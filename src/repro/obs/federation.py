"""Cluster-wide telemetry federation: per-node collection, root rollup.

PR 6 deployed the paper's section 7 aggregation tree as real OS
processes; this module makes the tree *observable as one system*.  The
design is deliberately tree-shaped, like the data path itself:

* every node runs a :class:`FederationPublisher` -- a thin sampler over
  the node's own :class:`~repro.obs.health.HealthMonitor`,
  :class:`~repro.obs.spans.SpanCollector`, uplink
  :class:`~repro.transport.reliability.SenderStats` and OS process
  resources -- producing one :class:`NodeTelemetry` report per flush;
* reports ride the node's *existing* ARQ uplink as best-effort
  ``TELEMETRY`` envelopes (:data:`repro.transport.framing.KIND_TELEMETRY`):
  unsequenced, unacked, excluded from the section 6 wire accounting, so
  a federated run's byte budget is identical to a plain one;
* intermediate aggregators buffer child reports in a
  :class:`TelemetryRelay` and forward them verbatim on their own flush,
  so one report crosses each tree edge exactly once on its way up;
* the root ingests everything into a :class:`FederationCollector`,
  which keeps the latest report per node, derives liveness from report
  staleness, computes per-level rollups (bytes/record, ε−J_fit margin,
  pass rate, merge/split churn, component counts) and reassembles
  cross-process traces by joining span records on the 16-byte wire
  span context -- served by the root's
  :class:`~repro.obs.server.TelemetryServer` under ``/cluster/health``,
  ``/cluster/nodes`` and ``/cluster/spans``.

Reports are idempotent state snapshots, not deltas (spans excepted:
each flush ships only spans recorded since the previous one), so a
dropped TELEMETRY envelope is simply superseded by the next flush and
a duplicated one is suppressed by its flush sequence number.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.obs.health import HealthMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanCollector, SpanRecord, to_chrome_trace

__all__ = [
    "FederationCollector",
    "NODE_TELEMETRY_FORMAT",
    "NodeTelemetry",
    "FederationPublisher",
    "TelemetryRelay",
    "process_resources",
    "publish_process_resources",
    "topology_from_spec",
]

NODE_TELEMETRY_FORMAT = 1


# ----------------------------------------------------------------------
# Process-resource gauges (stdlib only)
# ----------------------------------------------------------------------
def process_resources() -> dict:
    """RSS, cumulative CPU time and open-fd count of this process.

    Standard library only: ``resource.getrusage`` for memory and CPU
    (``ru_maxrss`` is kilobytes on Linux, bytes on macOS -- normalised
    to bytes here), ``/proc/self/fd`` for the descriptor count where
    available.  Missing facilities degrade to ``None`` rather than
    raising, so the gauges are safe on any platform.
    """
    rss_bytes: int | None = None
    cpu_seconds: float | None = None
    try:
        import resource
        import sys

        usage = resource.getrusage(resource.RUSAGE_SELF)
        scale = 1 if sys.platform == "darwin" else 1024
        rss_bytes = int(usage.ru_maxrss) * scale
        cpu_seconds = float(usage.ru_utime + usage.ru_stime)
    except (ImportError, OSError, ValueError):
        pass
    open_fds: int | None = None
    try:
        open_fds = len(os.listdir("/proc/self/fd"))
    except OSError:
        pass
    return {
        "rss_bytes": rss_bytes,
        "cpu_seconds": cpu_seconds,
        "open_fds": open_fds,
    }


def publish_process_resources(registry: MetricsRegistry) -> None:
    """Push :func:`process_resources` as ``process.*`` gauges.

    Designed as a :class:`~repro.obs.server.TelemetryServer` publisher,
    so every node's ``/metrics`` carries its own RSS / CPU / fd gauges.
    """
    resources = process_resources()
    for name, value in resources.items():
        if value is not None:
            registry.gauge(f"process.{name}").set(float(value))


# ----------------------------------------------------------------------
# The federated report
# ----------------------------------------------------------------------
@dataclass(frozen=True, kw_only=True)
class NodeTelemetry:
    """One node's self-report, as shipped up the tree.

    ``seq`` is the node's flush counter: the collector only replaces a
    stored report with a higher-``seq`` one from the same process, which
    makes duplicated (or reordered) TELEMETRY envelopes harmless.
    ``spans`` carries the *incremental* span-event field dicts recorded
    since the node's previous flush; everything else is an idempotent
    snapshot of current state.
    """

    node_id: int
    role: str
    level: int
    pid: int
    seq: int
    records: int = 0
    health: dict | None = None
    resources: dict = field(default_factory=dict)
    uplink: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    endpoints: dict = field(default_factory=dict)
    spans: tuple = ()
    #: Compact model-history rollup
    #: (:meth:`~repro.obs.history.ModelHistory.federated_summary`);
    #: ``None`` when the node runs without history, and then absent
    #: from the wire payload so pre-history peers decode unchanged.
    history: dict | None = None

    def to_payload(self) -> bytes:
        """Encode for a TELEMETRY envelope (compact JSON)."""
        payload = {
            "format": NODE_TELEMETRY_FORMAT,
            "kind": "node_telemetry",
            "node": self.node_id,
            "role": self.role,
            "level": self.level,
            "pid": self.pid,
            "seq": self.seq,
            "records": self.records,
            "health": self.health,
            "resources": self.resources,
            "uplink": self.uplink,
            "gauges": self.gauges,
            "endpoints": self.endpoints,
            "spans": list(self.spans),
        }
        if self.history is not None:
            payload["history"] = self.history
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, data: bytes) -> "NodeTelemetry":
        """Inverse of :meth:`to_payload`; raises ``ValueError`` on junk."""
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"undecodable telemetry payload: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("kind") != "node_telemetry":
            raise ValueError("payload is not a node telemetry report")
        if payload.get("format") != NODE_TELEMETRY_FORMAT:
            raise ValueError(
                f"unsupported telemetry format {payload.get('format')}"
            )
        return cls(
            node_id=int(payload["node"]),
            role=str(payload.get("role", "aggregator")),
            level=int(payload.get("level", 0)),
            pid=int(payload.get("pid", 0)),
            seq=int(payload.get("seq", 0)),
            records=int(payload.get("records", 0)),
            health=payload.get("health"),
            resources=dict(payload.get("resources") or {}),
            uplink=dict(payload.get("uplink") or {}),
            gauges=dict(payload.get("gauges") or {}),
            endpoints=dict(payload.get("endpoints") or {}),
            spans=tuple(payload.get("spans") or ()),
            history=payload.get("history"),
        )


def _sender_stats_dict(stats: object) -> dict:
    """JSON-safe view of a :class:`~repro.transport.reliability.SenderStats`."""
    return {
        "payloads_sent": getattr(stats, "payloads_sent", 0),
        "payload_bytes": getattr(stats, "payload_bytes", 0),
        "wire_bytes": getattr(stats, "wire_bytes", 0),
        "retransmissions": getattr(stats, "retransmissions", 0),
        "telemetry_bytes": getattr(stats, "telemetry_bytes", 0),
    }


# ----------------------------------------------------------------------
# Node side: publisher + relay
# ----------------------------------------------------------------------
class FederationPublisher:
    """Samples one node's observability state into telemetry reports.

    All probes are zero-argument callables polled at :meth:`collect`
    time, so the publisher holds no background thread and adds nothing
    to the hot path; a node that never flushes pays nothing.

    Parameters
    ----------
    node_id / role / level:
        The node's position in the tree (as in
        :class:`~repro.cluster.spec.NodeSpec`).
    health:
        The node's own :class:`HealthMonitor`; its
        :meth:`~HealthMonitor.report` rides every flush.
    spans:
        The node's :class:`SpanCollector`; each flush ships only span
        events recorded since the previous flush (tracked by collector
        id cursor).
    uplink_stats:
        Probe returning the node's uplink ``SenderStats`` (or ``None``
        for the root, which has no uplink).
    gauges:
        Probe returning a small JSON-safe dict of node gauges
        (``messages_up``, ``bytes_up``, ``components``...).
    records:
        Probe returning records processed; defaults to the health
        monitor's record count.
    endpoints:
        Static endpoint dict for ``/cluster/nodes`` (TCP + telemetry).
    history:
        Probe returning the node's compact history rollup (typically
        ``history.federated_summary``), or ``None``; rides every flush
        so the root's ``/cluster/history`` stays current.
    """

    def __init__(
        self,
        node_id: int,
        role: str,
        level: int,
        health: HealthMonitor | None = None,
        spans: SpanCollector | None = None,
        uplink_stats: Callable[[], object | None] | None = None,
        gauges: Callable[[], dict] | None = None,
        records: Callable[[], int] | None = None,
        endpoints: Mapping | None = None,
        pid: int | None = None,
        codec_stats: Callable[[], object | None] | None = None,
        uplink_codec: str = "cds1",
        history: Callable[[], dict | None] | None = None,
    ) -> None:
        self.node_id = node_id
        self.role = role
        self.level = level
        self._health = health
        self._spans = spans
        self._uplink_stats = uplink_stats
        self._codec_stats = codec_stats
        #: Name of the wire codec this node's uplink edge speaks.
        self.uplink_codec = uplink_codec
        self._gauges = gauges
        self._records = records
        self._history = history
        self.endpoints = dict(endpoints or {})
        self._pid = pid if pid is not None else os.getpid()
        self._span_cursor = 0
        self._seq = 0

    @property
    def flushes(self) -> int:
        """Number of reports collected so far."""
        return self._seq

    def bind_uplink(
        self,
        probe: Callable[[], object | None],
        codec_stats: Callable[[], object | None] | None = None,
    ) -> None:
        """Late-bind the uplink stats probe.

        For publishers built before their transport exists (a site
        worker constructs its publisher, then
        :func:`~repro.transport.tcp.run_site_client` creates the sender
        and binds its stats here).  ``codec_stats`` optionally binds the
        uplink edge's :class:`~repro.core.serde.CodecStats` probe so
        reports carry the wire codec's delta/quantization accounting.
        """
        self._uplink_stats = probe
        if codec_stats is not None:
            self._codec_stats = codec_stats

    def collect(self) -> bytes:
        """Produce the next report as an encoded TELEMETRY payload."""
        return self.collect_report().to_payload()

    def collect_report(self) -> NodeTelemetry:
        self._seq += 1
        health = self._health.report() if self._health is not None else None
        records = 0
        if self._records is not None:
            records = int(self._records())
        elif health is not None:
            records = int(health.get("records", 0))
        uplink: dict = {}
        if self._uplink_stats is not None:
            stats = self._uplink_stats()
            if stats is not None:
                uplink = _sender_stats_dict(stats)
        if uplink and self._codec_stats is not None:
            codec = self._codec_stats()
            if codec is not None:
                uplink["codec"] = self.uplink_codec
                uplink["model_updates"] = int(codec.model_updates)
                uplink["delta_updates"] = int(codec.delta_updates)
                uplink["delta_hit_rate"] = float(codec.delta_hit_rate)
                uplink["bytes_saved"] = int(codec.bytes_saved)
                uplink["coalesced"] = int(codec.coalesced)
        span_fields: list[dict] = []
        if self._spans is not None:
            page = self._spans.events_since(self._span_cursor)
            if page:
                self._span_cursor = page[-1][0]
                span_fields = [dict(event.fields) for _, event in page]
        history = self._history() if self._history is not None else None
        return NodeTelemetry(
            node_id=self.node_id,
            role=self.role,
            level=self.level,
            pid=self._pid,
            seq=self._seq,
            records=records,
            health=health,
            resources=process_resources(),
            uplink=uplink,
            gauges=dict(self._gauges()) if self._gauges is not None else {},
            endpoints=self.endpoints,
            spans=tuple(span_fields),
            history=dict(history) if history is not None else None,
        )


class TelemetryRelay:
    """Bounded store-and-forward buffer at an intermediate aggregator.

    Child reports (raw payload bytes -- never re-encoded) queue here
    until the aggregator's own flush forwards them up its uplink, so a
    report crosses each edge once.  The bound protects a stalled uplink
    from accumulating reports without end; dropping the *oldest* is
    correct because newer reports supersede older ones anyway.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._buffer: deque[bytes] = deque(maxlen=capacity)
        self.forwarded = 0

    def add(self, payload: bytes) -> None:
        self._buffer.append(payload)

    def drain(self) -> list[bytes]:
        """All buffered payloads, oldest first; empties the buffer."""
        drained = list(self._buffer)
        self._buffer.clear()
        self.forwarded += len(drained)
        return drained

    def __len__(self) -> int:
        return len(self._buffer)


# ----------------------------------------------------------------------
# Root side: the collector
# ----------------------------------------------------------------------
@dataclass
class _StoredSpan:
    id: int
    node_id: int
    pid: int
    record: SpanRecord


class FederationCollector:
    """Root-side store of federated telemetry: latest report per node,
    staleness-derived liveness, per-level rollups, cross-process traces.

    Parameters
    ----------
    topology:
        Optional static node list (dicts with ``node_id`` / ``role`` /
        ``level`` / ``parent_id``), typically from
        :meth:`~repro.cluster.spec.ClusterSpec.to_dict`; lets
        ``/cluster/health`` distinguish "never reported" from "does not
        exist" and ``/cluster/nodes`` render the full tree before the
        first flush arrives.
    stale_after:
        Seconds of report silence after which a node counts as not
        live.  Pick roughly three flush intervals: one lost report must
        not flap liveness, a dead process must show within a few.
    span_capacity:
        Bound on reassembled span records kept for ``/cluster/spans``.
    clock:
        Wall-clock source for report ages (injectable for tests).
    """

    def __init__(
        self,
        topology: Iterable[Mapping] | None = None,
        stale_after: float = 6.0,
        span_capacity: int = 65536,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if stale_after <= 0.0:
            raise ValueError("stale_after must be positive")
        if span_capacity < 1:
            raise ValueError("span_capacity must be at least 1")
        self.stale_after = stale_after
        self._clock = clock
        self._topology: list[dict] = [dict(n) for n in topology or ()]
        self._reports: dict[int, NodeTelemetry] = {}
        self._received_at: dict[int, float] = {}
        self._span_capacity = span_capacity
        self._spans: deque[_StoredSpan] = deque()
        self._span_ids: set[int] = set()
        self._next_span_id = 1
        self.ingested = 0
        self.rejected = 0

    def add_topology_node(
        self,
        node_id: int,
        role: str,
        level: int,
        parent_id: int | None = None,
    ) -> None:
        """Register one expected node after construction.

        For topologies built incrementally (e.g. a
        :class:`~repro.cluster.tree.TransportTree` growing node by
        node); re-registering an id updates it in place.
        """
        entry = {
            "node_id": int(node_id),
            "role": role,
            "level": int(level),
            "parent_id": parent_id,
        }
        for existing in self._topology:
            if existing["node_id"] == entry["node_id"]:
                existing.update(entry)
                return
        self._topology.append(entry)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, payload: bytes) -> NodeTelemetry | None:
        """Decode and store one TELEMETRY payload.

        Junk payloads and stale duplicates are counted and dropped --
        this is the root of a best-effort channel, it must never let a
        malformed report take the server down.  Returns the stored
        report, or ``None`` when rejected.
        """
        try:
            report = NodeTelemetry.from_payload(payload)
        except ValueError:
            self.rejected += 1
            return None
        return self.ingest_report(report)

    def ingest_report(self, report: NodeTelemetry) -> NodeTelemetry | None:
        previous = self._reports.get(report.node_id)
        if (
            previous is not None
            and report.pid == previous.pid
            and report.seq <= previous.seq
        ):
            # Duplicate or reordered flush from the same process.  A
            # different pid means the node restarted and its counter
            # reset -- accept unconditionally then.
            self.rejected += 1
            return None
        self._reports[report.node_id] = report
        self._received_at[report.node_id] = self._clock()
        self.ingested += 1
        for fields in report.spans:
            try:
                record = SpanRecord.from_event(_FieldsEvent(fields))
            except (KeyError, ValueError, TypeError):
                continue
            if record.span_id in self._span_ids:
                continue
            if len(self._spans) >= self._span_capacity:
                evicted = self._spans.popleft()
                self._span_ids.discard(evicted.record.span_id)
            self._spans.append(
                _StoredSpan(
                    id=self._next_span_id,
                    node_id=report.node_id,
                    pid=report.pid,
                    record=record,
                )
            )
            self._span_ids.add(record.span_id)
            self._next_span_id += 1
        return report

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def reports(self) -> dict[int, NodeTelemetry]:
        """Latest report per node id (live mapping; treat as read-only)."""
        return self._reports

    def age(self, node_id: int) -> float | None:
        """Seconds since the node's last report (``None`` if never)."""
        at = self._received_at.get(node_id)
        return self._clock() - at if at is not None else None

    def is_live(self, node_id: int) -> bool:
        age = self.age(node_id)
        return age is not None and age <= self.stale_after

    def expected_nodes(self) -> list[int]:
        """Node ids the rollup accounts for: topology, else reporters."""
        if self._topology:
            return sorted(int(n["node_id"]) for n in self._topology)
        return sorted(self._reports)

    def rollup(self) -> dict:
        """The ``/cluster/health`` payload: per-node and per-level."""
        expected = self.expected_nodes()
        per_node = [self._node_entry(node_id) for node_id in expected]
        live = sum(1 for entry in per_node if entry["live"])
        reporting = sum(1 for entry in per_node if entry["age_seconds"] is not None)
        total_records = sum(
            r.records for r in self._reports.values() if r.role == "site"
        )
        status = "ok"
        if any(entry["status"] == "drifting" for entry in per_node):
            status = "drifting"
        if live < len(expected):
            status = "degraded"
        return {
            "status": status,
            "stale_after": self.stale_after,
            "nodes": {
                "expected": len(expected),
                "reporting": reporting,
                "live": live,
            },
            "records": total_records,
            "levels": self._level_rollup(total_records),
            "per_node": per_node,
            "spans_collected": len(self._spans),
            "reports_ingested": self.ingested,
        }

    def _node_entry(self, node_id: int) -> dict:
        report = self._reports.get(node_id)
        age = self.age(node_id)
        entry: dict = {
            "node": node_id,
            "age_seconds": age,
            "live": self.is_live(node_id),
        }
        topo = next(
            (n for n in self._topology if int(n["node_id"]) == node_id), None
        )
        if topo is not None:
            entry.update(
                role=topo.get("role"),
                level=topo.get("level"),
                parent=topo.get("parent_id"),
            )
        if report is None:
            entry["status"] = "unreported"
            return entry
        entry.update(
            role=report.role,
            level=report.level,
            pid=report.pid,
            records=report.records,
            resources=report.resources,
            endpoints=report.endpoints,
        )
        health = report.health or {}
        entry["status"] = health.get("status", "ok")
        sites = health.get("sites", [])
        margins = [s["margin"] for s in sites if s.get("margin") is not None]
        tests = sum(int(s.get("tests", 0)) for s in sites)
        passed = sum(int(s.get("tests_passed", 0)) for s in sites)
        entry["margin"] = min(margins) if margins else None
        entry["pass_rate"] = passed / tests if tests else None
        coordinator = health.get("coordinator", {})
        entry["components"] = (
            coordinator.get("components")
            if coordinator.get("components") is not None
            else report.gauges.get("components")
        )
        entry["merges"] = coordinator.get("merges", 0)
        entry["splits"] = coordinator.get("splits", 0)
        entry["churn_rate"] = coordinator.get("churn_rate", 0.0)
        if report.uplink:
            entry["uplink"] = report.uplink
        if report.gauges:
            entry["gauges"] = report.gauges
        return entry

    def _level_rollup(self, total_records: int) -> list[dict]:
        """Per-level wire accounting from the reported uplink stats.

        A node at level ``L`` uplinks into level ``L-1``, and
        :class:`~repro.cluster.tree.LevelStats` keys edges by the
        *child* level -- the same convention holds here, so the two
        agree exactly on a drained loopback tree (telemetry bytes are
        excluded from ``wire_bytes`` on both sides).
        """
        per_level: dict[int, list[NodeTelemetry]] = {}
        for report in self._reports.values():
            if report.uplink:
                per_level.setdefault(report.level, []).append(report)
        records = max(1, total_records)
        levels = []
        for level in sorted(per_level):
            reports = per_level[level]
            wire = sum(int(r.uplink.get("wire_bytes", 0)) for r in reports)
            entry = {
                "level": level,
                "edges": len(reports),
                "messages": sum(
                    int(r.uplink.get("payloads_sent", 0)) for r in reports
                ),
                "payload_bytes": sum(
                    int(r.uplink.get("payload_bytes", 0)) for r in reports
                ),
                "wire_bytes": wire,
                "retransmissions": sum(
                    int(r.uplink.get("retransmissions", 0)) for r in reports
                ),
                "telemetry_bytes": sum(
                    int(r.uplink.get("telemetry_bytes", 0)) for r in reports
                ),
                "bytes_per_record": wire / records,
            }
            codecs = sorted(
                {
                    str(r.uplink["codec"])
                    for r in reports
                    if r.uplink.get("codec")
                }
            )
            if codecs:
                entry["codecs"] = codecs
                model_updates = sum(
                    int(r.uplink.get("model_updates", 0)) for r in reports
                )
                delta_updates = sum(
                    int(r.uplink.get("delta_updates", 0)) for r in reports
                )
                entry["delta_hit_rate"] = (
                    delta_updates / model_updates if model_updates else 0.0
                )
                entry["bytes_saved"] = sum(
                    int(r.uplink.get("bytes_saved", 0)) for r in reports
                )
            levels.append(entry)
        return levels

    def history_rollup(self) -> dict:
        """The ``/cluster/history`` payload: per-node history rollups.

        Folds the compact :attr:`NodeTelemetry.history` summaries from
        the latest report of every node that ships one -- retained
        ticks, eviction accounting and the recent component-count
        series -- plus cluster totals.  Nodes running without history
        simply do not appear; a cluster with history disabled
        everywhere answers with an empty node list.
        """
        per_node = []
        retained = 0
        evictions = 0
        horizon = 0
        for node_id in self.expected_nodes():
            report = self._reports.get(node_id)
            if report is None or report.history is None:
                continue
            history = report.history
            entry = {
                "node": node_id,
                "role": report.role,
                "level": report.level,
                "live": self.is_live(node_id),
                "history": history,
            }
            per_node.append(entry)
            retained += int(history.get("retained", 0))
            ev = history.get("evictions") or {}
            evictions += int(ev.get("pyramid", 0)) + int(ev.get("memory", 0))
            horizon = max(horizon, int(history.get("horizon", 0)))
        return {
            "nodes": len(per_node),
            "retained": retained,
            "evictions": evictions,
            "horizon": horizon,
            "per_node": per_node,
        }

    def nodes_view(self) -> dict:
        """The ``/cluster/nodes`` payload: topology + endpoints/status."""
        nodes = []
        for node_id in self.expected_nodes():
            entry: dict = {"node": node_id}
            topo = next(
                (n for n in self._topology if int(n["node_id"]) == node_id),
                None,
            )
            if topo is not None:
                entry.update(
                    role=topo.get("role"),
                    level=topo.get("level"),
                    parent=topo.get("parent_id"),
                )
            report = self._reports.get(node_id)
            if report is not None:
                entry.update(
                    role=report.role,
                    level=report.level,
                    pid=report.pid,
                    endpoints=report.endpoints,
                    seq=report.seq,
                )
            entry["live"] = self.is_live(node_id)
            entry["age_seconds"] = self.age(node_id)
            nodes.append(entry)
        return {"nodes": nodes, "count": len(nodes)}

    # ------------------------------------------------------------------
    # Cross-process trace assembly
    # ------------------------------------------------------------------
    @property
    def last_span_id(self) -> int:
        return self._next_span_id - 1

    def spans_since(
        self, since: int = 0, limit: int | None = None
    ) -> tuple[list[_StoredSpan], int]:
        page = [s for s in tuple(self._spans) if s.id > since]
        if limit is not None:
            page = page[:limit]
        last = page[-1].id if page else max(since, 0)
        return page, last

    def render_spans(self, since: int = 0, limit: int | None = None) -> dict:
        """One Chrome/Perfetto trace across every reporting process.

        Spans from all nodes are joined on their wire span context (per
        -process origins keep span ids collision-free), each placed on
        the track of its *real* OS pid, with flow arrows wherever a
        parent link crosses processes.  Extra top-level keys
        (``lastId``, ``count``) ride along for incremental pollers --
        the trace-event format tolerates them.
        """
        page, last = self.spans_since(since, limit)
        placement = {
            s.record.span_id: (s.pid, f"node-{s.node_id} (pid {s.pid})")
            for s in page
        }

        def process_of(record: SpanRecord) -> tuple[int, str]:
            placed = placement.get(record.span_id)
            if placed is not None:
                return placed
            return 0, "unknown-process"

        trace = to_chrome_trace([s.record for s in page], process_of=process_of)
        trace["lastId"] = last
        trace["count"] = len(page)
        return trace


class _FieldsEvent:
    """Adapter giving raw span field dicts the TraceEvent surface that
    :meth:`SpanRecord.from_event` expects."""

    __slots__ = ("fields",)
    type = "span"

    def __init__(self, fields: Mapping) -> None:
        self.fields = dict(fields)


def topology_from_spec(spec: object) -> list[dict]:
    """Static node list for a collector from a ``ClusterSpec``-like."""
    nodes: Sequence = getattr(spec, "nodes", ())
    return [
        {
            "node_id": n.node_id,
            "role": n.role,
            "level": n.level,
            "parent_id": n.parent_id,
        }
        for n in nodes
    ]
