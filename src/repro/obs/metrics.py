"""A zero-dependency metrics registry: counters, gauges, histograms.

CluDistream's behaviour is event driven -- chunk tests pass or fail,
models get archived, synopses ship only on change, the coordinator
merges and splits -- and every performance claim of the paper is a
count of exactly these events.  The registry makes those counts first
class: any layer grabs a labelled :class:`Counter`, :class:`Gauge` or
streaming :class:`Histogram` by name and bumps it; exporters
(:mod:`repro.obs.export`) turn the whole registry into a
Prometheus-style text dump or a JSON snapshot.

Two properties matter:

* **Cheap when disabled.**  A registry constructed with
  ``enabled=False`` (or the shared :data:`NULL_REGISTRY`) hands out
  shared no-op instruments whose mutators do nothing -- no dict
  lookups, no per-call allocation beyond the call itself -- so
  instrumented hot loops cost one guard check.
* **Deterministic.**  Instruments never read clocks or randomness;
  a run's registry contents are a pure function of the run.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
]

#: Default histogram buckets: exponential coverage from microseconds to
#: tens of seconds, suiting both wall-clock timers and small counts.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

LabelsKey = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, object]) -> LabelsKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError("counters only go up; use a Gauge instead")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, outbox sizes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark gauges)."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """A streaming histogram: bucket counts plus sum/min/max.

    Observations are assigned to the first bucket whose upper bound is
    ``>= value``; values beyond the last bound land in the implicit
    ``+Inf`` overflow bucket.  Memory is ``O(len(buckets))`` regardless
    of how many values stream through.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if list(buckets) != sorted(buckets):
            raise ValueError("bucket bounds must be sorted ascending")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating within buckets.

        The target rank ``q * count`` is located in the cumulative
        bucket counts and the value is interpolated linearly between
        the bucket's lower and upper edges (clamped to the tracked
        min/max, which also makes ``q=0``/``q=1`` exact).  The error is
        therefore bounded by the width of the bucket containing the
        true quantile -- the standard ``histogram_quantile`` estimate.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        target = q * self.count
        cumulative = 0
        bounds = self.buckets
        for index, in_bucket in enumerate(self.bucket_counts):
            if not in_bucket:
                continue
            if cumulative + in_bucket >= target:
                upper = bounds[index] if index < len(bounds) else self.maximum
                lower = bounds[index - 1] if index else self.minimum
                lower = max(lower, self.minimum)
                upper = min(upper, self.maximum)
                if upper <= lower:
                    return upper
                fraction = (target - cumulative) / in_bucket
                value = lower + fraction * (upper - lower)
                # Degenerate edges (an infinite bound or min/max from a
                # rebuilt scrape) can push the interpolation out of the
                # bucket or to NaN; clamp to the bucket bound so a tile
                # renders a number instead of silently going blank.
                if not math.isfinite(value):
                    return upper if math.isfinite(upper) else lower
                return min(max(value, lower), upper)
            cumulative += in_bucket
        return self.maximum


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: ARG002
        pass

    def max(self, value: float) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named, labelled instruments with lazy creation.

    Parameters
    ----------
    enabled:
        When ``False`` every accessor returns a shared no-op instrument
        and the registry stays permanently empty -- the cheap path for
        production runs with observability off.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelsKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelsKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelsKey], Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(buckets)
        return metric

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def collect(
        self,
    ) -> Iterator[tuple[str, str, LabelsKey, Counter | Gauge | Histogram]]:
        """Yield ``(kind, name, labels, instrument)`` in sorted order."""
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            for (name, labels), metric in sorted(table.items()):
                yield kind, name, labels, metric

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument's current state."""
        out: dict = {"counters": [], "gauges": [], "histograms": []}
        for kind, name, labels, metric in self.collect():
            entry: dict = {"name": name, "labels": dict(labels)}
            if isinstance(metric, Histogram):
                entry.update(
                    count=metric.count,
                    sum=metric.total,
                    min=metric.minimum if metric.count else None,
                    max=metric.maximum if metric.count else None,
                    buckets=[
                        {"le": bound, "count": count}
                        for bound, count in zip(
                            metric.buckets, metric.bucket_counts
                        )
                    ]
                    + [{"le": "+Inf", "count": metric.bucket_counts[-1]}],
                )
            else:
                entry["value"] = metric.value
            out[kind + "s"].append(entry)
        return out


#: Shared disabled registry -- what the null observer hands out.
NULL_REGISTRY = MetricsRegistry(enabled=False)
