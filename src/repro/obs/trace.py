"""Structured tracing: typed event records and pluggable sinks.

A trace is an ordered sequence of :class:`TraceEvent` records, each a
``(seq, time, type, fields)`` tuple.  Event types are dotted names
(``site.chunk_test``, ``coord.merge``, ``transport.retransmit``; see
DESIGN.md for the full mapping to paper mechanisms); fields are
JSON-safe scalars/lists, so a trace serialises losslessly to JSONL and
can be replayed by :mod:`repro.obs.stats` long after the run.

Sinks:

* :class:`JsonlTraceSink` -- one JSON object per line, append-mode file;
* :class:`RingBufferSink` -- bounded in-memory buffer for tests;
* :class:`LoggingTraceSink` -- forwards events to :mod:`logging` at
  DEBUG (the ``--log-level debug`` CLI path);
* :class:`MultiSink` -- fan-out to several sinks;
* :class:`NullTraceSink` -- drops everything (the disabled default).
"""

from __future__ import annotations

import json
import logging
import warnings
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator, Mapping

__all__ = [
    "JsonlTraceSink",
    "LoggingTraceSink",
    "MultiSink",
    "NullTraceSink",
    "RingBufferSink",
    "TraceEvent",
    "TraceSink",
    "TruncatedTraceWarning",
    "read_trace",
]


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    Attributes
    ----------
    seq:
        Monotone per-observer sequence number (1-based); gives a total
        order even when the time source is coarse or frozen.
    time:
        Timestamp from the observer's time source (wall clock, manual
        clock, or 0.0 for deterministic traces).
    type:
        Dotted event type, e.g. ``site.chunk_test``.
    fields:
        JSON-safe payload.
    """

    seq: int
    time: float
    type: str
    fields: Mapping[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        record = {"seq": self.seq, "t": self.time, "type": self.type}
        record.update(self.fields)
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        record = json.loads(line)
        seq = record.pop("seq")
        time = record.pop("t")
        type_ = record.pop("type")
        return TraceEvent(seq=seq, time=time, type=type_, fields=record)


class TraceSink:
    """Interface every sink implements; the base class drops events."""

    def write(self, event: TraceEvent) -> None:  # noqa: ARG002
        """Record one event."""

    def flush(self) -> None:
        """Push buffered events to durable storage (if any)."""

    def close(self) -> None:
        """Flush and release resources; the sink is unusable after."""


class NullTraceSink(TraceSink):
    """Shared do-nothing sink."""


#: Module-level singleton used by the null observer.
NULL_SINK = NullTraceSink()


class JsonlTraceSink(TraceSink):
    """Append events as JSON lines to a file (or an open text stream).

    Parameters
    ----------
    target:
        A path (opened in append mode, parent directories created) or
        an already-open text stream (not closed by :meth:`close`).
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: IO[str] = path.open("a", encoding="utf-8")
            self._owns_stream = True
            self.path: Path | None = path
        else:
            self._stream = target
            self._owns_stream = False
            self.path = None
        self.events_written = 0

    def write(self, event: TraceEvent) -> None:
        self._stream.write(event.to_json())
        self._stream.write("\n")
        self.events_written += 1

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        self.flush()
        if self._owns_stream:
            self._stream.close()


class RingBufferSink(TraceSink):
    """Keep the last ``capacity`` events in memory (tests, debugging)."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    def write(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def of_type(self, type_: str) -> tuple[TraceEvent, ...]:
        """Events whose type equals ``type_``."""
        return tuple(e for e in self._events if e.type == type_)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()


class LoggingTraceSink(TraceSink):
    """Forward each event to a :mod:`logging` logger at DEBUG."""

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self._logger = logger if logger is not None else logging.getLogger("repro.obs")

    def write(self, event: TraceEvent) -> None:
        if self._logger.isEnabledFor(logging.DEBUG):
            self._logger.debug("%s %s", event.type, dict(event.fields))


class MultiSink(TraceSink):
    """Fan one event stream out to several sinks."""

    def __init__(self, sinks: Iterable[TraceSink]) -> None:
        self.sinks = tuple(sinks)

    def write(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.write(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_trace(source: str | Path | IO[str]) -> Iterator[TraceEvent]:
    """Parse a JSONL trace back into :class:`TraceEvent` records.

    Blank lines are skipped.  A malformed *final* line -- the signature
    of a writer killed mid-record -- is skipped with a
    :class:`TruncatedTraceWarning` so a crashed run's trace stays
    readable; a malformed line followed by further records still raises
    ``ValueError`` (that is corruption, not truncation) with the
    offending line number.
    """
    if isinstance(source, (str, Path)):
        with Path(source).open("r", encoding="utf-8") as stream:
            yield from _read_stream(stream)
    else:
        yield from _read_stream(source)


class TruncatedTraceWarning(UserWarning):
    """A trace file ended with a torn (partially written) line."""


def _read_stream(stream: IO[str]) -> Iterator[TraceEvent]:
    pending_error: tuple[int, str, Exception] | None = None
    for number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        if pending_error is not None:
            bad_number, _, error = pending_error
            raise ValueError(
                f"malformed trace line {bad_number}: {error}"
            ) from error
        try:
            yield TraceEvent.from_json(line)
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            # Hold the error: only fatal if more content follows.
            pending_error = (number, line, error)
    if pending_error is not None:
        bad_number, bad_line, _ = pending_error
        warnings.warn(
            f"skipping torn trailing trace line {bad_number} "
            f"({bad_line[:60]!r}...): writer likely crashed mid-record",
            TruncatedTraceWarning,
            stacklevel=3,
        )
