"""``repro monitor``: a refreshing terminal dashboard for a live run.

Two data paths feed the same renderer:

* **server mode** (``--url``) polls a running
  :class:`~repro.obs.server.TelemetryServer` -- ``/health`` for the
  paper-grounded gauges, ``/metrics`` for the latency histograms -- over
  ``urllib`` (no third-party HTTP client);
* **trace mode** (``--trace``) tails a JSONL trace file, folding the
  events through a local :class:`~repro.obs.health.HealthMonitor`, so a
  finished (or crashed) run can be replayed into the exact same tiles.

:func:`render_dashboard` is a pure function from the collected state to
the dashboard string; the tests drive it directly, the CLI wraps it in
the poll-clear-print loop of :func:`run_monitor`.
"""

from __future__ import annotations

import json
import math
import sys
import time
import urllib.error
import urllib.request
from typing import IO, Sequence

from repro.obs.export import parse_prometheus
from repro.obs.health import HealthMonitor
from repro.obs.history import history_from_events
from repro.obs.metrics import Histogram
from repro.obs.trace import read_trace

__all__ = [
    "histogram_from_samples",
    "render_cluster_dashboard",
    "render_dashboard",
    "run_monitor",
    "sparkline",
]

#: Eight-level block characters for the history sparklines.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Render a numeric series as a fixed-width unicode sparkline.

    The series is resampled to ``width`` points (taking the last value
    of each segment -- the monitor cares about recent state, not
    averages) and scaled to the eight block characters.  A flat series
    renders as a run of the lowest block; an empty one as spaces.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    points = [float(v) for v in values]
    if not points:
        return " " * width
    if len(points) > width:
        step = len(points) / width
        points = [
            points[min(len(points) - 1, int((i + 1) * step) - 1)]
            for i in range(width)
        ]
    low = min(points)
    high = max(points)
    span = high - low
    chars = []
    for value in points:
        if span <= 0.0:
            chars.append(_SPARK_CHARS[0])
        else:
            index = int((value - low) / span * (len(_SPARK_CHARS) - 1))
            chars.append(_SPARK_CHARS[index])
    return "".join(chars).ljust(width)

#: ``profile.*`` histograms worth a latency tile, in display order.
_LATENCY_TILES = (
    ("profile_em_fit", "EM fit"),
    ("profile_serde_encode", "encode"),
    ("profile_serde_decode", "decode"),
    ("profile_checkpoint", "checkpoint"),
)


def histogram_from_samples(
    samples: Sequence[tuple[str, dict[str, str], float]],
    name: str,
) -> Histogram | None:
    """Rebuild a :class:`Histogram` from parsed ``/metrics`` samples.

    Prometheus exposition carries cumulative bucket counts plus sum and
    count but not min/max, so the rebuilt histogram approximates the
    tails: the minimum is taken as 0 and the maximum as the upper bound
    of the last occupied finite bucket.  Quantile estimates from it are
    therefore bucket-resolution approximations -- exactly what a
    dashboard tile needs.

    A scrape may expose the same histogram name under several label
    sets (one per site or node -- exactly what a federated ``/metrics``
    produces); those series are merged by summing the cumulative count
    per ``le`` bound and summing ``_sum`` / ``_count`` across series.
    """
    per_bound: dict[float, float] = {}
    total = 0.0
    count = 0
    seen = False
    for sample_name, labels, value in samples:
        if sample_name == f"{name}_bucket":
            seen = True
            le = labels.get("le", "+Inf")
            bound = math.inf if le == "+Inf" else float(le)
            per_bound[bound] = per_bound.get(bound, 0.0) + value
        elif sample_name == f"{name}_sum":
            total += value
        elif sample_name == f"{name}_count":
            count += int(value)
    if not seen or not count:
        return None
    bounds = sorted(per_bound)
    cumulative = [per_bound[b] for b in bounds]
    finite = [b for b in bounds if math.isfinite(b)]
    if not finite:
        return None
    histogram = Histogram(buckets=tuple(finite))
    previous = 0.0
    counts = []
    for value in cumulative:
        counts.append(max(0, int(value - previous)))
        previous = value
    while len(counts) < len(finite) + 1:
        counts.append(0)
    histogram.bucket_counts = counts[: len(finite) + 1]
    histogram.count = count
    histogram.total = total
    histogram.minimum = 0.0
    maximum = finite[-1]
    for bound, bucket_count in zip(finite, histogram.bucket_counts):
        if bucket_count:
            maximum = bound
    histogram.maximum = maximum
    return histogram


def _format_seconds(value: float | None) -> str:
    if value is None or not math.isfinite(value):
        return "    n/a"
    if value < 1e-3:
        return f"{value * 1e6:6.1f}µs"
    if value < 1.0:
        return f"{value * 1e3:6.2f}ms"
    return f"{value:6.3f}s "


def _history_pane(history: dict) -> list[str]:
    """Render the time-travel pane from collected history state.

    ``history`` carries the ``/history`` summary under ``"summary"``
    and named ``[tick, value]`` series under ``"series"``; both are
    optional (a partially reachable server still gets a pane).
    """
    lines: list[str] = ["", "  history (pyramidal retention):"]
    summary = history.get("summary") or {}
    if summary:
        evictions = summary.get("evictions") or {}
        lines.append(
            "    retained="
            f"{summary.get('retained', 0)}"
            f"/{summary.get('offered', 0)} snapshots  "
            f"horizon={summary.get('horizon', 0)}  "
            f"alpha={summary.get('alpha')}^l={summary.get('capacity')}  "
            f"evicted={evictions.get('pyramid', 0)}p"
            f"+{evictions.get('memory', 0)}m  "
            f"{_format_bytes(summary.get('bytes', 0))}"
        )
    series = history.get("series") or {}
    for name, label in (
        ("components", "K"),
        ("avg_pr_margin", "AvgPr margin"),
    ):
        points = series.get(name) or []
        values = [value for _, value in points]
        if not values:
            continue
        last = values[-1]
        last_text = f"{last:+.4f}" if name == "avg_pr_margin" else f"{last:g}"
        lines.append(
            f"    {label:<13} {sparkline(values)}  now={last_text}"
        )
    if len(lines) == 2:
        lines.append("    (no snapshots retained yet)")
    return lines


def render_dashboard(
    health: dict,
    samples: Sequence[tuple[str, dict[str, str], float]] | None = None,
    source: str = "",
    history: dict | None = None,
) -> str:
    """Render the collected state as a fixed-width terminal dashboard."""
    lines: list[str] = []
    status = health.get("status", "unknown")
    marker = "●" if status == "ok" else "◌"
    lines.append(
        f"{marker} cludistream monitor  status={status}  "
        f"records={health.get('records', 0)}  "
        f"events={health.get('events', 0)}"
        + (f"  [{source}]" if source else "")
    )
    coordinator = health.get("coordinator", {})
    lines.append(
        "  coordinator: "
        f"components={coordinator.get('components')}  "
        f"merges={coordinator.get('merges', 0)}  "
        f"splits={coordinator.get('splits', 0)}  "
        f"churn={coordinator.get('churn_rate', 0.0):.5f}/rec"
    )
    accounting = health.get("accounting")
    if accounting:
        bpr = accounting.get("bytes_per_record")
        bpr_text = f"{bpr:.1f}" if bpr is not None else "n/a"
        lines.append(
            "  channel:     "
            f"attempted={accounting.get('attempted', 0)}  "
            f"payload={accounting.get('payload_bytes', 0)}B  "
            f"wire={accounting.get('wire_bytes', 0)}B  "
            f"bytes/record={bpr_text}"
        )
    sites = health.get("sites", [])
    if sites:
        lines.append("")
        lines.append(
            f"  {'site':>4}  {'model':>5}  {'J_fit':>9}  {'eps':>9}  "
            f"{'margin':>9}  {'pass':>6}  {'records':>8}"
        )
        for site in sites:
            j_fit = site.get("j_fit")
            threshold = site.get("threshold")
            margin = site.get("margin")
            rate = site.get("pass_rate")
            drift = " DRIFT" if margin is not None and margin < 0 else ""
            j_text = f"{j_fit:9.4f}" if j_fit is not None else f"{'n/a':>9}"
            e_text = (
                f"{threshold:9.4f}" if threshold is not None else f"{'n/a':>9}"
            )
            m_text = f"{margin:+9.4f}" if margin is not None else f"{'n/a':>9}"
            r_text = f"{rate * 100.0:5.1f}%" if rate is not None else f"{'n/a':>6}"
            lines.append(
                f"  {site.get('site'):>4}  {str(site.get('model')):>5}  "
                f"{j_text}  {e_text}  {m_text}  {r_text}  "
                f"{site.get('records', 0):>8}{drift}"
            )
    if samples:
        tiles = []
        for prom_name, label in _LATENCY_TILES:
            histogram = histogram_from_samples(samples, prom_name)
            if histogram is None:
                continue
            tiles.append(
                f"  {label:<11} "
                f"p50={_format_seconds(histogram.quantile(0.5))} "
                f"p90={_format_seconds(histogram.quantile(0.9))} "
                f"p99={_format_seconds(histogram.quantile(0.99))} "
                f"n={histogram.count}"
            )
        if tiles:
            lines.append("")
            lines.append("  latency (bucket-interpolated):")
            lines.extend(tiles)
    if history is not None:
        lines.extend(_history_pane(history))
    return "\n".join(lines) + "\n"


def _format_bytes(value: float | None) -> str:
    if value is None:
        return "n/a"
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024.0 or unit == "GB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GB"


def _node_tile(entry: dict) -> str:
    marker = "●" if entry.get("live") else "◌"
    role = entry.get("role") or "?"
    label = f"{marker} node {entry.get('node'):>3} {role:<10}"
    if entry.get("age_seconds") is None:
        return f"{label} (never reported)"
    parts: list[str] = []
    if role == "site":
        margin = entry.get("margin")
        rate = entry.get("pass_rate")
        parts.append(
            f"margin={margin:+.4f}" if margin is not None else "margin=n/a"
        )
        parts.append(
            f"pass={rate * 100.0:.0f}%" if rate is not None else "pass=n/a"
        )
        parts.append(f"rec={entry.get('records', 0)}")
    else:
        components = entry.get("components")
        parts.append(f"K={components}" if components is not None else "K=n/a")
        parts.append(
            f"merges={entry.get('merges', 0)} splits={entry.get('splits', 0)}"
        )
        uplink = entry.get("uplink") or {}
        if uplink:
            parts.append(f"up={_format_bytes(uplink.get('wire_bytes', 0))}")
            codec = uplink.get("codec")
            if codec:
                hits = uplink.get("delta_hit_rate", 0.0)
                parts.append(f"codec={codec} Δ={hits * 100.0:.0f}%")
    resources = entry.get("resources") or {}
    rss = resources.get("rss_bytes")
    cpu = resources.get("cpu_seconds")
    fds = resources.get("open_fds")
    if rss is not None:
        parts.append(f"rss={_format_bytes(rss)}")
    if cpu is not None:
        parts.append(f"cpu={cpu:.1f}s")
    if fds is not None:
        parts.append(f"fds={fds}")
    status = entry.get("status", "ok")
    if status not in ("ok", None):
        parts.append(status.upper())
    return f"{label} {'  '.join(parts)}"


def render_cluster_dashboard(
    cluster: dict,
    nodes: dict | None = None,
    source: str = "",
    history: dict | None = None,
) -> str:
    """Render a federated ``/cluster/health`` payload as a dashboard.

    ``cluster`` is the root's rollup; ``nodes`` the optional
    ``/cluster/nodes`` view (used for parent links when the rollup
    lacks them).  Pure function, same contract as
    :func:`render_dashboard`: the tests drive it directly.
    """
    lines: list[str] = []
    status = cluster.get("status", "unknown")
    marker = "●" if status == "ok" else "◌"
    counts = cluster.get("nodes", {})
    lines.append(
        f"{marker} cludistream cluster monitor  status={status}  "
        f"nodes={counts.get('live', 0)}/{counts.get('expected', 0)} live  "
        f"records={cluster.get('records', 0)}"
        + (f"  [{source}]" if source else "")
    )

    entries = {e.get("node"): dict(e) for e in cluster.get("per_node", [])}
    if nodes:
        for raw in nodes.get("nodes", []):
            entry = entries.setdefault(raw.get("node"), dict(raw))
            for key in ("role", "level", "parent", "live", "age_seconds"):
                entry.setdefault(key, raw.get(key))

    # Topology: indent children under parents when parent links exist,
    # otherwise group by level.
    children: dict[object, list[int]] = {}
    for node_id, entry in entries.items():
        children.setdefault(entry.get("parent"), []).append(node_id)
    for siblings in children.values():
        siblings.sort()

    lines.append("")
    if None in children:
        printed: set = set()

        def walk(node_id: int, depth: int) -> None:
            printed.add(node_id)
            lines.append("  " + "   " * depth + _node_tile(entries[node_id]))
            for child in children.get(node_id, ()):
                walk(child, depth + 1)

        for root_id in children[None]:
            walk(root_id, 0)
        for node_id in sorted(set(entries) - printed):
            lines.append("  " + _node_tile(entries[node_id]))
    else:
        for node_id in sorted(
            entries, key=lambda n: (entries[n].get("level") or 0, n)
        ):
            level = entries[node_id].get("level") or 0
            lines.append("  " + "   " * level + _node_tile(entries[node_id]))

    levels = cluster.get("levels", [])
    if levels:
        lines.append("")
        lines.append(
            f"  {'level':>5}  {'edges':>5}  {'msgs':>7}  {'wire':>10}  "
            f"{'B/rec':>8}  {'rexmit':>6}  {'codec':>10}  {'Δ-hit':>6}"
        )
        for stats in levels:
            codecs = stats.get("codecs") or []
            codec_cell = "+".join(codecs) if codecs else "-"
            hit_cell = (
                f"{stats.get('delta_hit_rate', 0.0) * 100.0:>5.0f}%"
                if codecs
                else "     -"
            )
            lines.append(
                f"  {stats.get('level'):>5}  {stats.get('edges', 0):>5}  "
                f"{stats.get('messages', 0):>7}  "
                f"{stats.get('wire_bytes', 0):>9}B  "
                f"{stats.get('bytes_per_record', 0.0):>8.1f}  "
                f"{stats.get('retransmissions', 0):>6}  "
                f"{codec_cell:>10}  {hit_cell}"
            )
    if history is not None and history.get("per_node"):
        lines.append("")
        lines.append(
            "  history: "
            f"retained={history.get('retained', 0)}  "
            f"evicted={history.get('evictions', 0)}  "
            f"horizon={history.get('horizon', 0)}"
        )
        for entry in history["per_node"]:
            node_history = entry.get("history") or {}
            values = [
                value
                for _, value in (node_history.get("components") or [])
            ]
            spark = sparkline(values) if values else " " * 32
            lines.append(
                f"    node {entry.get('node'):>3} "
                f"{entry.get('role') or '?':<10} "
                f"K {spark}  retained={node_history.get('retained', 0)}"
            )
    return "\n".join(lines) + "\n"


def _fetch(url: str, timeout: float = 5.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def _collect_from_server(
    url: str,
) -> tuple[dict, list[tuple[str, dict[str, str], float]], dict | None]:
    base = url.rstrip("/")
    health = json.loads(_fetch(f"{base}/health"))
    try:
        samples = parse_prometheus(_fetch(f"{base}/metrics").decode("utf-8"))
    except (urllib.error.URLError, ValueError):
        samples = []
    return health, samples, _collect_history(base)


def _collect_history(base: str) -> dict | None:
    """Poll the ``/history`` endpoints; ``None`` on a pre-history server.

    A 404 (history disabled or an older server) simply drops the pane
    -- the monitor must keep working against any telemetry server.
    """
    try:
        summary = json.loads(_fetch(f"{base}/history"))
    except (urllib.error.URLError, ValueError, OSError):
        return None
    series: dict = {}
    for name in ("components", "avg_pr_margin"):
        try:
            payload = json.loads(
                _fetch(f"{base}/history/series?name={name}")
            )
            series[name] = payload.get("points") or []
        except (urllib.error.URLError, ValueError, OSError):
            continue
    return {"summary": summary, "series": series}


def _collect_from_trace(path: str) -> tuple[dict, list, dict | None]:
    monitor = HealthMonitor()
    events = list(read_trace(path))
    for event in events:
        monitor.write(event)
    # Prefer the coordinator's history when the trace carries several
    # scopes; fall back to whichever scope appears first.
    history = history_from_events(events, scope="coordinator")
    if history is None:
        history = history_from_events(events)
    pane = None
    if history is not None:
        pane = {
            "summary": history.summary(),
            "series": {
                name: history.gauge_series(name)
                for name in ("components", "avg_pr_margin")
            },
        }
    return monitor.report(), [], pane


def _collect_cluster(url: str) -> tuple[dict, dict | None, dict | None]:
    base = url.rstrip("/")
    cluster = json.loads(_fetch(f"{base}/cluster/health"))
    try:
        nodes = json.loads(_fetch(f"{base}/cluster/nodes"))
    except (urllib.error.URLError, ValueError, OSError):
        nodes = None
    try:
        history = json.loads(_fetch(f"{base}/cluster/history"))
    except (urllib.error.URLError, ValueError, OSError):
        history = None
    return cluster, nodes, history


def run_monitor(
    url: str | None = None,
    trace: str | None = None,
    interval: float = 1.0,
    iterations: int | None = None,
    clear: bool = True,
    out: IO[str] | None = None,
    cluster: bool = False,
) -> int:
    """The poll-render-print loop behind ``repro monitor``.

    Parameters
    ----------
    url / trace:
        Exactly one data source: a telemetry server base URL or a JSONL
        trace file path.
    interval:
        Seconds between refreshes.
    iterations:
        Number of refreshes (``None`` = run until interrupted; trace
        mode defaults to a single render).
    clear:
        Emit an ANSI clear-screen before each refresh.
    out:
        Output stream (stdout by default; tests pass a ``StringIO``).
    cluster:
        Poll the federated ``/cluster/health`` + ``/cluster/nodes``
        endpoints instead of the single-process ``/health`` and render
        the tree topology dashboard (server mode only).

    Returns a process exit code.
    """
    if (url is None) == (trace is None):
        raise ValueError("exactly one of url or trace is required")
    if cluster and url is None:
        raise ValueError("cluster mode needs a server url")
    stream = out if out is not None else sys.stdout
    if trace is not None and iterations is None:
        iterations = 1
    count = 0
    try:
        while iterations is None or count < iterations:
            if url is not None:
                try:
                    if cluster:
                        cluster_health, nodes, history = _collect_cluster(url)
                    else:
                        health, samples, history = _collect_from_server(url)
                    source = url
                except (urllib.error.URLError, OSError, ValueError) as error:
                    stream.write(f"monitor: cannot reach {url}: {error}\n")
                    return 1
            else:
                assert trace is not None
                health, samples, history = _collect_from_trace(trace)
                source = trace
            if clear:
                stream.write("\x1b[2J\x1b[H")
            if cluster:
                stream.write(
                    render_cluster_dashboard(
                        cluster_health,
                        nodes,
                        source=source,
                        history=history,
                    )
                )
            else:
                stream.write(
                    render_dashboard(
                        health, samples, source=source, history=history
                    )
                )
            stream.flush()
            count += 1
            if iterations is None or count < iterations:
                time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
