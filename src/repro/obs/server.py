"""Zero-dependency live telemetry server over the observability layer.

A :class:`TelemetryServer` wraps one :class:`~repro.obs.observer.Observer`
(plus optional :class:`~repro.obs.health.HealthMonitor`,
:class:`~repro.obs.spans.SpanCollector` and snapshot provider) in a
stdlib :class:`http.server.ThreadingHTTPServer` running on a daemon
thread, so a live run can be inspected while it streams:

``/metrics``
    Prometheus text exposition of the observer's metrics registry (via
    :func:`repro.obs.export.to_prometheus`); health gauges are published
    into the registry right before rendering, so scrapes are current.
``/health``
    JSON from :meth:`HealthMonitor.report` -- per-site AvgPr margin,
    global component count, merge/split churn, bytes-per-record.
``/snapshot``
    JSON from the snapshot provider (typically
    ``lambda: system_snapshot(sites, coordinator, accounting())``) --
    per-site current model, event-table tail, delivery accounting.
``/spans``
    Chrome trace-event JSON of the collected spans (load in Perfetto or
    ``chrome://tracing``), via :func:`repro.obs.spans.to_chrome_trace`.
    Accepts ``?since=<id>&limit=<n>`` for incremental polling: only
    spans with collector id beyond ``since`` are returned, and the
    response carries ``lastId`` to resume from.

With a :class:`~repro.obs.history.ModelHistory` attached (usually the
coordinator's), three time-travel endpoints come alive:

``/history``
    Without parameters, the history summary (retention accounting,
    retained ticks, known gauges).  With ``?t=<tick>``, the
    :meth:`~repro.obs.history.ModelHistory.model_at` answer: the
    recorded model state at the newest retained snapshot at or before
    ``t``.
``/history/drift``
    ``?t0=<tick>&t1=<tick>`` drift analytics between two moments:
    component-count delta, weight-transport distance, merge/split
    churn.  Missing endpoints default to the full retained range.
``/history/series``
    ``?name=<gauge>&t0=&t1=`` sampled ``[tick, value]`` series of a
    recorded gauge (``components`` by default).

Bad ranges (reversed or negative) answer 400 with the offending
values; each history query is traced as a ``history.query`` span.

With a :class:`~repro.obs.federation.FederationCollector` attached
(the root of a federated cluster deployment), three more endpoints
serve the cluster-wide view:

``/cluster/health``
    Per-node and per-level rollups: ε−J_fit margin, pass rate,
    bytes/record, merge/split churn, component counts, liveness from
    report staleness.
``/cluster/nodes``
    Tree topology plus each node's endpoints, pid and report age.
``/cluster/spans``
    Cross-process traces reassembled at the root, exported as one
    Chrome/Perfetto file with real-pid tracks and cross-process flow
    arrows; supports the same ``?since=&limit=`` paging as ``/spans``.
``/cluster/history``
    Per-node history rollups (retained ticks, eviction accounting,
    component-count series) folded from the latest telemetry reports.

Everything is standard library; there is nothing to install on the
scrape side either -- ``curl`` and a browser suffice.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.obs.export import to_prometheus
from repro.obs.federation import FederationCollector
from repro.obs.health import HealthMonitor
from repro.obs.observer import Observer
from repro.obs.spans import SpanCollector, to_chrome_trace

__all__ = ["TelemetryServer"]


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a :class:`TelemetryServer` via the server."""

    #: Quiet by default: per-request logging would interleave with the
    #: run's own output.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802  (http.server API)
        telemetry: "TelemetryServer" = self.server.telemetry  # type: ignore[attr-defined]
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        try:
            since, limit = _paging(query)
            if path in ("/", "/metrics"):
                body = telemetry.render_metrics().encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/health":
                body = _json_bytes(telemetry.render_health())
                content_type = "application/json"
            elif path == "/snapshot":
                body = _json_bytes(telemetry.render_snapshot())
                content_type = "application/json"
            elif path == "/spans":
                body = _json_bytes(telemetry.render_spans(since, limit))
                content_type = "application/json"
            elif path == "/history" and telemetry.history is not None:
                body = _json_bytes(
                    telemetry.render_history(_history_int(query, "t"))
                )
                content_type = "application/json"
            elif (
                path == "/history/drift" and telemetry.history is not None
            ):
                body = _json_bytes(
                    telemetry.render_history_drift(
                        _history_int(query, "t0"),
                        _history_int(query, "t1"),
                    )
                )
                content_type = "application/json"
            elif (
                path == "/history/series" and telemetry.history is not None
            ):
                body = _json_bytes(
                    telemetry.render_history_series(
                        _history_str(query, "name"),
                        _history_int(query, "t0"),
                        _history_int(query, "t1"),
                    )
                )
                content_type = "application/json"
            elif (
                path == "/cluster/history"
                and telemetry.federation is not None
            ):
                body = _json_bytes(telemetry.render_cluster_history())
                content_type = "application/json"
            elif path == "/cluster/health" and telemetry.federation is not None:
                body = _json_bytes(telemetry.render_cluster_health())
                content_type = "application/json"
            elif path == "/cluster/nodes" and telemetry.federation is not None:
                body = _json_bytes(telemetry.render_cluster_nodes())
                content_type = "application/json"
            elif path == "/cluster/spans" and telemetry.federation is not None:
                body = _json_bytes(telemetry.render_cluster_spans(since, limit))
                content_type = "application/json"
            else:
                self.send_error(404, "unknown endpoint")
                return
        except ValueError as exc:
            # Bad query ranges (reversed/negative windows) are the
            # client's fault; the message names the offending values.
            self.send_error(400, str(exc))
            return
        except Exception as exc:  # surface handler bugs to the client
            self.send_error(500, f"{type(exc).__name__}: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def _json_bytes(payload: object) -> bytes:
    return json.dumps(payload, indent=2, default=str).encode("utf-8")


def _paging(query: str) -> tuple[int, int | None]:
    """Parse ``since`` / ``limit`` from a query string (0 / None default).

    Unparseable values fall back to the defaults rather than erroring:
    the endpoints are for humans with ``curl`` as much as for the
    monitor's poll loop.
    """
    params = urllib.parse.parse_qs(query)
    since, limit = 0, None
    try:
        since = max(0, int(params["since"][0]))
    except (KeyError, ValueError, IndexError):
        pass
    try:
        limit = max(1, int(params["limit"][0]))
    except (KeyError, ValueError, IndexError):
        pass
    return since, limit


def _history_int(query: str, name: str) -> int | None:
    """Parse one integer history parameter (``None`` when absent).

    Unlike :func:`_paging` the value is *not* clamped: a negative
    ``t0`` must reach the validation layer so the 400 answer names it.
    """
    params = urllib.parse.parse_qs(query)
    try:
        return int(params[name][0])
    except (KeyError, IndexError):
        return None
    except ValueError:
        raise ValueError(
            f"parameter {name!r} must be an integer, "
            f"got {params[name][0]!r}"
        ) from None


def _history_str(query: str, name: str) -> str | None:
    params = urllib.parse.parse_qs(query)
    try:
        return params[name][0]
    except (KeyError, IndexError):
        return None


class TelemetryServer:
    """Serve live metrics, health, snapshots and spans over HTTP.

    Parameters
    ----------
    observer:
        The observer whose metrics registry backs ``/metrics``.
    health:
        Optional :class:`HealthMonitor`; without it ``/health`` reports
        a minimal liveness payload.
    spans:
        Optional :class:`SpanCollector`; without it ``/spans`` serves an
        empty Chrome trace.
    snapshot:
        Optional zero-argument callable returning the JSON-safe system
        snapshot served at ``/snapshot``.
    host / port:
        Bind address.  ``port=0`` (the default) picks a free ephemeral
        port; read it back from :attr:`port` / :attr:`url`.
    publish:
        Extra publishers called with the metrics registry right before
        every ``/metrics`` render (after the health monitor publishes),
        e.g. :func:`repro.obs.health.publish_cluster_levels` bound to a
        live tree -- lets components push point-in-time gauges without
        holding a background thread.
    federation:
        Optional :class:`~repro.obs.federation.FederationCollector`;
        when present the ``/cluster/*`` endpoints come alive (the root
        of a federated tree attaches its collector here).
    history:
        Optional :class:`~repro.obs.history.ModelHistory` (usually the
        coordinator's); when present the ``/history*`` endpoints come
        alive and its retention gauges are published into ``/metrics``.
    """

    def __init__(
        self,
        observer: Observer,
        health: HealthMonitor | None = None,
        spans: SpanCollector | None = None,
        snapshot: Callable[[], dict] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        publish: tuple[Callable, ...] = (),
        federation: FederationCollector | None = None,
        history=None,
    ) -> None:
        self.observer = observer
        self.health = health
        self.spans = spans
        self.snapshot = snapshot
        self.publish = tuple(publish)
        self.federation = federation
        self.history = history
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.telemetry = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Start serving on a daemon thread; returns ``self``."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"telemetry:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop the server and release the socket (idempotent)."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Renderers (shared with tests; no HTTP required)
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        if self.health is not None:
            self.health.publish(self.observer.registry)
        if self.history is not None:
            self.history.publish(self.observer.registry)
        for publisher in self.publish:
            publisher(self.observer.registry)
        return to_prometheus(self.observer.registry)

    def render_health(self) -> dict:
        if self.health is None:
            return {"status": "ok", "detail": "no health monitor attached"}
        return self.health.report()

    def render_snapshot(self) -> dict:
        if self.snapshot is None:
            return {"detail": "no snapshot provider attached"}
        return self.snapshot()

    def render_spans(self, since: int = 0, limit: int | None = None) -> dict:
        if self.spans is None:
            return {"traceEvents": [], "lastId": 0, "count": 0}
        records, last = self.spans.spans_since(since, limit)
        trace = to_chrome_trace(records)
        trace["lastId"] = last
        trace["count"] = len(records)
        return trace

    def render_cluster_health(self) -> dict:
        assert self.federation is not None
        return self.federation.rollup()

    def render_cluster_nodes(self) -> dict:
        assert self.federation is not None
        return self.federation.nodes_view()

    def render_history(self, t: int | None = None) -> dict:
        assert self.history is not None
        with self.observer.span(
            "history.query", endpoint="/history", t=t
        ):
            if t is None:
                return self.history.summary()
            return self.history.model_at(t)

    def render_history_drift(
        self, t0: int | None = None, t1: int | None = None
    ) -> dict:
        assert self.history is not None
        ticks = self.history.store.ticks()
        if t0 is None:
            t0 = ticks[0] if ticks else 0
        if t1 is None:
            t1 = self.history.last_tick
        with self.observer.span(
            "history.query", endpoint="/history/drift", t0=t0, t1=t1
        ):
            return self.history.drift_between(t0, t1)

    def render_history_series(
        self,
        name: str | None = None,
        t0: int | None = None,
        t1: int | None = None,
    ) -> dict:
        assert self.history is not None
        name = name or "components"
        with self.observer.span(
            "history.query", endpoint="/history/series", gauge=name
        ):
            return {
                "name": name,
                "t0": t0,
                "t1": t1,
                "points": self.history.gauge_series(name, t0, t1),
            }

    def render_cluster_history(self) -> dict:
        assert self.federation is not None
        return self.federation.history_rollup()

    def render_cluster_spans(
        self, since: int = 0, limit: int | None = None
    ) -> dict:
        assert self.federation is not None
        return self.federation.render_spans(since, limit)
