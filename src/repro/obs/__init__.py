"""``repro.obs`` -- zero-dependency observability for CluDistream.

The reproduction's behaviour is event driven: chunk tests pass or fail
(Theorem 2), models get archived, synopses ship only on change, the
coordinator merges and splits.  This package makes every one of those
events observable without changing any of them:

* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of labelled
  counters, gauges and streaming histograms (cheap no-op when
  disabled);
* :mod:`repro.obs.trace` -- typed :class:`TraceEvent` records with
  JSONL, ring-buffer, logging and fan-out sinks;
* :mod:`repro.obs.observer` -- the :class:`Observer` facade threaded
  (optionally) through sites, coordinator, transport and simulation;
  :data:`NULL_OBSERVER` is the default and keeps all behaviour and
  output byte-identical to an uninstrumented run;
* :mod:`repro.obs.export` -- Prometheus-style text dump and JSON
  snapshot of a registry;
* :mod:`repro.obs.stats` -- trace summarisation behind the
  ``cludistream stats`` subcommand.

See DESIGN.md ("Observability") for the mapping from paper mechanism to
trace event type.
"""

from repro.obs.export import json_snapshot, to_json, to_prometheus
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.observer import NULL_OBSERVER, Observer, ensure_observer
from repro.obs.stats import (
    RunSummary,
    SiteSummary,
    format_summary,
    summarize_events,
    summarize_trace,
)
from repro.obs.trace import (
    JsonlTraceSink,
    LoggingTraceSink,
    MultiSink,
    NullTraceSink,
    RingBufferSink,
    TraceEvent,
    TraceSink,
    read_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "LoggingTraceSink",
    "MetricsRegistry",
    "MultiSink",
    "NULL_OBSERVER",
    "NULL_REGISTRY",
    "NullTraceSink",
    "Observer",
    "RingBufferSink",
    "RunSummary",
    "SiteSummary",
    "TraceEvent",
    "TraceSink",
    "ensure_observer",
    "format_summary",
    "json_snapshot",
    "read_trace",
    "summarize_events",
    "summarize_trace",
    "to_json",
    "to_prometheus",
]
