"""``repro.obs`` -- zero-dependency observability for CluDistream.

The reproduction's behaviour is event driven: chunk tests pass or fail
(Theorem 2), models get archived, synopses ship only on change, the
coordinator merges and splits.  This package makes every one of those
events observable without changing any of them:

* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of labelled
  counters, gauges and streaming histograms (cheap no-op when
  disabled);
* :mod:`repro.obs.trace` -- typed :class:`TraceEvent` records with
  JSONL, ring-buffer, logging and fan-out sinks;
* :mod:`repro.obs.observer` -- the :class:`Observer` facade threaded
  (optionally) through sites, coordinator, transport and simulation;
  :data:`NULL_OBSERVER` is the default and keeps all behaviour and
  output byte-identical to an uninstrumented run;
* :mod:`repro.obs.spans` -- causal spans (trace/span/parent ids)
  propagated across the site-to-coordinator boundary on every channel
  backend, with Chrome trace-event / Perfetto export;
* :mod:`repro.obs.export` -- Prometheus-style text dump (and parser)
  plus JSON snapshot of a registry;
* :mod:`repro.obs.health` -- live paper-grounded gauges (AvgPr margin,
  component count, merge/split churn, bytes-per-record) folded from the
  trace stream;
* :mod:`repro.obs.history` -- the pyramidal :class:`ModelHistory` store
  behind time-travel queries: ``model_at(t)``, drift analytics and
  gauge series with bounded-memory retention;
* :mod:`repro.obs.server` -- a stdlib HTTP telemetry server exposing
  ``/metrics``, ``/health``, ``/snapshot`` and ``/spans`` for a live
  run;
* :mod:`repro.obs.monitor` -- the ``repro monitor`` terminal dashboard
  polling that server or replaying a trace file;
* :mod:`repro.obs.stats` -- trace summarisation behind the
  ``cludistream stats`` subcommand.

See DESIGN.md ("Observability" and "Live observability") for the
mapping from paper mechanism to trace event and span.
"""

from repro.obs.export import (
    json_snapshot,
    parse_prometheus,
    to_json,
    to_prometheus,
)
from repro.obs.federation import (
    FederationCollector,
    FederationPublisher,
    NodeTelemetry,
    TelemetryRelay,
    process_resources,
    publish_process_resources,
    topology_from_spec,
)
from repro.obs.health import (
    HealthMonitor,
    SiteHealth,
    publish_cluster_levels,
    system_snapshot,
)
from repro.obs.history import (
    ModelHistory,
    coordinator_history_payload,
    drift_report,
    history_from_events,
    site_history_payload,
    weight_transport,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.monitor import (
    render_cluster_dashboard,
    render_dashboard,
    run_monitor,
)
from repro.obs.observer import NULL_OBSERVER, Observer, ensure_observer
from repro.obs.server import TelemetryServer
from repro.obs.spans import (
    Span,
    SpanCollector,
    SpanContext,
    SpanRecord,
    spans_from_events,
    to_chrome_trace,
)
from repro.obs.stats import (
    RunSummary,
    SiteSummary,
    drift_from_trace,
    format_drift,
    format_summary,
    summarize_events,
    summarize_trace,
)
from repro.obs.trace import (
    JsonlTraceSink,
    LoggingTraceSink,
    MultiSink,
    NullTraceSink,
    RingBufferSink,
    TraceEvent,
    TraceSink,
    TruncatedTraceWarning,
    read_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FederationCollector",
    "FederationPublisher",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "JsonlTraceSink",
    "LoggingTraceSink",
    "MetricsRegistry",
    "ModelHistory",
    "MultiSink",
    "NULL_OBSERVER",
    "NULL_REGISTRY",
    "NodeTelemetry",
    "NullTraceSink",
    "Observer",
    "RingBufferSink",
    "RunSummary",
    "SiteHealth",
    "SiteSummary",
    "Span",
    "SpanCollector",
    "SpanContext",
    "SpanRecord",
    "TelemetryRelay",
    "TelemetryServer",
    "publish_cluster_levels",
    "publish_process_resources",
    "process_resources",
    "TraceEvent",
    "TraceSink",
    "TruncatedTraceWarning",
    "coordinator_history_payload",
    "drift_from_trace",
    "drift_report",
    "ensure_observer",
    "format_drift",
    "format_summary",
    "history_from_events",
    "json_snapshot",
    "site_history_payload",
    "weight_transport",
    "parse_prometheus",
    "read_trace",
    "render_cluster_dashboard",
    "render_dashboard",
    "run_monitor",
    "topology_from_spec",
    "spans_from_events",
    "summarize_events",
    "summarize_trace",
    "system_snapshot",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
]
