"""Registry exporters: Prometheus text format and JSON snapshots.

Neither exporter needs any third-party client library -- the text dump
follows the Prometheus exposition format closely enough for a scrape
endpoint or a ``textfile`` collector, and the JSON snapshot is the
machine-readable twin used by benchmarks and the CI artifact upload.
"""

from __future__ import annotations

import json
import math
import re
from typing import Mapping

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["json_snapshot", "to_json", "to_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitise a dotted metric name for the exposition format."""
    sanitised = _NAME_RE.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _prom_labels(labels: Mapping[str, str] | tuple) -> str:
    pairs = dict(labels)
    if not pairs:
        return ""
    inner = ",".join(
        f'{_prom_name(k)}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(pairs.items())
    )
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters get a ``_total`` suffix; histograms expand into
    ``_bucket{le=...}``, ``_sum`` and ``_count`` series.
    """
    lines: list[str] = []
    for kind, name, labels, metric in registry.collect():
        prom = _prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {prom}_total counter")
            lines.append(
                f"{prom}_total{_prom_labels(labels)} {_prom_value(metric.value)}"
            )
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom}{_prom_labels(labels)} {_prom_value(metric.value)}")
        else:
            assert isinstance(metric, Histogram)
            lines.append(f"# TYPE {prom} histogram")
            base_labels = dict(labels)
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.bucket_counts):
                cumulative += count
                bucket_labels = dict(base_labels)
                bucket_labels["le"] = _prom_value(bound)
                lines.append(
                    f"{prom}_bucket{_prom_labels(bucket_labels)} {cumulative}"
                )
            bucket_labels = dict(base_labels)
            bucket_labels["le"] = "+Inf"
            lines.append(
                f"{prom}_bucket{_prom_labels(bucket_labels)} {metric.count}"
            )
            lines.append(
                f"{prom}_sum{_prom_labels(labels)} {_prom_value(metric.total)}"
            )
            lines.append(f"{prom}_count{_prom_labels(labels)} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def json_snapshot(registry: MetricsRegistry) -> dict:
    """JSON-safe dict of the registry (alias of ``registry.snapshot``)."""
    return registry.snapshot()


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """Serialise the registry snapshot to a JSON string."""
    return json.dumps(json_snapshot(registry), indent=indent, sort_keys=True)
